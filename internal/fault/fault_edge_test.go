package fault

import (
	"math"
	"strings"
	"testing"
)

// kindRate builds a plan whose only nonzero rate is kind k.
func kindRate(k Kind, rate float64) Plan {
	var p Plan
	switch k {
	case Transient:
		p.Transient = rate
	case Panic:
		p.Panic = rate
	case Hang:
		p.Hang = rate
	case Corrupt:
		p.Corrupt = rate
	case DomainLoss:
		p.DomainLoss = rate
	case Preempt:
		p.Preempt = rate
	case NetDrop:
		p.NetDrop = rate
	case NetDelay:
		p.NetDelay = rate
	case NetPartition:
		p.NetPartition = rate
	case NetCorrupt:
		p.NetCorrupt = rate
	}
	return p
}

// TestValidateEveryKindEdgeCases sweeps the rate edge cases over every
// fault kind, network kinds included: any single negative or NaN rate
// must reject, a total at or above one must reject however it is split
// across kinds, and a total just under one must pass.
func TestValidateEveryKindEdgeCases(t *testing.T) {
	for k := Kind(1); k < numKinds; k++ {
		if err := kindRate(k, -0.01).Validate(); err == nil {
			t.Errorf("negative %v rate accepted", k)
		}
		if err := kindRate(k, math.NaN()).Validate(); err == nil {
			t.Errorf("NaN %v rate accepted", k)
		}
		if err := kindRate(k, 1.0).Validate(); err == nil {
			t.Errorf("unit %v rate accepted", k)
		}
		if err := kindRate(k, 0.999).Validate(); err != nil {
			t.Errorf("near-unit %v rate rejected: %v", k, err)
		}
	}
	// The super-unit check must see the sum, not any single rate: eight
	// kinds at exactly 1/8 each are individually harmless but total
	// exactly 1 (1/8 is a binary fraction, so the sum is exact).
	spread := Plan{
		Transient: 0.125, Panic: 0.125, Hang: 0.125, Corrupt: 0.125,
		DomainLoss: 0.125, Preempt: 0.125, NetDrop: 0.125, NetDelay: 0.125,
	}
	if err := spread.Validate(); err == nil {
		t.Error("rates summing to 1 accepted")
	}
	// Compute and network kinds must share one budget, not two.
	mixed := Plan{Transient: 0.5, NetDrop: 0.5}
	if err := mixed.Validate(); err == nil {
		t.Error("compute+net rates summing to 1 accepted")
	}
	if err := (Plan{Transient: 0.49, NetDrop: 0.49}).Validate(); err != nil {
		t.Errorf("compute+net rates under 1 rejected: %v", err)
	}
	if err := (Plan{}).Validate(); err != nil {
		t.Errorf("zero plan rejected: %v", err)
	}
	if (Plan{}).Enabled() {
		t.Error("zero plan claims to be enabled")
	}
	if !(Plan{NetPartition: 0.01}).Enabled() {
		t.Error("net-only plan claims to be disabled")
	}
}

// TestCountsAddTotalAllKinds tallies one fault of every kind and checks
// that each lands in its own bucket, that the network kinds reach both
// Total and String, and that None is ignored.
func TestCountsAddTotalAllKinds(t *testing.T) {
	var c Counts
	for k := Kind(1); k < numKinds; k++ {
		c.Add(k)
	}
	want := Counts{
		Transient: 1, Panic: 1, Hang: 1, Corrupt: 1, DomainLoss: 1,
		Preempt: 1, NetDrop: 1, NetDelay: 1, NetPartition: 1, NetCorrupt: 1,
	}
	if c != want {
		t.Fatalf("per-kind tally wrong: %+v", c)
	}
	if c.Total() != int(numKinds)-1 {
		t.Fatalf("Total() = %d, want %d", c.Total(), int(numKinds)-1)
	}
	c.Add(None)
	if c.Total() != int(numKinds)-1 {
		t.Fatal("Add(None) changed the tally")
	}
	s := c.String()
	for _, frag := range []string{"net-drop", "net-delay", "net-partition", "net-corrupt"} {
		if !strings.Contains(s, frag) {
			t.Errorf("Counts.String() %q omits %s", s, frag)
		}
	}
	if zero := (Counts{}).String(); !strings.Contains(zero, "0 injected") {
		t.Errorf("zero tally renders as %q", zero)
	}
}

// TestUniformKeyOrderings pins the identity-keyed variate stream: the
// value is a pure function of (seed, key sequence), the key sequence is
// position-sensitive (swapping keys changes the draw, so task and
// attempt identities can never alias), and prefixes never collide with
// their extensions.
func TestUniformKeyOrderings(t *testing.T) {
	if Uniform(3, 7, 11) != Uniform(3, 7, 11) {
		t.Fatal("Uniform is not deterministic for multi-key draws")
	}
	if Uniform(3, 7, 11) == Uniform(3, 11, 7) {
		t.Error("swapping keys did not change the draw: task/attempt identities alias")
	}
	if Uniform(3, 7) == Uniform(3, 7, 0) {
		t.Error("appending a zero key did not change the draw")
	}
	if Uniform(3) == Uniform(3, 0) {
		t.Error("seed-only draw equals its zero-key extension")
	}
	if Uniform(3, -7) == Uniform(3, 7) {
		t.Error("negative and positive keys alias")
	}
	// Distinct seeds must decorrelate the whole stream, not just shift it.
	same := 0
	for i := int64(0); i < 1000; i++ {
		if Uniform(1, i) == Uniform(2, i) {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/1000 draws identical across seeds 1 and 2", same)
	}
}

// TestSplitmix64Determinism pins the mixer itself: fixed points would
// freeze the draw stream, and collisions over a dense input range would
// break the bijection the identity-keyed scheme relies on.
func TestSplitmix64Determinism(t *testing.T) {
	if splitmix64(0) == 0 {
		t.Fatal("splitmix64(0) is a fixed point")
	}
	if splitmix64(12345) != splitmix64(12345) {
		t.Fatal("splitmix64 is not deterministic")
	}
	seen := make(map[uint64]uint64, 1<<16)
	for x := uint64(0); x < 1<<16; x++ {
		h := splitmix64(x)
		if prev, dup := seen[h]; dup {
			t.Fatalf("splitmix64 collision: inputs %d and %d both map to %d", prev, x, h)
		}
		seen[h] = x
	}
}
