package fault

import (
	"errors"
	"math"
	"testing"
)

func TestDrawIsPureInTaskIdentity(t *testing.T) {
	plan := Plan{Seed: 42, Transient: 0.2, Panic: 0.05, Hang: 0.05, Corrupt: 0.05, DomainLoss: 0.05}
	in, err := NewInjector(plan)
	if err != nil {
		t.Fatal(err)
	}
	// Same (task, attempt) must yield the same kind no matter how many
	// other draws happen in between, in any order.
	ref := map[[2]int]Kind{}
	for id := 0; id < 200; id++ {
		for att := 1; att <= 3; att++ {
			ref[[2]int{id, att}] = in.Draw(id, att)
		}
	}
	for id := 199; id >= 0; id-- {
		for att := 3; att >= 1; att-- {
			if got := in.Draw(id, att); got != ref[[2]int{id, att}] {
				t.Fatalf("draw (%d,%d) changed from %v to %v on re-draw", id, att, ref[[2]int{id, att}], got)
			}
		}
	}
	// A second injector with an equal plan agrees on every draw.
	in2, err := NewInjector(plan)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range ref {
		if got := in2.Draw(k[0], k[1]); got != v {
			t.Fatalf("fresh injector disagrees at %v: %v vs %v", k, got, v)
		}
	}
}

func TestDrawRatesAreHonoured(t *testing.T) {
	plan := Plan{Seed: 7, Transient: 0.15, Panic: 0.05, Hang: 0.03, Corrupt: 0.04, DomainLoss: 0.03}
	in, err := NewInjector(plan)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200000
	var c Counts
	for id := 0; id < n; id++ {
		c.Add(in.Draw(id, 1))
	}
	check := func(name string, got int, want float64) {
		frac := float64(got) / n
		if math.Abs(frac-want) > 0.01 {
			t.Errorf("%s rate %.4f, want %.2f", name, frac, want)
		}
	}
	check("transient", c.Transient, plan.Transient)
	check("panic", c.Panic, plan.Panic)
	check("hang", c.Hang, plan.Hang)
	check("corrupt", c.Corrupt, plan.Corrupt)
	check("domain-loss", c.DomainLoss, plan.DomainLoss)
	if c.Total() == 0 {
		t.Fatal("no faults injected at 30% total rate")
	}
}

func TestSeedChangesSequence(t *testing.T) {
	a, err := NewInjector(Plan{Seed: 1, Transient: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewInjector(Plan{Seed: 2, Transient: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for id := 0; id < 1000; id++ {
		if a.Draw(id, 1) == b.Draw(id, 1) {
			same++
		}
	}
	if same == 1000 {
		t.Fatal("different seeds produced identical fault sequences")
	}
}

func TestMaxInjectionsCapsPerTaskFaults(t *testing.T) {
	in, err := NewInjector(Plan{Seed: 3, Transient: 0.9, MaxInjections: 2})
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 100; id++ {
		for att := 3; att <= 10; att++ {
			if k := in.Draw(id, att); k != None {
				t.Fatalf("task %d attempt %d drew %v past the injection cap", id, att, k)
			}
		}
	}
}

func TestNilInjectorNeverInjects(t *testing.T) {
	in, err := NewInjector(Plan{})
	if err != nil {
		t.Fatal(err)
	}
	if in != nil {
		t.Fatal("empty plan produced a non-nil injector")
	}
	if k := in.Draw(0, 1); k != None {
		t.Fatalf("nil injector drew %v", k)
	}
	if in.Plan().Enabled() {
		t.Fatal("nil injector reports an enabled plan")
	}
}

func TestValidate(t *testing.T) {
	bad := []Plan{
		{Transient: -0.1},
		{Transient: 0.6, Panic: 0.5},
		{Hang: math.NaN()},
		{Transient: 0.1, MaxInjections: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad plan %d accepted: %+v", i, p)
		}
	}
	if err := (Plan{Transient: 0.3, Corrupt: 0.2}).Validate(); err != nil {
		t.Errorf("good plan rejected: %v", err)
	}
}

func TestErrorWrapsErrInjected(t *testing.T) {
	for k := Transient; k <= DomainLoss; k++ {
		if !errors.Is(Error(k), ErrInjected) {
			t.Fatalf("%v error does not wrap ErrInjected", k)
		}
	}
	if Error(None) != nil {
		t.Fatal("None produced an error")
	}
}

func TestUniformRangeAndDeterminism(t *testing.T) {
	for i := int64(0); i < 10000; i++ {
		u := Uniform(99, i)
		if u < 0 || u >= 1 {
			t.Fatalf("Uniform(99,%d) = %v outside [0,1)", i, u)
		}
		if u != Uniform(99, i) {
			t.Fatalf("Uniform not deterministic at key %d", i)
		}
	}
	// Mean of a uniform sample should be near 1/2.
	sum := 0.0
	for i := int64(0); i < 10000; i++ {
		sum += Uniform(5, i)
	}
	if mean := sum / 10000; math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("Uniform mean %v far from 0.5", mean)
	}
}
