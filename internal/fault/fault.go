// Package fault is the deterministic chaos engine shared by the live job
// runtime (internal/runtime) and the discrete-event cluster simulator
// (internal/cluster): a seeded, typed fault plan that decides, for every
// (task, attempt) pair, whether the execution dies and how. The paper's
// job-management layer exists because at 3000+ nodes tasks fail
// constantly - GPUs drop off the bus, solves hang, whole failure domains
// (mpi_jm lumps) die together - and a scheduler can only be trusted to
// survive those modes if they can be replayed exactly.
//
// The engine's one design rule is that draws are keyed by task identity,
// not draw order: the fault assigned to attempt k of task 17 is a pure
// function of (seed, 17, k). Under a concurrent executor the order in
// which goroutines reach the coin flip is scheduler noise; keying by
// identity makes the same seed produce the same fault sequence at any
// worker count, which is what turns a chaos run into a regression test.
package fault

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Kind is a fault type from the taxonomy observed in the paper's runs.
type Kind int

const (
	// None means the execution proceeds normally.
	None Kind = iota
	// Transient is a clean, detected failure: the task dies with an error
	// and can be retried immediately (node crash, file-system hiccup).
	Transient
	// Panic crashes the worker mid-task (segfault analogue); the executor
	// must isolate it so the worker class survives.
	Panic
	// Hang stalls the task forever: it stops making progress without
	// returning, and only a watchdog deadline can reclaim the slot.
	Hang
	// Corrupt completes the task but with a damaged result, the silent
	// failure mode checksums exist for; the executor must detect and
	// discard the value.
	Corrupt
	// DomainLoss kills the task and everything sharing its failure
	// domain: the paper's MPI_Abort-brings-down-the-lump behaviour.
	DomainLoss
	// Preempt ends the whole allocation early: the batch system reclaims
	// the nodes (walltime cut, higher-priority job, maintenance drain).
	// Unlike the other kinds it does not fail the drawing execution - it
	// fires the executor's drain path at the injected instant, so
	// in-flight work races the grace period and queued work is refused.
	Preempt
	// NetDrop loses one frame on the wire: the sender's transmission never
	// arrives and must be retransmitted after backoff (switch buffer
	// overrun, lossy link). A detected, recoverable fault.
	NetDrop
	// NetDelay stalls one frame for a bounded interval before delivery:
	// congestion or adaptive-routing detours. The frame arrives intact.
	NetDelay
	// NetPartition severs a link for a whole epoch: every frame - data and
	// heartbeats alike - vanishes until the coordinator declares the far
	// end dead and recovers. The fault heartbeat timeouts exist for.
	NetPartition
	// NetCorrupt damages a frame in flight: the receiver's checksum must
	// catch it and discard the frame (corruption is a detected fault,
	// never a silent wrong answer), and the sender retransmits.
	NetCorrupt

	numKinds
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Transient:
		return "transient"
	case Panic:
		return "panic"
	case Hang:
		return "hang"
	case Corrupt:
		return "corrupt"
	case DomainLoss:
		return "domain-loss"
	case Preempt:
		return "preempt"
	case NetDrop:
		return "net-drop"
	case NetDelay:
		return "net-delay"
	case NetPartition:
		return "net-partition"
	case NetCorrupt:
		return "net-corrupt"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// IsNet reports whether k is a network fault kind: injected per frame (or
// per link epoch, for NetPartition) on the wire rather than per task
// execution.
func (k Kind) IsNet() bool {
	switch k {
	case NetDrop, NetDelay, NetPartition, NetCorrupt:
		return true
	}
	return false
}

// ErrInjected is the base error of every injected fault; use errors.Is to
// distinguish injected chaos from organic task failures.
var ErrInjected = errors.New("fault: injected failure")

// Plan is a seeded fault schedule: per-attempt probabilities for each
// fault kind. The zero value injects nothing. The probabilities of one
// draw are mutually exclusive (a single uniform variate is partitioned),
// so their sum must stay below 1.
type Plan struct {
	// Seed fixes the whole fault sequence; two injectors with equal plans
	// agree on every draw.
	Seed int64
	// Transient, Panic, Hang, Corrupt, DomainLoss, Preempt are the
	// per-execution probabilities of each fault kind.
	Transient  float64
	Panic      float64
	Hang       float64
	Corrupt    float64
	DomainLoss float64
	Preempt    float64
	// NetDrop, NetDelay, NetPartition, NetCorrupt are the per-frame (for
	// NetPartition: per link epoch) probabilities of the network fault
	// kinds. Task executors ignore them; the wire layer and the cluster
	// twin draw them with link/frame identity keys.
	NetDrop      float64
	NetDelay     float64
	NetPartition float64
	NetCorrupt   float64
	// MaxInjections, when positive, caps how many faults one task can
	// draw: attempts past the cap run clean. Chaos tests use it to
	// guarantee every task eventually succeeds within its retry budget.
	MaxInjections int
}

// rates returns the per-kind probabilities indexed by Kind.
func (p Plan) rates() [numKinds]float64 {
	var r [numKinds]float64
	r[Transient] = p.Transient
	r[Panic] = p.Panic
	r[Hang] = p.Hang
	r[Corrupt] = p.Corrupt
	r[DomainLoss] = p.DomainLoss
	r[Preempt] = p.Preempt
	r[NetDrop] = p.NetDrop
	r[NetDelay] = p.NetDelay
	r[NetPartition] = p.NetPartition
	r[NetCorrupt] = p.NetCorrupt
	return r
}

// Total returns the summed per-execution fault probability.
func (p Plan) Total() float64 {
	return p.Transient + p.Panic + p.Hang + p.Corrupt + p.DomainLoss + p.Preempt +
		p.NetDrop + p.NetDelay + p.NetPartition + p.NetCorrupt
}

// Enabled reports whether the plan injects anything at all.
func (p Plan) Enabled() bool { return p.Total() > 0 }

// Validate checks the plan.
func (p Plan) Validate() error {
	r := p.rates()
	for k := Kind(1); k < numKinds; k++ {
		if r[k] < 0 || math.IsNaN(r[k]) {
			return fmt.Errorf("fault: negative %v rate %g", k, r[k])
		}
	}
	if t := p.Total(); t >= 1 {
		return fmt.Errorf("fault: total fault rate %g outside [0,1)", t)
	}
	if p.MaxInjections < 0 {
		return fmt.Errorf("fault: negative MaxInjections %d", p.MaxInjections)
	}
	return nil
}

// String renders the plan compactly.
func (p Plan) String() string {
	if !p.Enabled() {
		return "fault: none"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "fault: seed %d,", p.Seed)
	r := p.rates()
	for k := Kind(1); k < numKinds; k++ {
		if r[k] > 0 {
			fmt.Fprintf(&b, " %v %.3g", k, r[k])
		}
	}
	if p.MaxInjections > 0 {
		fmt.Fprintf(&b, ", <=%d injections/task", p.MaxInjections)
	}
	return b.String()
}

// Counts tallies injected faults by kind; executors surface it in their
// reports so chaos runs can be compared across worker counts.
type Counts struct {
	Transient  int
	Panic      int
	Hang       int
	Corrupt    int
	DomainLoss int
	Preempt    int
	// Network fault tallies (wire layer and cluster twin).
	NetDrop      int
	NetDelay     int
	NetPartition int
	NetCorrupt   int
}

// Add records one injected fault.
func (c *Counts) Add(k Kind) {
	switch k {
	case Transient:
		c.Transient++
	case Panic:
		c.Panic++
	case Hang:
		c.Hang++
	case Corrupt:
		c.Corrupt++
	case DomainLoss:
		c.DomainLoss++
	case Preempt:
		c.Preempt++
	case NetDrop:
		c.NetDrop++
	case NetDelay:
		c.NetDelay++
	case NetPartition:
		c.NetPartition++
	case NetCorrupt:
		c.NetCorrupt++
	}
}

// Total returns the summed injected-fault count.
func (c Counts) Total() int {
	return c.Transient + c.Panic + c.Hang + c.Corrupt + c.DomainLoss + c.Preempt +
		c.NetDrop + c.NetDelay + c.NetPartition + c.NetCorrupt
}

// String renders the tally.
func (c Counts) String() string {
	s := fmt.Sprintf("%d injected (%d transient, %d panic, %d hang, %d corrupt, %d domain-loss, %d preempt",
		c.Total(), c.Transient, c.Panic, c.Hang, c.Corrupt, c.DomainLoss, c.Preempt)
	if n := c.NetDrop + c.NetDelay + c.NetPartition + c.NetCorrupt; n > 0 {
		s += fmt.Sprintf(", %d net-drop, %d net-delay, %d net-partition, %d net-corrupt",
			c.NetDrop, c.NetDelay, c.NetPartition, c.NetCorrupt)
	}
	return s + ")"
}

// Injector draws faults from a validated plan. It is stateless and safe
// for concurrent use: every draw is a pure function of its keys.
type Injector struct {
	plan  Plan
	rates [numKinds]float64
}

// NewInjector validates the plan and returns its injector. A nil injector
// is legal and never injects, so callers may keep a single code path.
func NewInjector(p Plan) (*Injector, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !p.Enabled() {
		return nil, nil
	}
	return &Injector{plan: p, rates: p.rates()}, nil
}

// Plan returns the injector's plan.
func (in *Injector) Plan() Plan {
	if in == nil {
		return Plan{}
	}
	return in.plan
}

// Draw returns the fault (or None) assigned to one execution attempt of a
// task. attempt counts from 1. The result depends only on (plan, taskID,
// attempt) - never on when or where the attempt runs.
func (in *Injector) Draw(taskID, attempt int) Kind {
	if in == nil {
		return None
	}
	if in.plan.MaxInjections > 0 && attempt > in.plan.MaxInjections {
		return None
	}
	u := Uniform(in.plan.Seed, int64(taskID), int64(attempt))
	acc := 0.0
	for k := Transient; k < numKinds; k++ {
		acc += in.rates[k]
		if u < acc {
			return k
		}
	}
	return None
}

// Error returns the canonical error value for an injected fault kind,
// wrapping ErrInjected.
func Error(k Kind) error {
	if k == None {
		return nil
	}
	return fmt.Errorf("%w: %v", ErrInjected, k)
}

// splitmix64 is the finalizer of the SplitMix64 generator: a cheap,
// well-mixed 64-bit permutation (Steele, Lea & Flood, OOPSLA 2014). Used
// here as a keyed hash: one round per key folds the key in, and the
// avalanche property makes neighbouring task IDs uncorrelated.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// LinkKey folds a directed link (src rank -> dst rank) into the taskID
// slot of a Draw. The coordinator is rank -1 by convention. Both the live
// wire layer and the cluster simulator's network twin must key their
// draws through this helper so the same plan yields the same fault
// sequence on both - the distributed extension of the live-vs-simulator
// crosscheck contract.
func LinkKey(src, dst int) int {
	return (src+2)*1_000_003 + (dst + 2)
}

// MsgKey folds a frame's identity - transfer id, face coordinates, and
// transmission attempt - into the attempt slot of a Draw. Attempts count
// from 1; a retransmission after an injected drop or corruption draws a
// fresh variate, so the retry loop terminates with probability one and
// replays identically on the simulated twin.
func MsgKey(xid uint64, mu, dir, attempt int) int {
	return int(splitmix64(xid<<16^uint64(mu<<8)^uint64(dir<<4)^uint64(attempt)) >> 1)
}

// Uniform hashes (seed, keys...) to a uniform variate in [0, 1). It is
// the shared deterministic randomness primitive: fault draws and retry
// jitter both derive from it, keyed by task identity.
func Uniform(seed int64, keys ...int64) float64 {
	h := splitmix64(uint64(seed))
	for _, k := range keys {
		h = splitmix64(h ^ uint64(k))
	}
	// 53 high bits -> [0,1) with full double precision.
	return float64(h>>11) / (1 << 53)
}
