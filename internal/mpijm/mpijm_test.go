package mpijm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"femtoverse/internal/cluster"
	"femtoverse/internal/fault"
	"femtoverse/internal/metaq"
)

func sierraLike(nodes int, seed int64) cluster.Config {
	return cluster.Config{
		Nodes: nodes, GPUsPerNode: 4, CPUSlotsPerNode: 40,
		JitterSigma: 0.05, Seed: seed,
	}
}

func propTasks(n int, base, spread float64, seed int64) []cluster.Task {
	rng := rand.New(rand.NewSource(seed))
	tasks := make([]cluster.Task, n)
	for i := range tasks {
		tasks[i] = cluster.Task{
			ID: i, Name: "prop", Kind: cluster.GPUTask,
			GPUs:    16,
			Seconds: base * (1 + spread*(2*rng.Float64()-1)),
			TFlops:  28,
		}
	}
	return tasks
}

func TestBlocksPreventFragmentation(t *testing.T) {
	// Under mpi_jm with block size = job size, no GPU task ever lands on
	// scattered nodes, even with a mixed workload that fragments METAQ.
	cfg := sierraLike(32, 1)
	rng := rand.New(rand.NewSource(2))
	var tasks []cluster.Task
	for i := 0; i < 48; i++ {
		gpus := 8
		if i%3 == 0 {
			gpus = 16
		}
		tasks = append(tasks, cluster.Task{
			ID: i, Kind: cluster.GPUTask, GPUs: gpus,
			Seconds: 500 * (1 + 0.5*rng.Float64()),
		})
	}
	rep, err := cluster.Run(cfg, tasks, New(Params{LumpNodes: 16, BlockNodes: 4}))
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range rep.PerTask {
		if st.Scattered {
			t.Fatalf("task %d scattered across %v despite blocks", st.Task.ID, st.Nodes)
		}
	}
}

func TestCoSchedulingMakesContractionsFree(t *testing.T) {
	// The paper: contractions (3% of compute, CPU-only) co-scheduled on
	// the nodes running GPU solves have their cost "brought to zero".
	cfg := sierraLike(16, 3)
	gpuOnly := propTasks(16, 1000, 0.1, 4)

	var withCPU []cluster.Task
	withCPU = append(withCPU, gpuOnly...)
	for i := 0; i < 32; i++ {
		withCPU = append(withCPU, cluster.Task{
			ID: 1000 + i, Name: "contraction", Kind: cluster.CPUTask,
			CPUs: 8, Seconds: 300,
		})
	}

	co := New(Params{LumpNodes: 16, BlockNodes: 4, CoSchedule: true})
	repGPU, err := cluster.Run(cfg, gpuOnly, co)
	if err != nil {
		t.Fatal(err)
	}
	repBoth, err := cluster.Run(cfg, withCPU, co)
	if err != nil {
		t.Fatal(err)
	}
	// Adding the whole contraction workload must cost (nearly) nothing.
	if repBoth.Makespan > repGPU.Makespan*1.02 {
		t.Fatalf("co-scheduled contractions extended makespan %.0f -> %.0f",
			repGPU.Makespan, repBoth.Makespan)
	}

	// Under METAQ the same workload steals nodes from solves.
	repMQ, err := cluster.Run(cfg, withCPU, metaq.Policy{})
	if err != nil {
		t.Fatal(err)
	}
	if repMQ.Makespan <= repBoth.Makespan {
		t.Fatalf("METAQ (%.0f) should pay for CPU tasks that mpi_jm (%.0f) amortizes",
			repMQ.Makespan, repBoth.Makespan)
	}
}

func TestStartup4224NodesInThreeToFiveMinutes(t *testing.T) {
	for _, lump := range []int{32, 128} {
		s := LumpStartupSeconds(4224, lump)
		if s < 2*60 || s > 5*60 {
			t.Fatalf("lump=%d: startup %v s outside the paper's 3-5 minute window", lump, s)
		}
	}
	if ConnectSeconds() >= 60 {
		t.Fatal("lump connection should take under a minute")
	}
	// And it beats the monolithic launch at scale.
	if StartupAdvantage(4224, 128) <= 1.5 {
		t.Fatalf("no startup advantage at 4224 nodes: %v", StartupAdvantage(4224, 128))
	}
}

func TestMVAPICHPenaltyLowersSustainedRate(t *testing.T) {
	cfg := sierraLike(16, 5)
	tasks := propTasks(16, 1000, 0.05, 6)
	tuned, err := cluster.Run(cfg, tasks, New(Params{LumpNodes: 16, BlockNodes: 4, SolveEfficiency: 1.0}))
	if err != nil {
		t.Fatal(err)
	}
	mvapich, err := cluster.Run(cfg, tasks, New(Params{LumpNodes: 16, BlockNodes: 4, SolveEfficiency: 0.75}))
	if err != nil {
		t.Fatal(err)
	}
	ratio := (mvapich.Makespan - mvapich.StartupSeconds) / (tuned.Makespan - tuned.StartupSeconds)
	if ratio < 1.2 || ratio > 1.5 {
		t.Fatalf("MVAPICH2 slowdown ratio %.2f, want ~1.33", ratio)
	}
}

func TestFailedLumpsReduceCapacityButWorkCompletes(t *testing.T) {
	cfg := sierraLike(32, 7)
	tasks := propTasks(24, 500, 0.1, 8)
	ok, err := cluster.Run(cfg, tasks, New(Params{LumpNodes: 8, BlockNodes: 4}))
	if err != nil {
		t.Fatal(err)
	}
	degraded, err := cluster.Run(cfg, tasks, New(Params{LumpNodes: 8, BlockNodes: 4, FailedLumps: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if degraded.TasksDone != len(tasks) {
		t.Fatal("failed lump lost tasks")
	}
	if degraded.Makespan <= ok.Makespan {
		t.Fatal("losing a lump should lengthen the campaign")
	}
}

func TestLargeJobsSpanWholeBlocks(t *testing.T) {
	cfg := sierraLike(16, 9)
	// One 32-GPU (8-node) job with 4-node blocks: needs two adjacent
	// fully-free blocks.
	tasks := []cluster.Task{{ID: 0, Kind: cluster.GPUTask, GPUs: 32, Seconds: 100}}
	rep, err := cluster.Run(cfg, tasks, New(Params{LumpNodes: 16, BlockNodes: 4}))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerTask[0].Nodes) != 8 || rep.PerTask[0].Scattered {
		t.Fatalf("large-job placement wrong: %v", rep.PerTask[0].Nodes)
	}
}

func TestSpawnOverheadFarBelowMpirun(t *testing.T) {
	p := Params{}.WithDefaults()
	if p.SpawnOverhead >= 15 {
		t.Fatalf("spawn overhead %v should be far below METAQ's mpirun cost", p.SpawnOverhead)
	}
	if p.LumpNodes != 128 || p.BlockNodes != 4 || p.SolveEfficiency != 1 {
		t.Fatalf("defaults wrong: %+v", p)
	}
}

// TestRandomWorkloadsProperty drives random workloads through mpi_jm and
// METAQ with testing/quick: every task always completes, utilization
// stays physical, and mpi_jm never scatters a placement.
func TestRandomWorkloadsProperty(t *testing.T) {
	f := func(seed int64, nRaw, mixRaw uint8) bool {
		n := int(nRaw%40) + 5
		rng := rand.New(rand.NewSource(seed))
		var tasks []cluster.Task
		for i := 0; i < n; i++ {
			// The paper's discipline: block size is a multiple of the job
			// sizes (2- and 4-node jobs in 4-node blocks).
			gpus := 8
			if int(mixRaw+uint8(i))%3 == 1 {
				gpus = 16
			}
			tasks = append(tasks, cluster.Task{
				ID: i, Kind: cluster.GPUTask, GPUs: gpus,
				Seconds: 100 * (1 + rng.Float64()),
			})
		}
		cfg := cluster.Config{
			Nodes: 24, GPUsPerNode: 4, CPUSlotsPerNode: 40,
			JitterSigma: 0.04, Seed: seed,
		}
		for _, pol := range []cluster.Policy{
			New(Params{LumpNodes: 12, BlockNodes: 4}),
			metaq.Policy{},
		} {
			rep, err := cluster.Run(cfg, tasks, pol)
			if err != nil {
				return false
			}
			if rep.TasksDone != n {
				return false
			}
			if rep.GPUUtil < 0 || rep.GPUUtil > 1 {
				return false
			}
		}
		// mpi_jm specifically: no scattered placements.
		rep, err := cluster.Run(cfg, tasks, New(Params{LumpNodes: 12, BlockNodes: 4}))
		if err != nil {
			return false
		}
		for _, st := range rep.PerTask {
			if st.Scattered {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestRankRecoverySeconds pins the calibrated rank-loss recovery figure:
// heartbeat detection plus the same DPM connect window as lump startup,
// well under the monolithic-restart alternative.
func TestRankRecoverySeconds(t *testing.T) {
	got := RankRecoverySeconds()
	if got <= ConnectSeconds() {
		t.Fatalf("recovery %vs must exceed the bare connect window %vs", got, ConnectSeconds())
	}
	if got > 60 {
		t.Fatalf("recovery %vs exceeds a minute; rank respawn should not cost a startup", got)
	}
	rep, err := cluster.Run(cluster.Config{
		Nodes: 8, GPUsPerNode: 4, CPUSlotsPerNode: 40, Seed: 2,
		Fault:                    fault.Plan{Seed: 3, NetPartition: 0.5},
		PartitionRecoverySeconds: RankRecoverySeconds(),
	}, []cluster.Task{
		{ID: 0, Kind: cluster.GPUTask, GPUs: 16, Seconds: 100, TFlops: 28},
		{ID: 1, Kind: cluster.GPUTask, GPUs: 16, Seconds: 100, TFlops: 28},
		{ID: 2, Kind: cluster.GPUTask, GPUs: 16, Seconds: 100, TFlops: 28},
		{ID: 3, Kind: cluster.GPUTask, GPUs: 16, Seconds: 100, TFlops: 28},
	}, cluster.NaiveBundle{})
	if err != nil {
		t.Fatal(err)
	}
	if want := float64(rep.Faults.NetPartition) * RankRecoverySeconds(); rep.NetRecoverySeconds != want {
		t.Fatalf("calibrated penalty not applied: got %v, want %v", rep.NetRecoverySeconds, want)
	}
}

func TestCoScheduleNeverDoubleBooksHostCores(t *testing.T) {
	// Regression: a dispatch round that first promises both CPU slots of
	// a whole-free node to contractions and then hands the same node to a
	// GPU solve used to double-book the host core. The shape needs a
	// solve completion that releases a fan of contractions while another
	// solve is pending and exactly one whole node is free.
	cfg := cluster.Config{Nodes: 2, GPUsPerNode: 1, CPUSlotsPerNode: 2, Seed: 1}
	tasks := []cluster.Task{
		{ID: 0, Name: "solve-a", Kind: cluster.GPUTask, GPUs: 1, Seconds: 10},
		{ID: 1, Name: "c1", Kind: cluster.CPUTask, CPUs: 1, Seconds: 5, DependsOn: []int{0}},
		{ID: 2, Name: "c2", Kind: cluster.CPUTask, CPUs: 1, Seconds: 5, DependsOn: []int{0}},
		{ID: 3, Name: "c3", Kind: cluster.CPUTask, CPUs: 1, Seconds: 5, DependsOn: []int{0}},
		{ID: 4, Name: "c4", Kind: cluster.CPUTask, CPUs: 1, Seconds: 5, DependsOn: []int{0}},
		{ID: 5, Name: "solve-b", Kind: cluster.GPUTask, GPUs: 1, Seconds: 30},
		{ID: 6, Name: "solve-c", Kind: cluster.GPUTask, GPUs: 1, Seconds: 10, DependsOn: []int{0}},
	}
	rep, err := cluster.Run(cfg, tasks, New(Params{LumpNodes: 2, BlockNodes: 2, CoSchedule: true}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.TasksDone != len(tasks) {
		t.Fatalf("finished %d of %d tasks", rep.TasksDone, len(tasks))
	}
}
