// Package mpijm implements the paper's mpi_jm job manager as a scheduling
// policy for the cluster simulator. mpi_jm starts as parallel mpirun
// launches of single-node managers over "lumps" of nodes (32-128), the
// first lump hosting the scheduler to which the rest connect via MPI
// dynamic process management; lumps are subdivided into "blocks" sized to
// a multiple of the largest job, whose boundaries prevent fragmentation
// and keep high-bandwidth communication local; tasks are spawned with
// MPI_Comm_spawn_multiple (no per-task mpirun); and because the scheduler
// holds a detailed per-node resource map, CPU-only tasks are safely
// overlaid on the idle cores of GPU-busy nodes, making the contraction
// workload effectively free.
package mpijm

import (
	"fmt"
	"math"

	"femtoverse/internal/cluster"
)

// Params configures the job manager.
type Params struct {
	// LumpNodes is the size of each manager launch group (paper: 32-128).
	LumpNodes int
	// BlockNodes is the fragmentation-prevention granularity, a multiple
	// of the largest job size (paper: 4 or 8 while lumps are 64-128).
	BlockNodes int
	// SpawnOverhead is the per-task MPI_Comm_spawn_multiple cost in
	// seconds; far below a fresh mpirun. Default 1.
	SpawnOverhead float64
	// SolveEfficiency multiplies every GPU task's speed: 1.0 for tuned
	// MPI stacks, ~0.75 for the not-yet-tuned MVAPICH2 the paper needed
	// for dynamic process management (its 15% vs the anticipated 20%).
	SolveEfficiency float64
	// CoSchedule enables overlaying CPU tasks on GPU-busy nodes.
	CoSchedule bool
	// FailedLumps counts lumps that failed to start (bad node or file
	// system problems) and are simply ignored, as the paper describes;
	// their nodes are unavailable.
	FailedLumps int
}

// WithDefaults fills zero fields with the production defaults.
func (p Params) WithDefaults() Params {
	if p.LumpNodes <= 0 {
		p.LumpNodes = 128
	}
	if p.BlockNodes <= 0 {
		p.BlockNodes = 4
	}
	if p.SpawnOverhead <= 0 {
		p.SpawnOverhead = 1
	}
	if p.SolveEfficiency <= 0 || p.SolveEfficiency > 1 {
		p.SolveEfficiency = 1
	}
	return p
}

// Policy is the mpi_jm scheduling policy.
type Policy struct {
	P Params
}

// New returns a policy with defaulted parameters.
func New(p Params) *Policy { return &Policy{P: p.WithDefaults()} }

// Name implements cluster.Policy.
func (j *Policy) Name() string {
	return fmt.Sprintf("mpi_jm(lump=%d,block=%d)", j.P.LumpNodes, j.P.BlockNodes)
}

// Startup implements cluster.Policy with the lump-parallel launch model.
func (j *Policy) Startup(cfg cluster.Config) float64 {
	return LumpStartupSeconds(cfg.Nodes, j.P.LumpNodes)
}

// unavailable reports whether a node belongs to a failed lump (failed
// lumps are the trailing ones, a deterministic convention adequate for
// capacity accounting).
func (j *Policy) unavailable(cfg cluster.Config, node int) bool {
	if j.P.FailedLumps <= 0 {
		return false
	}
	lumps := (cfg.Nodes + j.P.LumpNodes - 1) / j.P.LumpNodes
	lump := node / j.P.LumpNodes
	return lump >= lumps-j.P.FailedLumps
}

// Dispatch implements cluster.Policy.
func (j *Policy) Dispatch(s *cluster.Sim) []cluster.Start {
	cfg := s.Config()
	var starts []cluster.Start

	// Free whole nodes, grouped by block so placements never straddle a
	// block boundary (this is what prevents fragmentation). Blocks are
	// indexed densely, so a slice keeps dispatch deterministic.
	nBlocks := (cfg.Nodes + j.P.BlockNodes - 1) / j.P.BlockNodes
	freeByBlock := make([][]int, nBlocks)
	for _, n := range s.FreeWholeNodes() {
		if j.unavailable(cfg, n) {
			continue
		}
		// A solve needs one host core per GPU alongside the GPUs
		// themselves; a node whose CPU slots are all held by running
		// contractions cannot take one, however free its GPUs are.
		if s.NodeCPUsFree(n) < cfg.GPUsPerNode {
			continue
		}
		b := n / j.P.BlockNodes
		freeByBlock[b] = append(freeByBlock[b], n)
	}
	// takeFromBlock prefers a contiguous run inside a block (blocks are
	// sized as a multiple of the job sizes, so runs normally exist); if
	// holes from oddly-sized jobs prevent that, any in-block nodes still
	// satisfy mpi_jm's locality guarantee - the block is the locality
	// domain.
	takeFromBlock := func(need int) []int {
		for b := range freeByBlock {
			free := freeByBlock[b]
			if len(free) < need {
				continue
			}
			// Look for a contiguous run of length need.
			for lo := 0; lo+need <= len(free); lo++ {
				if free[lo+need-1]-free[lo] == need-1 {
					nodes := append([]int(nil), free[lo:lo+need]...)
					freeByBlock[b] = append(free[:lo:lo], free[lo+need:]...)
					return nodes
				}
			}
			// Fall back to the first free nodes of the block.
			nodes := free[:need]
			freeByBlock[b] = free[need:]
			return nodes
		}
		return nil
	}
	// cpuReserved tracks CPU slots promised to earlier starts in this
	// dispatch round, so co-scheduled tasks never oversubscribe a node.
	cpuReserved := map[int]int{}

	for _, id := range s.PendingIDs() {
		t, _ := s.PendingTask(id)
		if !s.Admits(t, j.P.SpawnOverhead) {
			// Admission control: don't start what you can't finish. The
			// task is left pending; if the allocation ends first it is
			// reported refused, never stranded mid-flight.
			continue
		}
		switch t.Kind {
		case cluster.GPUTask:
			per := cfg.GPUsPerNode
			need := (t.GPUs + per - 1) / per
			if need > j.P.BlockNodes {
				// Large jobs span whole blocks: assemble adjacent full
				// blocks.
				if nodes := j.adjacentBlocks(freeByBlock, need); nodes != nil {
					starts = append(starts, j.startGPU(id, nodes))
					for _, n := range nodes {
						cpuReserved[n] += per // host cores of the solve
					}
				}
				continue
			}
			if nodes := takeFromBlock(need); nodes != nil {
				starts = append(starts, j.startGPU(id, nodes))
				for _, n := range nodes {
					cpuReserved[n] += per
				}
			}
		case cluster.CPUTask:
			if !j.P.CoSchedule {
				// Without co-scheduling behave like METAQ: need an idle
				// node from some block.
				if nodes := takeFromBlock(1); nodes != nil {
					starts = append(starts, cluster.Start{
						TaskID: id, Nodes: nodes, SpeedPenalty: 1,
						Overhead: j.P.SpawnOverhead, Exclusive: true,
					})
				}
				continue
			}
			// Co-scheduling: the resource map finds free CPU slots on any
			// node, including ones whose GPUs are busy with solves.
			for n := 0; n < cfg.Nodes; n++ {
				if j.unavailable(cfg, n) {
					continue
				}
				if s.NodeCPUsFree(n)-cpuReserved[n] >= t.CPUs {
					starts = append(starts, cluster.Start{
						TaskID: id, Nodes: []int{n}, SpeedPenalty: 1,
						Overhead: j.P.SpawnOverhead,
					})
					cpuReserved[n] += t.CPUs
					// A GPU placement on this node would need one host
					// core per GPU; once the contractions promised in
					// this round leave fewer than that, the node is no
					// longer whole for takeFromBlock/adjacentBlocks.
					if s.NodeCPUsFree(n)-cpuReserved[n] < cfg.GPUsPerNode {
						b := n / j.P.BlockNodes
						for i, fn := range freeByBlock[b] {
							if fn == n {
								freeByBlock[b] = append(freeByBlock[b][:i:i], freeByBlock[b][i+1:]...)
								break
							}
						}
					}
					break
				}
			}
		}
	}
	return starts
}

func (j *Policy) startGPU(id int, nodes []int) cluster.Start {
	return cluster.Start{
		TaskID:       id,
		Nodes:        append([]int(nil), nodes...),
		SpeedPenalty: j.P.SolveEfficiency,
		Overhead:     j.P.SpawnOverhead,
	}
}

// adjacentBlocks gathers `need` free nodes from consecutive fully-free
// blocks, for jobs larger than one block.
func (j *Policy) adjacentBlocks(freeByBlock [][]int, need int) []int {
	blocksNeeded := (need + j.P.BlockNodes - 1) / j.P.BlockNodes
	run := 0
	for b := range freeByBlock {
		if len(freeByBlock[b]) == j.P.BlockNodes {
			run++
			if run == blocksNeeded {
				var nodes []int
				for bb := b - blocksNeeded + 1; bb <= b; bb++ {
					nodes = append(nodes, freeByBlock[bb]...)
					freeByBlock[bb] = nil
				}
				return nodes[:need]
			}
		} else {
			run = 0
		}
	}
	return nil
}

// DomainOf implements cluster.FailureDomain: a task's blast radius is its
// lump. The paper found that an MPI_Abort in a spawned job - even after
// disconnecting its intercommunicator - "still brings the entire lump
// down (in violation of the MPI standard), but fortunately not the entire
// system", which is why production runs used relatively small lumps on
// the new machines.
func (j *Policy) DomainOf(cfg cluster.Config, nodes []int) int {
	if len(nodes) == 0 {
		return -1
	}
	return nodes[0] / j.P.LumpNodes
}

// LumpStartupSeconds models the partitioned startup: every lump's mpirun
// runs in parallel (bounded node count, no non-linear blowup), lumps
// connect to the scheduler via DPM in under a minute, and work
// distribution begins. The paper measured 3-5 minutes to bring 4224
// Sierra nodes to useful work.
func LumpStartupSeconds(nodes, lumpNodes int) float64 {
	if nodes < 1 {
		return 0
	}
	if lumpNodes < 1 {
		lumpNodes = 128
	}
	if lumpNodes > nodes {
		lumpNodes = nodes
	}
	perLump := 30 + 0.8*float64(lumpNodes) // parallel mpirun per lump
	connect := 40.0                        // DPM connection of all lumps
	distribute := 60.0                     // scheduler begins placing work
	return perLump + connect + distribute
}

// ConnectSeconds is the lump-connection component alone (the paper: "In
// less than one minute, all lumps were connected").
func ConnectSeconds() float64 { return 40 }

// heartbeatDetectSeconds is the window the wire coordinator waits before
// converting a rank's silence into a declared death (missed-beat budget
// times the beat interval, internal/wire defaults).
const heartbeatDetectSeconds = 5.0

// RankRecoverySeconds prices one rank-loss recovery in the lump runtime:
// the heartbeat window that detects the death plus reconnecting the
// replacement rank into the job (the same DPM connect figure as lump
// startup). cluster.Config.PartitionRecoverySeconds takes this as its
// calibrated value; the cluster package defaults to the same figure when
// the config leaves it zero.
func RankRecoverySeconds() float64 { return heartbeatDetectSeconds + ConnectSeconds() }

// StartupAdvantage returns monolithic / lump startup time for a node
// count, the quantitative version of the paper's startup claim.
func StartupAdvantage(nodes, lumpNodes int) float64 {
	ls := LumpStartupSeconds(nodes, lumpNodes)
	if ls <= 0 {
		return math.Inf(1)
	}
	return cluster.MonolithicStartupSeconds(nodes) / ls
}
