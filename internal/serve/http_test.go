package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func postJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/v1/campaigns", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func drainBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer func() {
		if err := resp.Body.Close(); err != nil {
			t.Errorf("close body: %v", err)
		}
	}()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestHTTPValidationAndErrorMapping pins the request-decoding contract:
// the shared validator's findings come back as 400s naming the field,
// quota refusals as 429, unknown campaigns as 404, and submissions to a
// draining server as 503.
func TestHTTPValidationAndErrorMapping(t *testing.T) {
	s, _ := newTestServer(t, Config{StartPaused: true, DefaultQuota: 2})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	resp := postJSON(t, hs.URL, "{")
	if body := drainBody(t, resp); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: %d %s", resp.StatusCode, body)
	}
	resp = postJSON(t, hs.URL, `{"tenant":"x","bogus":1}`)
	if body := drainBody(t, resp); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: %d %s", resp.StatusCode, body)
	}
	resp = postJSON(t, hs.URL, `{"tenant":"x","spec":{"tol":-1,"nconfigs":0}}`)
	body := drainBody(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid spec: %d %s", resp.StatusCode, body)
	}
	if !strings.Contains(body, "spec.tol") || !strings.Contains(body, "spec.nconfigs") {
		t.Fatalf("validation errors not collected: %s", body)
	}
	resp = postJSON(t, hs.URL, `{"spec":{"nconfigs":1}}`)
	if body := drainBody(t, resp); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing tenant: %d %s", resp.StatusCode, body)
	}
	resp = postJSON(t, hs.URL, `{"tenant":"x","spec":{"nconfigs":3}}`)
	if body := drainBody(t, resp); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over quota: %d %s", resp.StatusCode, body)
	}

	resp, err := http.Get(hs.URL + "/v1/campaigns/c999999")
	if err != nil {
		t.Fatal(err)
	}
	if body := drainBody(t, resp); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown campaign: %d %s", resp.StatusCode, body)
	}
	resp, err = http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if body := drainBody(t, resp); resp.StatusCode != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	resp = postJSON(t, hs.URL, `{"tenant":"x","spec":{"nconfigs":1}}`)
	if body := drainBody(t, resp); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submission while draining: %d %s", resp.StatusCode, body)
	}
}

// TestHTTPCampaignLifecycle drives one campaign end to end over HTTP:
// submit, stream its events until the terminal "complete" (the stream
// must end by itself, in order, without timestamps), then fetch the
// status, the Chrome trace, the dispatch log, and /metrics.
func TestHTTPCampaignLifecycle(t *testing.T) {
	s, _ := newTestServer(t, Config{SolveWorkers: 2})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	resp := postJSON(t, hs.URL, `{"tenant":"alpha","name":"lifecycle","spec":{"dims":[2,2,2,4],"ls":2,"nconfigs":2,"seed":31,"therm":2,"gap":1,"tol":1e-5}}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %d %s", resp.StatusCode, drainBody(t, resp))
	}
	var st CampaignStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}

	eresp, err := http.Get(hs.URL + "/v1/campaigns/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	sc := bufio.NewScanner(eresp.Body)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if err := eresp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if len(events) < 3 {
		t.Fatalf("too few events: %+v", events)
	}
	for i, e := range events {
		if e.Seq != i+1 {
			t.Fatalf("event %d has seq %d: %+v", i, e.Seq, events)
		}
	}
	if events[0].Kind != "submitted" || events[len(events)-1].Kind != "complete" {
		t.Fatalf("event log shape: first=%s last=%s", events[0].Kind, events[len(events)-1].Kind)
	}

	final, err := s.Status(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != stateComplete || final.Fingerprint == "" || final.Done != 2 {
		t.Fatalf("final status: %+v", final)
	}

	tresp, err := http.Get(hs.URL + "/v1/campaigns/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	trace := drainBody(t, tresp)
	if tresp.StatusCode != http.StatusOK || !json.Valid([]byte(trace)) {
		t.Fatalf("trace: %d, valid=%v", tresp.StatusCode, json.Valid([]byte(trace)))
	}
	if !bytes.Contains([]byte(trace), []byte("solve 000")) {
		t.Fatalf("trace missing solve spans: %s", trace)
	}

	dresp, err := http.Get(hs.URL + "/v1/dispatch")
	if err != nil {
		t.Fatal(err)
	}
	var log []string
	if err := json.NewDecoder(dresp.Body).Decode(&log); err != nil {
		t.Fatal(err)
	}
	if err := dresp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if len(log) != 2 || !strings.HasPrefix(log[0], "alpha/"+st.ID) {
		t.Fatalf("dispatch log: %v", log)
	}

	mresp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := drainBody(t, mresp)
	if mresp.StatusCode != http.StatusOK || !strings.Contains(metrics, "serve.campaigns_completed") {
		t.Fatalf("metrics: %d\n%s", mresp.StatusCode, metrics)
	}
}
