package serve

import "sort"

// Fair-share across tenants is stride scheduling: each tenant holds a
// pass value, the dispatcher always picks the backlogged tenant with the
// minimum pass (ties broken by name, so the schedule is a pure function
// of the submission history), and dispatching one configuration advances
// the tenant's pass by strideOne/weight. A weight-2 tenant therefore
// receives two configurations for every one a weight-1 tenant gets when
// both are backlogged - proportional share - while an idle tenant's pass
// is re-based on arrival so it can never hoard credit and starve the
// others. Quotas are enforced at admission (Server.SubmitCampaign), not
// here: an over-quota submission is refused at the door, so the
// scheduler only ever sees work that is allowed to run.
const strideOne = 1 << 16

// tenant is one submitter's scheduling state. Guarded by Server.mu.
type tenant struct {
	name   string
	weight uint64
	pass   uint64
	// queue holds this tenant's campaigns that still have undispatched
	// configurations, in admission order.
	queue []*campaignRun
}

// ensureTenantLocked returns the tenant, creating it on first contact.
// A new or re-activating tenant starts at the minimum pass of the
// currently backlogged tenants, which is the stride-scheduling rule that
// bounds how far anyone can be owed.
func (s *Server) ensureTenantLocked(name string, priority int) *tenant {
	t, ok := s.tenants[name]
	if !ok {
		t = &tenant{name: name, weight: 1}
		s.tenants[name] = t
		s.tenantNames = append(s.tenantNames, name)
		sort.Strings(s.tenantNames)
	}
	if priority > 0 {
		// The tenant's weight follows its most recent submission.
		t.weight = uint64(priority)
	}
	return t
}

// enqueueLocked adds a campaign to its tenant's backlog, re-basing the
// tenant's pass if it was idle.
func (s *Server) enqueueLocked(t *tenant, cr *campaignRun) {
	if len(t.queue) == 0 {
		if min, ok := s.minPassLocked(); ok && t.pass < min {
			t.pass = min
		}
	}
	t.queue = append(t.queue, cr)
}

// minPassLocked returns the minimum pass over backlogged tenants.
func (s *Server) minPassLocked() (uint64, bool) {
	var min uint64
	found := false
	for _, name := range s.tenantNames {
		t := s.tenants[name]
		if len(t.queue) == 0 {
			continue
		}
		if !found || t.pass < min {
			min = t.pass
			found = true
		}
	}
	return min, found
}

// pickTenantLocked returns the backlogged tenant with the minimum pass,
// ties broken by the sorted name order, or nil if nothing is queued.
func (s *Server) pickTenantLocked() *tenant {
	var best *tenant
	for _, name := range s.tenantNames {
		t := s.tenants[name]
		if len(t.queue) == 0 {
			continue
		}
		if best == nil || t.pass < best.pass {
			best = t
		}
	}
	return best
}

// dropFromQueueLocked removes a campaign from its tenant's backlog (a
// failed campaign stops dispatching immediately).
func (s *Server) dropFromQueueLocked(cr *campaignRun) {
	t, ok := s.tenants[cr.tenant]
	if !ok {
		return
	}
	for i, q := range t.queue {
		if q == cr {
			t.queue = append(t.queue[:i], t.queue[i+1:]...)
			return
		}
	}
}
