package serve

import (
	"sync"

	"femtoverse/internal/core"
	"femtoverse/internal/gauge"
	"femtoverse/internal/obs"
)

// Campaign lifecycle states. A campaign is queued until its first
// configuration is dispatched, running until its last correlator pair is
// recorded and finalized, and then complete; a solve error that is not
// the drain unwinding in-flight work marks it failed. A drain strands
// in-flight configurations without changing the campaign state - the
// journal already holds everything recorded, and a restarted server
// resumes the remainder bit-for-bit.
const (
	stateQueued   = "queued"
	stateRunning  = "running"
	stateComplete = "complete"
	stateFailed   = "failed"
)

// Event is one entry of a campaign's ordered event log. Events carry a
// sequence number instead of a timestamp so the log (and the streamed
// NDJSON rendering of it) is deterministic for a fixed workload.
type Event struct {
	Seq  int    `json:"seq"`
	Kind string `json:"kind"`
	Msg  string `json:"msg"`
}

// CampaignStatus is the polling view of one campaign, also returned by
// the submission call. Geff/GeffErr are populated once the campaign is
// complete.
type CampaignStatus struct {
	ID          string    `json:"id"`
	Tenant      string    `json:"tenant"`
	Name        string    `json:"name,omitempty"`
	Priority    int       `json:"priority"`
	State       string    `json:"state"`
	Done        int       `json:"done"`
	Total       int       `json:"total"`
	Fingerprint string    `json:"fingerprint,omitempty"`
	Geff        []float64 `json:"geff,omitempty"`
	GeffErr     []float64 `json:"geff_err,omitempty"`
	Error       string    `json:"error,omitempty"`
}

// sidecar is the JSON metadata file stored next to a campaign's journal:
// the identity the journal format deliberately does not carry (tenant,
// priority, display name), so a restarted server can rebuild its
// scheduling state from the state directory alone.
type sidecar struct {
	ID       string `json:"id"`
	Tenant   string `json:"tenant"`
	Priority int    `json:"priority"`
	Name     string `json:"name,omitempty"`
}

// campaignRun is one submitted campaign and everything the server holds
// for it: the core campaign accumulating correlators, its write-ahead
// journal, the per-campaign tracer, the lazily generated gauge ensemble,
// and the event log. All mutable fields are guarded by Server.mu except
// the ensemble (sync.Once) and the journal (internally locked).
type campaignRun struct {
	id       string
	tenant   string
	priority int
	name     string
	spec     core.RealConfig

	camp    *core.Campaign
	journal *core.Journal
	tracer  *obs.Tracer

	state       string
	failed      error
	fingerprint string
	geff        []float64
	geffErr     []float64

	// next is the lowest configuration index not yet dispatched; it is
	// always positioned on an undone configuration (or past the end).
	next int

	events  []Event
	eventCh chan struct{}

	// The gauge ensemble is a pure function of the spec, regenerated on
	// demand by the first cold solve - a fully warm campaign never pays
	// for it, and a resumed campaign regenerates it identically.
	ensembleOnce sync.Once
	ensemble     []*gauge.Field
	ensembleErr  error

	closeOnce sync.Once
}

func newCampaignRun(id, tenant string, priority int, name string, spec core.RealConfig) *campaignRun {
	return &campaignRun{
		id:       id,
		tenant:   tenant,
		priority: priority,
		name:     name,
		spec:     spec,
		tracer:   obs.NewTracer(nil),
		state:    stateQueued,
		eventCh:  make(chan struct{}),
	}
}

// fieldFor returns the lazy field callback for configuration i: the
// ensemble is generated at most once per campaign, and only if some
// configuration actually misses the cache.
func (cr *campaignRun) fieldFor(i int) func() (*gauge.Field, error) {
	return func() (*gauge.Field, error) {
		cr.ensembleOnce.Do(func() {
			cr.ensemble, cr.ensembleErr = core.EnsembleFor(cr.spec)
		})
		if cr.ensembleErr != nil {
			return nil, cr.ensembleErr
		}
		return cr.ensemble[i], nil
	}
}

// advanceNext moves next past configurations that are already recorded
// (a resumed campaign's journaled prefix, in the general case any
// subset). Caller holds Server.mu.
func (cr *campaignRun) advanceNext() {
	for cr.next < cr.spec.NConfigs {
		if _, done := cr.camp.C2[cr.next]; !done {
			return
		}
		cr.next++
	}
}

// terminal reports whether the campaign will never dispatch again.
// Caller holds Server.mu.
func (cr *campaignRun) terminal() bool {
	return cr.state == stateComplete || cr.state == stateFailed
}
