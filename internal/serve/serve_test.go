package serve

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"femtoverse/internal/cache"
	"femtoverse/internal/core"
	"femtoverse/internal/obs"

	jobrt "femtoverse/internal/runtime"
)

// tinySpec is the smallest real campaign that still exercises the full
// pipeline: a 2x2x2x4 lattice, single precision, a loose-but-honest
// tolerance. Seeds distinguish ensembles; identical (seed, n) pairs are
// identical campaigns, which is what the dedupe tests rely on.
func tinySpec(seed int64, n int) core.RealConfig {
	spec := core.DefaultRealConfig()
	spec.Dims = [4]int{2, 2, 2, 4}
	spec.Params.Ls = 2
	spec.ThermSweeps = 2
	spec.GapSweeps = 1
	spec.Tol = 1e-5
	spec.NConfigs = n
	spec.Seed = seed
	return spec
}

func newTestServer(t *testing.T, cfg Config) (*Server, *obs.Registry) {
	t.Helper()
	if cfg.StateDir == "" {
		cfg.StateDir = t.TempDir()
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	s, err := New(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, cfg.Metrics
}

func newTestCache(t *testing.T, reg *obs.Registry) *cache.Cache {
	t.Helper()
	c, err := cache.New(cache.Config{Dir: t.TempDir(), Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func waitState(t *testing.T, s *Server, id, want string) CampaignStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		st, err := s.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return st
		}
		if st.State == stateFailed && want != stateFailed {
			t.Fatalf("campaign %s failed: %s", id, st.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("campaign %s never reached state %q", id, want)
	return CampaignStatus{}
}

func counterValue(t *testing.T, reg *obs.Registry, name string) int64 {
	t.Helper()
	v, _ := reg.Snapshot().CounterValue(name)
	return v
}

// TestFairShareStrideSchedule pins the dispatch order exactly: with one
// solve worker (strictly sequential dispatch) and the dispatcher paused
// until both tenants are queued, a weight-2 tenant receives two
// configurations per weight-1 configuration, interleaved by the stride
// schedule - not FIFO, and neither tenant starves.
func TestFairShareStrideSchedule(t *testing.T) {
	s, _ := newTestServer(t, Config{SolveWorkers: 1, ContractWorkers: 1, StartPaused: true})
	stA, err := s.SubmitCampaign("a", 1, "", tinySpec(101, 4))
	if err != nil {
		t.Fatal(err)
	}
	stB, err := s.SubmitCampaign("b", 2, "", tinySpec(202, 4))
	if err != nil {
		t.Fatal(err)
	}
	s.ResumeDispatch()
	waitState(t, s, stA.ID, stateComplete)
	waitState(t, s, stB.ID, stateComplete)

	log := s.DispatchLog()
	var got []string
	for _, e := range log {
		got = append(got, e[:strings.Index(e, "/")])
	}
	want := []string{"a", "b", "b", "a", "b", "b", "a", "a"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("dispatch order = %v, want %v", got, want)
	}
}

// TestQuotaAdmission: an over-quota submission is refused with the
// runtime's admission vocabulary (ErrRefused), other tenants are
// unaffected, and finishing work frees the quota.
func TestQuotaAdmission(t *testing.T) {
	s, reg := newTestServer(t, Config{SolveWorkers: 2, DefaultQuota: 4, StartPaused: true})
	st1, err := s.SubmitCampaign("t1", 1, "", tinySpec(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SubmitCampaign("t1", 1, "", tinySpec(2, 2)); !errors.Is(err, jobrt.ErrRefused) {
		t.Fatalf("over-quota submission: got %v, want ErrRefused", err)
	}
	st2, err := s.SubmitCampaign("t2", 1, "", tinySpec(3, 2))
	if err != nil {
		t.Fatalf("other tenant refused by t1's quota: %v", err)
	}
	s.ResumeDispatch()
	waitState(t, s, st1.ID, stateComplete)
	waitState(t, s, st2.ID, stateComplete)
	if _, err := s.SubmitCampaign("t1", 1, "", tinySpec(4, 2)); err != nil {
		t.Fatalf("quota not freed by completion: %v", err)
	}
	if v := counterValue(t, reg, "serve.refused_quota"); v != 1 {
		t.Fatalf("serve.refused_quota = %d, want 1", v)
	}
}

// TestCrossTenantWarmDuplicate: a second tenant submitting the exact
// campaign a first tenant already ran gets bit-for-bit the same answer
// from the shared cache with zero additional solver iterations.
func TestCrossTenantWarmDuplicate(t *testing.T) {
	reg := obs.NewRegistry()
	store := newTestCache(t, reg)
	s, _ := newTestServer(t, Config{SolveWorkers: 2, Cache: store, Metrics: reg})
	spec := tinySpec(7, 3)

	stA, err := s.SubmitCampaign("alpha", 1, "", spec)
	if err != nil {
		t.Fatal(err)
	}
	stA = waitState(t, s, stA.ID, stateComplete)
	iters := counterValue(t, reg, "core.solver_iterations")
	solved := counterValue(t, reg, "core.configs_solved")
	if solved != int64(spec.NConfigs) || iters == 0 {
		t.Fatalf("cold campaign: solved=%d iters=%d", solved, iters)
	}

	stB, err := s.SubmitCampaign("beta", 1, "", spec)
	if err != nil {
		t.Fatal(err)
	}
	stB = waitState(t, s, stB.ID, stateComplete)
	if stB.Fingerprint == "" || stB.Fingerprint != stA.Fingerprint {
		t.Fatalf("fingerprints differ: %q vs %q", stA.Fingerprint, stB.Fingerprint)
	}
	if v := counterValue(t, reg, "core.solver_iterations"); v != iters {
		t.Fatalf("warm duplicate ran the solver: iterations %d -> %d", iters, v)
	}
	if v := counterValue(t, reg, "core.configs_solved"); v != solved {
		t.Fatalf("warm duplicate solved configs: %d -> %d", solved, v)
	}
	if st := store.Stats(); st.Computes != int64(spec.NConfigs) {
		t.Fatalf("store computes = %d, want %d", st.Computes, spec.NConfigs)
	}
	for i := range stA.Geff {
		if stA.Geff[i] != stB.Geff[i] || stA.GeffErr[i] != stB.GeffErr[i] {
			t.Fatalf("effective coupling differs at t=%d", i)
		}
	}
}

// TestConcurrentDuplicateCoalesces: two tenants submitting the same
// campaign at the same time share each configuration's compute through
// the cache's singleflight - total computes equals the configuration
// count no matter how the solves interleave.
func TestConcurrentDuplicateCoalesces(t *testing.T) {
	store := newTestCache(t, nil)
	s, _ := newTestServer(t, Config{SolveWorkers: 2, Cache: store, StartPaused: true})
	spec := tinySpec(9, 2)
	stA, err := s.SubmitCampaign("a", 1, "", spec)
	if err != nil {
		t.Fatal(err)
	}
	stB, err := s.SubmitCampaign("b", 1, "", spec)
	if err != nil {
		t.Fatal(err)
	}
	s.ResumeDispatch()
	stA = waitState(t, s, stA.ID, stateComplete)
	stB = waitState(t, s, stB.ID, stateComplete)
	if stA.Fingerprint != stB.Fingerprint {
		t.Fatalf("fingerprints differ: %q vs %q", stA.Fingerprint, stB.Fingerprint)
	}
	if st := store.Stats(); st.Computes != int64(spec.NConfigs) {
		t.Fatalf("store computes = %d, want %d (duplicates must coalesce or hit)", st.Computes, spec.NConfigs)
	}
}

// TestDrainRestartResumesBitForBit is the zero-downtime restart
// contract: shutdown mid-campaign journals what finished, a new server
// generation over the same state directory (with a cold cache, so the
// journal alone carries the prefix) runs only the remainder, and the
// final fingerprint is identical to an uninterrupted run's.
func TestDrainRestartResumesBitForBit(t *testing.T) {
	stateDir := t.TempDir()
	spec := tinySpec(42, 4)

	reg1 := obs.NewRegistry()
	s1, err := New(context.Background(), Config{
		StateDir: stateDir, SolveWorkers: 1, ContractWorkers: 1,
		Cache: newTestCache(t, nil), Metrics: reg1, DrainGrace: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s1.SubmitCampaign("gamma", 1, "interrupted", spec)
	if err != nil {
		t.Fatal(err)
	}
	// Let at least one configuration land, then pull the plug.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		cur, err := s1.Status(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.Done >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no configuration finished before the drain")
		}
		time.Sleep(2 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Generation two: same state directory, cold cache, paused so the
	// journaled prefix is observable before any new work runs.
	reg2 := obs.NewRegistry()
	s2, err := New(context.Background(), Config{
		StateDir: stateDir, SolveWorkers: 1, ContractWorkers: 1,
		Cache: newTestCache(t, nil), Metrics: reg2, StartPaused: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s2.Shutdown(ctx); err != nil {
			t.Errorf("shutdown gen2: %v", err)
		}
	})
	st2, err := s2.Status(st.ID)
	if err != nil {
		t.Fatalf("campaign lost across restart: %v", err)
	}
	journaled := st2.Done
	if journaled < 1 {
		t.Fatalf("journal lost the finished configurations: done=%d", journaled)
	}
	if st2.State != stateComplete {
		s2.ResumeDispatch()
		st2 = waitState(t, s2, st.ID, stateComplete)
	}
	if resolved := counterValue(t, reg2, "core.configs_solved"); resolved != int64(spec.NConfigs-journaled) {
		t.Fatalf("resumed server solved %d configs, want %d (journaled prefix must not re-run)",
			resolved, spec.NConfigs-journaled)
	}

	// Reference: the same spec, uninterrupted, on a fresh universe.
	ref, _ := newTestServer(t, Config{SolveWorkers: 1, ContractWorkers: 1})
	stRef, err := ref.SubmitCampaign("ref", 1, "", spec)
	if err != nil {
		t.Fatal(err)
	}
	stRef = waitState(t, ref, stRef.ID, stateComplete)
	if st2.Fingerprint != stRef.Fingerprint {
		t.Fatalf("resumed fingerprint %q != uninterrupted fingerprint %q", st2.Fingerprint, stRef.Fingerprint)
	}
	for i := range stRef.Geff {
		if st2.Geff[i] != stRef.Geff[i] {
			t.Fatalf("resumed effective coupling differs at t=%d", i)
		}
	}
}

// TestMetricsDeterministicForFixedWorkload: two fresh servers given the
// same sequential workload render byte-identical /metrics text - the
// reason the pool's timing histograms are deliberately not attached.
func TestMetricsDeterministicForFixedWorkload(t *testing.T) {
	run := func() string {
		reg := obs.NewRegistry()
		s, _ := newTestServer(t, Config{SolveWorkers: 2, Cache: newTestCache(t, reg), Metrics: reg})
		a, err := s.SubmitCampaign("a", 1, "", tinySpec(5, 2))
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, s, a.ID, stateComplete)
		b, err := s.SubmitCampaign("b", 1, "", tinySpec(5, 2)) // warm duplicate
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, s, b.ID, stateComplete)
		c, err := s.SubmitCampaign("a", 1, "", tinySpec(6, 2))
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, s, c.ID, stateComplete)
		return s.MetricsText()
	}
	m1 := run()
	m2 := run()
	if m1 != m2 {
		t.Fatalf("metrics text differs across identical workloads:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", m1, m2)
	}
	if !strings.Contains(m1, "serve.campaigns_completed") || !strings.Contains(m1, "core.solver_iterations") {
		t.Fatalf("metrics text missing expected series:\n%s", m1)
	}
}
