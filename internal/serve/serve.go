// Package serve turns the campaign core into a long-running multi-tenant
// service: campaigns are submitted over HTTP, scheduled onto one shared
// job-runtime pool with stride-based fair share across tenants, journaled
// to a write-ahead log per campaign, and deduplicated across tenants
// through the content-addressed result cache. The server reuses the
// runtime's two-phase drain for zero-downtime restarts: shutdown stops
// admission, gives in-flight solves the drain grace to land in their
// journals, and a restarted server over the same state directory resumes
// every incomplete campaign bit-for-bit.
package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"femtoverse/internal/cache"
	"femtoverse/internal/core"
	"femtoverse/internal/obs"
	"femtoverse/internal/validate"

	jobrt "femtoverse/internal/runtime"
)

// ErrDraining is returned for submissions that arrive after shutdown
// began: the server is refusing admission, not failing.
var ErrDraining = errors.New("serve: draining, not accepting new campaigns")

// ErrNotFound is returned for operations on unknown campaign IDs.
var ErrNotFound = errors.New("serve: no such campaign")

// Config shapes a Server. StateDir is required; everything else has a
// usable default.
type Config struct {
	// StateDir holds one journal (<id>.fwal) plus one metadata sidecar
	// (<id>.json) per campaign. A server started over a non-empty state
	// directory resumes every incomplete campaign found there.
	StateDir string
	// SolveWorkers and ContractWorkers size the shared pool's worker
	// classes (defaults 2 and 1).
	SolveWorkers    int
	ContractWorkers int
	// Cache, when non-nil, is the shared content-addressed result store:
	// identical solves submitted by different tenants (or different
	// server generations over the same cache directory) coalesce or hit
	// instead of recomputing.
	Cache *cache.Cache
	// Metrics receives the server's counters and the core solver-work
	// counters; nil-safe. /metrics renders its snapshot.
	Metrics *obs.Registry
	// DefaultQuota is the admission quota: the maximum number of
	// unfinished configurations one tenant may have in the system
	// (default 64). Quotas, when set for a tenant, overrides it.
	DefaultQuota int
	Quotas       map[string]int
	// DrainGrace bounds shutdown's soft-drain phase, exactly as in the
	// job runtime (default 2s): in-flight solves get this long to finish
	// and journal before they are stranded.
	DrainGrace time.Duration
	// StartPaused holds the dispatcher until ResumeDispatch, so tests
	// (and operators staging a batch) can make the dispatch order a pure
	// function of the submission set.
	StartPaused bool
}

func (c Config) withDefaults() Config {
	if c.SolveWorkers <= 0 {
		c.SolveWorkers = 2
	}
	if c.ContractWorkers <= 0 {
		c.ContractWorkers = 1
	}
	if c.DefaultQuota <= 0 {
		c.DefaultQuota = 64
	}
	if c.DrainGrace <= 0 {
		c.DrainGrace = 2 * time.Second
	}
	return c
}

// Validate checks a Config through the shared flag/request validator.
func (c Config) Validate() error {
	var errs []error
	if strings.TrimSpace(c.StateDir) == "" {
		errs = append(errs, errors.New("state dir: must be non-empty"))
	}
	errs = append(errs,
		validate.PositiveInt("solve workers", c.SolveWorkers),
		validate.PositiveInt("contract workers", c.ContractWorkers),
		validate.PositiveInt("default quota", c.DefaultQuota),
		validate.PositiveDuration("drain grace", c.DrainGrace))
	return validate.All(errs...)
}

// Server is the multi-tenant campaign service. One dispatcher goroutine
// feeds one shared runtime pool; everything else (admission, status,
// events, metrics) is driven by callers.
type Server struct {
	cfg   Config
	pool  *jobrt.Pool
	store *cache.Cache
	reg   *obs.Registry

	// submitMu serializes admissions so the quota check and the
	// journal/sidecar creation of one submission are atomic with respect
	// to other submissions. It is never held together with mu's critical
	// sections that block.
	submitMu sync.Mutex

	mu          sync.Mutex
	cond        *sync.Cond
	tenants     map[string]*tenant
	tenantNames []string
	campaigns   map[string]*campaignRun
	order       []string
	serial      int
	nextTaskID  int
	outstanding int
	hold        bool
	draining    bool
	closed      bool
	dispatchLog []string

	dispatcherDone chan struct{}
}

// New builds a server, resumes any journaled campaigns found in
// StateDir, and starts the dispatcher.
func New(ctx context.Context, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("serve: invalid config:\n%w", err)
	}
	if err := os.MkdirAll(cfg.StateDir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: state dir: %w", err)
	}
	pool, err := jobrt.New(ctx, jobrt.Config{
		SolveWorkers:    cfg.SolveWorkers,
		ContractWorkers: cfg.ContractWorkers,
		Budget:          jobrt.Budget{DrainGrace: cfg.DrainGrace},
		// Metrics deliberately not attached: the pool's attempt-duration
		// histograms are timing-dependent, and /metrics promises a
		// deterministic rendering for a fixed workload.
	})
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:            cfg,
		pool:           pool,
		store:          cfg.Cache,
		reg:            cfg.Metrics,
		tenants:        map[string]*tenant{},
		campaigns:      map[string]*campaignRun{},
		hold:           cfg.StartPaused,
		dispatcherDone: make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	if err := s.resume(); err != nil {
		pool.Close()
		return nil, err
	}
	go s.dispatcher()
	return s, nil
}

func (s *Server) journalPath(id string) string {
	return filepath.Join(s.cfg.StateDir, id+".fwal")
}

func (s *Server) sidecarPath(id string) string {
	return filepath.Join(s.cfg.StateDir, id+".json")
}

// resume scans the state directory and rebuilds every campaign found
// there: complete ones are finalized (fingerprint, effective coupling),
// incomplete ones re-enter their tenant's queue with the journaled
// prefix already recorded. Scanning is in sorted filename order, so the
// rebuilt scheduling state is deterministic.
func (s *Server) resume() error {
	entries, err := os.ReadDir(s.cfg.StateDir)
	if err != nil {
		return fmt.Errorf("serve: scan state dir: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		id := strings.TrimSuffix(name, ".json")
		sc, err := readSidecar(s.sidecarPath(id))
		if err != nil {
			s.reg.Counter("serve.resume_errors").Inc()
			continue
		}
		j, camp, err := core.OpenJournal(s.journalPath(id), 1)
		if err != nil {
			s.reg.Counter("serve.resume_errors").Inc()
			continue
		}
		cr := newCampaignRun(id, sc.Tenant, sc.Priority, sc.Name, camp.Spec)
		cr.camp = camp
		cr.journal = j
		var n int
		if _, err := fmt.Sscanf(id, "c%06d", &n); err == nil && n > s.serial {
			s.serial = n
		}
		s.mu.Lock()
		s.campaigns[id] = cr
		s.order = append(s.order, id)
		if camp.Complete() {
			s.finalizeLocked(cr)
			s.mu.Unlock()
			s.closeJournal(cr)
		} else {
			cr.advanceNext()
			if camp.Done() > 0 {
				cr.state = stateRunning
			}
			t := s.ensureTenantLocked(cr.tenant, cr.priority)
			s.enqueueLocked(t, cr)
			s.appendEventLocked(cr, "resumed", fmt.Sprintf(
				"campaign %s resumed from journal (%d/%d configurations recorded)",
				id, camp.Done(), camp.Spec.NConfigs))
			s.mu.Unlock()
			s.reg.Counter("serve.campaigns_resumed").Inc()
		}
	}
	return nil
}

func readSidecar(path string) (sidecar, error) {
	var sc sidecar
	data, err := os.ReadFile(path)
	if err != nil {
		return sc, err
	}
	if err := decodeJSONStrict(data, &sc); err != nil {
		return sc, err
	}
	if sc.Tenant == "" {
		return sc, errors.New("serve: sidecar without tenant")
	}
	return sc, nil
}

// SubmitCampaign admits one campaign: quota check, journal and sidecar
// creation, then enqueue. The returned error is ErrDraining after
// shutdown began and wraps runtime.ErrRefused when the tenant is over
// quota - admission refusal, deliberately the same vocabulary as the
// pool's allocation-budget refusals.
func (s *Server) SubmitCampaign(tenant string, priority int, name string, spec core.RealConfig) (CampaignStatus, error) {
	s.submitMu.Lock()
	defer s.submitMu.Unlock()

	s.mu.Lock()
	if s.draining || s.closed {
		s.mu.Unlock()
		s.reg.Counter("serve.refused_draining").Inc()
		return CampaignStatus{}, ErrDraining
	}
	quota := s.quotaFor(tenant)
	if used := s.unfinishedLocked(tenant); used+spec.NConfigs > quota {
		s.mu.Unlock()
		s.reg.Counter("serve.refused_quota").Inc()
		return CampaignStatus{}, fmt.Errorf(
			"serve: tenant %q over quota (%d unfinished + %d requested > %d): %w",
			tenant, used, spec.NConfigs, quota, jobrt.ErrRefused)
	}
	s.serial++
	id := fmt.Sprintf("c%06d", s.serial)
	s.mu.Unlock()

	// Disk work outside mu: the write-ahead journal and its sidecar.
	j, err := core.CreateJournal(s.journalPath(id), spec, 1)
	if err != nil {
		return CampaignStatus{}, fmt.Errorf("serve: create journal: %w", err)
	}
	if err := writeSidecar(s.sidecarPath(id), sidecar{ID: id, Tenant: tenant, Priority: priority, Name: name}); err != nil {
		if cerr := j.Close(); cerr != nil {
			s.reg.Counter("serve.journal_errors").Inc()
		}
		return CampaignStatus{}, fmt.Errorf("serve: write sidecar: %w", err)
	}

	cr := newCampaignRun(id, tenant, priority, name, spec)
	cr.camp = core.NewCampaign(spec)
	cr.journal = j

	s.mu.Lock()
	s.campaigns[id] = cr
	s.order = append(s.order, id)
	t := s.ensureTenantLocked(tenant, priority)
	s.enqueueLocked(t, cr)
	s.appendEventLocked(cr, "submitted", fmt.Sprintf(
		"campaign %s submitted by %s (%d configurations, priority %d)",
		id, tenant, spec.NConfigs, priority))
	st := s.statusLocked(cr)
	s.cond.Broadcast()
	s.mu.Unlock()
	s.reg.Counter("serve.campaigns_submitted").Inc()
	return st, nil
}

func (s *Server) quotaFor(tenant string) int {
	if q, ok := s.cfg.Quotas[tenant]; ok && q > 0 {
		return q
	}
	return s.cfg.DefaultQuota
}

// unfinishedLocked counts the tenant's admitted-but-unfinished
// configurations: the quantity the quota bounds.
func (s *Server) unfinishedLocked(tenant string) int {
	n := 0
	for _, id := range s.order {
		cr := s.campaigns[id]
		if cr.tenant != tenant || cr.terminal() {
			continue
		}
		n += cr.spec.NConfigs - cr.camp.Done()
	}
	return n
}

// Status returns the polling view of one campaign.
func (s *Server) Status(id string) (CampaignStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cr, ok := s.campaigns[id]
	if !ok {
		return CampaignStatus{}, ErrNotFound
	}
	return s.statusLocked(cr), nil
}

// List returns every campaign in admission order.
func (s *Server) List() []CampaignStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]CampaignStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.statusLocked(s.campaigns[id]))
	}
	return out
}

func (s *Server) statusLocked(cr *campaignRun) CampaignStatus {
	st := CampaignStatus{
		ID:          cr.id,
		Tenant:      cr.tenant,
		Name:        cr.name,
		Priority:    cr.priority,
		State:       cr.state,
		Done:        cr.camp.Done(),
		Total:       cr.spec.NConfigs,
		Fingerprint: cr.fingerprint,
		Geff:        append([]float64(nil), cr.geff...),
		GeffErr:     append([]float64(nil), cr.geffErr...),
	}
	if cr.failed != nil {
		st.Error = cr.failed.Error()
	}
	return st
}

// Events returns the campaign's events after the given sequence number,
// the channel closed on the next append, and whether the campaign is
// terminal (no further events will ever arrive).
func (s *Server) Events(id string, after int) ([]Event, <-chan struct{}, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cr, ok := s.campaigns[id]
	if !ok {
		return nil, nil, false, ErrNotFound
	}
	var out []Event
	for _, e := range cr.events {
		if e.Seq > after {
			out = append(out, e)
		}
	}
	return out, cr.eventCh, cr.terminal(), nil
}

// WriteTrace renders the campaign's Chrome trace.
func (s *Server) WriteTrace(id string, w io.Writer) error {
	s.mu.Lock()
	cr, ok := s.campaigns[id]
	s.mu.Unlock()
	if !ok {
		return ErrNotFound
	}
	return cr.tracer.WriteChromeTrace(w)
}

// MetricsText renders the deterministic text form of the registry
// snapshot.
func (s *Server) MetricsText() string {
	return s.reg.Snapshot().Text()
}

// DispatchLog returns the global dispatch order, one entry per
// dispatched configuration ("tenant/campaign/cfgNNN"). For a fixed
// submission set with the dispatcher paused, the log is the stride
// schedule exactly.
func (s *Server) DispatchLog() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.dispatchLog...)
}

// ResumeDispatch releases a StartPaused server's dispatcher.
func (s *Server) ResumeDispatch() {
	s.mu.Lock()
	s.hold = false
	s.cond.Broadcast()
	s.mu.Unlock()
}

// appendEventLocked appends one event and wakes the streamers.
func (s *Server) appendEventLocked(cr *campaignRun, kind, msg string) {
	cr.events = append(cr.events, Event{Seq: len(cr.events) + 1, Kind: kind, Msg: msg})
	close(cr.eventCh)
	cr.eventCh = make(chan struct{})
}

// dispatchItem is one configuration picked by the scheduler, carried
// out of the lock for pool submission.
type dispatchItem struct {
	cr      *campaignRun
	cfg     int
	solveID int
}

// dispatcher is the single scheduling loop: wait until a configuration
// may be dispatched, pick it under the lock, submit the solve+contract
// pair to the pool outside the lock.
func (s *Server) dispatcher() {
	defer close(s.dispatcherDone)
	s.mu.Lock()
	for {
		for !s.closed && !s.canDispatchLocked() {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		it := s.takeLocked()
		s.mu.Unlock()
		s.submitPair(it)
		s.mu.Lock()
	}
}

func (s *Server) canDispatchLocked() bool {
	if s.hold || s.draining || s.outstanding >= s.cfg.SolveWorkers {
		return false
	}
	return s.pickTenantLocked() != nil
}

// takeLocked picks the next configuration per the stride schedule and
// charges the tenant's pass.
func (s *Server) takeLocked() dispatchItem {
	t := s.pickTenantLocked()
	cr := t.queue[0]
	i := cr.next
	cr.next++
	cr.advanceNext()
	if cr.next >= cr.spec.NConfigs {
		t.queue = t.queue[1:]
	}
	if cr.state == stateQueued {
		cr.state = stateRunning
	}
	t.pass += strideOne / t.weight
	s.outstanding++
	id := s.nextTaskID
	s.nextTaskID += 2
	s.dispatchLog = append(s.dispatchLog, fmt.Sprintf("%s/%s/cfg%03d", t.name, cr.id, i))
	return dispatchItem{cr: cr, cfg: i, solveID: id}
}

// submitPair hands one configuration's solve task and its dependent
// contract-class finalizer to the pool. A refusal (the pool started
// draining between the scheduling decision and the submission) leaves
// the configuration undone; the journal resume covers it next run.
func (s *Server) submitPair(it dispatchItem) {
	err := s.pool.Submit(jobrt.Task{
		ID:      it.solveID,
		Name:    fmt.Sprintf("%s/solve/%03d", it.cr.id, it.cfg),
		Class:   jobrt.Solve,
		Cost:    1,
		Retries: -1,
		Run:     s.runSolve(it.cr, it.cfg),
	})
	if err == nil {
		err = s.pool.Submit(jobrt.Task{
			ID:        it.solveID + 1,
			Name:      fmt.Sprintf("%s/finalize/%03d", it.cr.id, it.cfg),
			Class:     jobrt.Contract,
			Cost:      0.05,
			DependsOn: []int{it.solveID},
			Retries:   -1,
			Run:       s.runFinalize(it.cr),
		})
		if err != nil {
			// The solve is in; only the finalizer was refused. Completion
			// is then finalized by a later configuration's finalizer or by
			// the resume scan - nothing recorded is lost.
			s.reg.Counter("serve.dispatch_errors").Inc()
		}
		return
	}
	s.reg.Counter("serve.dispatch_errors").Inc()
	s.mu.Lock()
	s.outstanding--
	s.cond.Broadcast()
	s.mu.Unlock()
}

// runSolve builds the solve-class task body for one configuration: the
// cached solve, the journal append, then the in-memory record.
func (s *Server) runSolve(cr *campaignRun, i int) func(ctx context.Context) (interface{}, error) {
	return func(tctx context.Context) (interface{}, error) {
		sc := obs.NewScope(cr.tracer, 1, 1+i)
		sp := sc.Begin("serve", fmt.Sprintf("solve %03d", i), nil)
		c2, cfh, _, err := core.SolveConfigCached(tctx, cr.spec, i, cr.fieldFor(i), s.store, s.reg)
		sp.End()
		if err != nil {
			s.solveFailed(cr, i, err)
			return nil, err
		}
		if err := cr.journal.Append(i, c2, cfh); err != nil {
			s.reg.Counter("serve.journal_errors").Inc()
			s.solveFailed(cr, i, err)
			return nil, err
		}
		s.solveDone(cr, i, c2, cfh)
		return nil, nil
	}
}

func (s *Server) solveDone(cr *campaignRun, i int, c2, cfh []float64) {
	s.mu.Lock()
	cr.camp.C2[i] = c2
	cr.camp.CFH[i] = cfh
	s.outstanding--
	s.appendEventLocked(cr, "config", fmt.Sprintf(
		"configuration %03d recorded (%d/%d)", i, cr.camp.Done(), cr.spec.NConfigs))
	s.cond.Broadcast()
	s.mu.Unlock()
	s.reg.Counter("serve.configs_recorded").Inc()
}

// solveFailed distinguishes the drain unwinding in-flight work (the
// configuration is stranded, not failed: the journal resume re-runs it)
// from a genuine solve error (the campaign fails and stops dispatching).
func (s *Server) solveFailed(cr *campaignRun, i int, err error) {
	stranded := errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
	s.mu.Lock()
	if s.draining {
		stranded = true
	}
	s.outstanding--
	if stranded {
		s.appendEventLocked(cr, "stranded", fmt.Sprintf(
			"configuration %03d stranded by drain; a restarted server resumes it", i))
	} else if cr.state != stateFailed {
		cr.state = stateFailed
		cr.failed = err
		s.dropFromQueueLocked(cr)
		s.appendEventLocked(cr, "failed", fmt.Sprintf("configuration %03d: %v", i, err))
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	if stranded {
		s.reg.Counter("serve.configs_stranded").Inc()
	} else {
		s.reg.Counter("serve.solve_failures").Inc()
	}
}

// runFinalize builds the contract-class task body: when its campaign's
// last correlator pair has been recorded, seal the campaign -
// fingerprint, effective coupling, journal close.
func (s *Server) runFinalize(cr *campaignRun) func(ctx context.Context) (interface{}, error) {
	return func(context.Context) (interface{}, error) {
		s.mu.Lock()
		fin := cr.state == stateRunning && cr.camp.Complete()
		if fin {
			s.finalizeLocked(cr)
		}
		s.mu.Unlock()
		if fin {
			s.closeJournal(cr)
			s.reg.Counter("serve.campaigns_completed").Inc()
		}
		return nil, nil
	}
}

// finalizeLocked seals a complete campaign in memory. The journal close
// (file I/O) is the caller's, outside the lock.
func (s *Server) finalizeLocked(cr *campaignRun) {
	cr.state = stateComplete
	cr.fingerprint = cr.camp.Fingerprint()
	geff, geffErr, err := cr.camp.Geff()
	if err == nil {
		cr.geff = geff
		cr.geffErr = geffErr
	} else {
		s.reg.Counter("serve.geff_errors").Inc()
	}
	// All solves are done; the ensemble (if one was ever generated) is
	// dead weight now.
	cr.ensemble = nil
	s.appendEventLocked(cr, "complete", fmt.Sprintf(
		"campaign %s complete; fingerprint %s", cr.id, cr.fingerprint))
	s.cond.Broadcast()
}

func (s *Server) closeJournal(cr *campaignRun) {
	cr.closeOnce.Do(func() {
		if err := cr.journal.Sync(); err != nil {
			s.reg.Counter("serve.journal_errors").Inc()
		}
		if err := cr.journal.Close(); err != nil {
			s.reg.Counter("serve.journal_errors").Inc()
		}
	})
}

// Shutdown is the two-phase drain: stop admission and dispatch, drain
// the pool (in-flight solves get DrainGrace to finish and journal, then
// are stranded), and sync every journal. It returns once the pool has
// settled and the journals are durable; ctx bounds the wait. Stranded
// and refused work is not an error - a restarted server resumes it.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()

	<-s.dispatcherDone
	s.pool.Drain("shutdown")
	s.pool.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, _, err := s.pool.Wait(); err != nil {
			// Genuine task failures surfaced at the end of the allocation;
			// refused/stranded work is already filtered out by Wait.
			s.reg.Counter("serve.pool_failures").Inc()
		}
	}()
	var waitErr error
	select {
	case <-done:
	case <-ctx.Done():
		waitErr = ctx.Err()
	}

	s.mu.Lock()
	runs := make([]*campaignRun, 0, len(s.order))
	for _, id := range s.order {
		runs = append(runs, s.campaigns[id])
	}
	s.mu.Unlock()
	for _, cr := range runs {
		s.closeJournal(cr)
	}
	return waitErr
}
