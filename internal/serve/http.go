package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strings"

	"femtoverse/internal/core"
	"femtoverse/internal/solver"
	"femtoverse/internal/validate"

	jobrt "femtoverse/internal/runtime"
)

// SubmitRequest is the JSON body of POST /v1/campaigns. Spec fields are
// pointers: absent fields take the repository's default real-campaign
// spec, so a minimal request is {"tenant":"a"}.
type SubmitRequest struct {
	Tenant   string      `json:"tenant"`
	Priority int         `json:"priority"`
	Name     string      `json:"name,omitempty"`
	Spec     SpecRequest `json:"spec"`
}

// SpecRequest overrides individual fields of core.DefaultRealConfig.
type SpecRequest struct {
	Dims     *[4]int  `json:"dims,omitempty"`
	Ls       *int     `json:"ls,omitempty"`
	M5       *float64 `json:"m5,omitempty"`
	B5       *float64 `json:"b5,omitempty"`
	C5       *float64 `json:"c5,omitempty"`
	Mass     *float64 `json:"mass,omitempty"`
	NConfigs *int     `json:"nconfigs,omitempty"`
	Seed     *int64   `json:"seed,omitempty"`
	Beta     *float64 `json:"beta,omitempty"`
	Therm    *int     `json:"therm,omitempty"`
	Gap      *int     `json:"gap,omitempty"`
	Tol      *float64 `json:"tol,omitempty"`
	Prec     *string  `json:"prec,omitempty"`
}

// Validate checks the request through the same validator package the
// command-line flag sweeps use, collecting every problem at once.
func (r SubmitRequest) Validate() error {
	var errs []error
	if strings.TrimSpace(r.Tenant) == "" || strings.ContainsAny(r.Tenant, "/\\ \t\r\n") {
		errs = append(errs, errors.New("tenant: must be a non-empty token without spaces or path separators"))
	}
	errs = append(errs, validate.NonNegativeInt("priority", r.Priority))
	sp := r.Spec
	if sp.Dims != nil {
		for i, d := range sp.Dims {
			errs = append(errs, validate.PositiveInt(fmt.Sprintf("spec.dims[%d]", i), d))
		}
	}
	if sp.Ls != nil {
		errs = append(errs, validate.PositiveInt("spec.ls", *sp.Ls))
	}
	if sp.NConfigs != nil {
		errs = append(errs, validate.PositiveInt("spec.nconfigs", *sp.NConfigs))
	}
	if sp.Beta != nil {
		errs = append(errs, validate.PositiveFloat("spec.beta", *sp.Beta))
	}
	if sp.Tol != nil {
		errs = append(errs, validate.PositiveFloat("spec.tol", *sp.Tol))
	}
	if sp.Therm != nil {
		errs = append(errs, validate.NonNegativeInt("spec.therm", *sp.Therm))
	}
	if sp.Gap != nil {
		errs = append(errs, validate.NonNegativeInt("spec.gap", *sp.Gap))
	}
	if sp.Prec != nil {
		if _, err := parsePrecision(*sp.Prec); err != nil {
			errs = append(errs, err)
		}
	}
	return validate.All(errs...)
}

// RealConfig validates the request and materializes its campaign spec
// over the repository default.
func (r SubmitRequest) RealConfig() (core.RealConfig, error) {
	if err := r.Validate(); err != nil {
		return core.RealConfig{}, err
	}
	spec := core.DefaultRealConfig()
	sp := r.Spec
	if sp.Dims != nil {
		spec.Dims = *sp.Dims
	}
	if sp.Ls != nil {
		spec.Params.Ls = *sp.Ls
	}
	if sp.M5 != nil {
		spec.Params.M5 = *sp.M5
	}
	if sp.B5 != nil {
		spec.Params.B5 = *sp.B5
	}
	if sp.C5 != nil {
		spec.Params.C5 = *sp.C5
	}
	if sp.Mass != nil {
		spec.Params.M = *sp.Mass
	}
	if sp.NConfigs != nil {
		spec.NConfigs = *sp.NConfigs
	}
	if sp.Seed != nil {
		spec.Seed = *sp.Seed
	}
	if sp.Beta != nil {
		spec.Beta = *sp.Beta
	}
	if sp.Therm != nil {
		spec.ThermSweeps = *sp.Therm
	}
	if sp.Gap != nil {
		spec.GapSweeps = *sp.Gap
	}
	if sp.Tol != nil {
		spec.Tol = *sp.Tol
	}
	if sp.Prec != nil {
		p, err := parsePrecision(*sp.Prec)
		if err != nil {
			return core.RealConfig{}, err
		}
		spec.Prec = p
	}
	return spec, nil
}

func parsePrecision(s string) (solver.Precision, error) {
	switch strings.ToLower(s) {
	case "double":
		return solver.Double, nil
	case "single":
		return solver.Single, nil
	case "half":
		return solver.Half, nil
	}
	return 0, fmt.Errorf("spec.prec: must be one of double, single, half (got %q)", s)
}

// Handler returns the service's HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/campaigns", s.handleSubmit)
	mux.HandleFunc("GET /v1/campaigns", s.handleList)
	mux.HandleFunc("GET /v1/campaigns/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/campaigns/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/campaigns/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/dispatch", s.handleDispatch)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.reg.Counter("serve.http_write_errors").Inc()
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req SubmitRequest
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "serve: bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	spec, err := req.RealConfig()
	if err != nil {
		http.Error(w, "serve: invalid campaign request:\n"+err.Error(), http.StatusBadRequest)
		return
	}
	st, err := s.SubmitCampaign(req.Tenant, req.Priority, req.Name, spec)
	switch {
	case errors.Is(err, ErrDraining):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, jobrt.ErrRefused):
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	default:
		s.writeJSON(w, http.StatusCreated, st)
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.List())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.Status(r.PathValue("id"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	s.writeJSON(w, http.StatusOK, st)
}

// handleEvents streams the campaign's event log as NDJSON: everything
// recorded so far immediately, then each new event as it lands, closing
// once the campaign is terminal. Chunked transfer is the transport -
// each flush is one chunk.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "serve: streaming unsupported", http.StatusInternalServerError)
		return
	}
	enc := json.NewEncoder(w)
	after := 0
	first := true
	for {
		evs, ch, terminal, err := s.Events(id, after)
		if err != nil {
			if first {
				http.Error(w, err.Error(), http.StatusNotFound)
			}
			return
		}
		if first {
			w.Header().Set("Content-Type", "application/x-ndjson")
			first = false
		}
		for _, e := range evs {
			if err := enc.Encode(e); err != nil {
				s.reg.Counter("serve.http_write_errors").Inc()
				return
			}
			after = e.Seq
		}
		fl.Flush()
		if terminal {
			return
		}
		select {
		case <-ch:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// Existence first, so a miss is a clean 404 rather than a torn body.
	if _, err := s.Status(id); err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := s.WriteTrace(id, w); err != nil {
		s.reg.Counter("serve.http_write_errors").Inc()
	}
}

func (s *Server) handleDispatch(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.DispatchLog())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if _, err := fmt.Fprint(w, s.MetricsText()); err != nil {
		s.reg.Counter("serve.http_write_errors").Inc()
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	status := "ok"
	if draining {
		status = "draining"
	}
	if _, err := fmt.Fprintln(w, status); err != nil {
		s.reg.Counter("serve.http_write_errors").Inc()
	}
}

// writeSidecar persists a campaign's metadata sidecar with the same
// atomic idiom as the journal checkpoints: temp file, then rename.
func writeSidecar(path string, sc sidecar) error {
	data, err := json.MarshalIndent(sc, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// decodeJSONStrict unmarshals rejecting unknown fields, so a sidecar
// from a future schema is a counted resume error instead of silently
// half-parsed state.
func decodeJSONStrict(data []byte, v interface{}) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}
