package fit

import (
	"math"
	"math/rand"
	"testing"
)

func TestSingleExpExactRecovery(t *testing.T) {
	truth := []float64{3.2, 0.45}
	xs := make([]float64, 12)
	ys := make([]float64, 12)
	sig := make([]float64, 12)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = SingleExp(truth, xs[i])
		sig[i] = 0.01
	}
	prob, err := NewUncorrelated(SingleExp, xs, ys, sig)
	if err != nil {
		t.Fatal(err)
	}
	res, err := prob.Solve([]float64{1, 0.1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("not converged")
	}
	for i, p := range res.Params {
		if math.Abs(p-truth[i]) > 1e-6 {
			t.Fatalf("param %d = %v, want %v", i, p, truth[i])
		}
	}
	if res.Chi2 > 1e-10 {
		t.Fatalf("chi2 = %v on exact data", res.Chi2)
	}
}

func TestNoisyFitChi2Reasonable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	truth := []float64{2.0, 0.3}
	n := 20
	xs := make([]float64, n)
	ys := make([]float64, n)
	sig := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i)
		sig[i] = 0.02 * SingleExp(truth, xs[i])
		ys[i] = SingleExp(truth, xs[i]) + sig[i]*rng.NormFloat64()
	}
	prob, _ := NewUncorrelated(SingleExp, xs, ys, sig)
	res, err := prob.Solve([]float64{1, 0.1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Chi2PerDOF() > 3 {
		t.Fatalf("chi2/dof = %v", res.Chi2PerDOF())
	}
	if math.Abs(res.Params[1]-truth[1]) > 0.05 {
		t.Fatalf("mass = %v, want %v", res.Params[1], truth[1])
	}
}

func TestGeffModelPlateauRecovery(t *testing.T) {
	// Synthetic Fig. 1: plateau 1.271 with excited contamination.
	truth := []float64{1.271, -0.25, 0.5}
	n := 14
	xs := make([]float64, n)
	ys := make([]float64, n)
	sig := make([]float64, n)
	rng := rand.New(rand.NewSource(2))
	for i := range xs {
		xs[i] = float64(i + 1)
		sig[i] = 0.004
		ys[i] = GeffModel(truth, xs[i]) + sig[i]*rng.NormFloat64()
	}
	prob, _ := NewUncorrelated(GeffModel, xs, ys, sig)
	res, err := prob.Solve([]float64{1.2, -0.1, 0.8}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Params[0]-1.271) > 0.01 {
		t.Fatalf("gA = %v", res.Params[0])
	}
	// ExcitedPart + plateau = full model.
	for _, x := range xs {
		full := GeffModel(res.Params, x)
		if math.Abs(full-res.Params[0]-ExcitedPart(res.Params, x)) > 1e-12 {
			t.Fatal("ExcitedPart inconsistent with GeffModel")
		}
	}
}

func TestCorrelatedFitUsesFullCovariance(t *testing.T) {
	// Strongly correlated data: a correlated fit must give chi2 close to
	// dof, and the naive uncorrelated chi2 should differ noticeably.
	rng := rand.New(rand.NewSource(3))
	truth := []float64{1.0, 0.2}
	n := 8
	nSamp := 400
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i)
	}
	// Build samples with a common fluctuation mode (high correlation).
	samples := make([][]float64, nSamp)
	for s := range samples {
		common := rng.NormFloat64()
		v := make([]float64, n)
		for i := range v {
			v[i] = SingleExp(truth, xs[i]) * (1 + 0.03*common + 0.01*rng.NormFloat64())
		}
		samples[s] = v
	}
	mean := make([]float64, n)
	for _, s := range samples {
		for i, v := range s {
			mean[i] += v / float64(nSamp)
		}
	}
	cov := make([]float64, n*n)
	for _, s := range samples {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				cov[i*n+j] += (s[i] - mean[i]) * (s[j] - mean[j])
			}
		}
	}
	for i := range cov {
		cov[i] /= float64(nSamp * (nSamp - 1))
	}
	prob, err := NewCorrelated(SingleExp, xs, mean, cov)
	if err != nil {
		t.Fatal(err)
	}
	res, err := prob.Solve([]float64{0.8, 0.25}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Chi2PerDOF() > 5 {
		t.Fatalf("correlated chi2/dof = %v", res.Chi2PerDOF())
	}
	if math.Abs(res.Params[1]-truth[1]) > 0.02 {
		t.Fatalf("mass = %v", res.Params[1])
	}
}

func TestTradRatioModelSymmetry(t *testing.T) {
	m := TradRatioModel(10)
	p := []float64{1.27, -0.3, 0.5}
	for tau := 0.0; tau <= 5; tau++ {
		if math.Abs(m(p, tau)-m(p, 10-tau)) > 1e-12 {
			t.Fatalf("ratio not symmetric about T/2 at tau=%v", tau)
		}
	}
	// Contamination is largest at the endpoints.
	if math.Abs(m(p, 0)-p[0]) < math.Abs(m(p, 5)-p[0]) {
		t.Fatal("contamination should peak at endpoints")
	}
}

func TestTwoExpReducesToSingleExp(t *testing.T) {
	p := []float64{2, 0.4, 0, 1}
	for x := 0.0; x < 5; x++ {
		if math.Abs(TwoExp(p, x)-SingleExp(p[:2], x)) > 1e-14 {
			t.Fatal("TwoExp with zero amplitude differs from SingleExp")
		}
	}
}

func TestRejectsBadInputs(t *testing.T) {
	if _, err := NewUncorrelated(SingleExp, []float64{1}, []float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := NewUncorrelated(SingleExp, []float64{1}, []float64{1}, []float64{0}); err == nil {
		t.Fatal("zero sigma accepted")
	}
	prob, _ := NewUncorrelated(SingleExp, []float64{1}, []float64{1}, []float64{0.1})
	if _, err := prob.Solve([]float64{1, 1, 1, 1}, Options{}); err == nil {
		t.Fatal("under-determined fit accepted")
	}
}

func TestChi2PerDOFEdgeCases(t *testing.T) {
	r := Result{Chi2: 5, DOF: 0}
	if !math.IsNaN(r.Chi2PerDOF()) {
		t.Fatal("zero dof must be NaN")
	}
}
