// Package fit provides the correlated nonlinear least-squares machinery of
// the gA analysis: a Levenberg-Marquardt minimiser with numerical
// Jacobians, chi-square against either independent errors or a full
// covariance matrix, and the specific fit models of the paper's Fig. 1 -
// the effective-coupling plateau with excited-state contamination, and
// multi-exponential two-point functions.
package fit

import (
	"errors"
	"fmt"
	"math"

	"femtoverse/internal/linalg"
)

// Func is a parametric model y = f(params, x).
type Func func(params []float64, x float64) float64

// Result reports a completed fit.
type Result struct {
	Params     []float64
	Chi2       float64
	DOF        int
	Iterations int
	Converged  bool
}

// Chi2PerDOF returns the reduced chi-square.
func (r Result) Chi2PerDOF() float64 {
	if r.DOF <= 0 {
		return math.NaN()
	}
	return r.Chi2 / float64(r.DOF)
}

// Options tunes the minimiser; zero values select the defaults.
type Options struct {
	MaxIter int     // default 200
	Tol     float64 // relative chi2 improvement convergence, default 1e-10
	Lambda0 float64 // initial damping, default 1e-3
}

func (o Options) withDefaults() Options {
	if o.MaxIter <= 0 {
		o.MaxIter = 200
	}
	if o.Tol <= 0 {
		o.Tol = 1e-10
	}
	if o.Lambda0 <= 0 {
		o.Lambda0 = 1e-3
	}
	return o
}

// ErrSingular is returned when the normal equations cannot be solved even
// with heavy damping.
var ErrSingular = errors.New("fit: singular normal equations")

// Problem is a correlated least-squares problem: minimise
// r^T W r with r_i = y_i - f(p, x_i) and W the inverse covariance.
type Problem struct {
	F  Func
	Xs []float64
	Ys []float64
	// W is the inverse covariance (weight) matrix, row-major n x n.
	W []float64
}

// NewUncorrelated builds a Problem from independent errors sigma_i.
func NewUncorrelated(f Func, xs, ys, sigmas []float64) (*Problem, error) {
	n := len(xs)
	if len(ys) != n || len(sigmas) != n {
		return nil, fmt.Errorf("fit: length mismatch %d/%d/%d", len(xs), len(ys), len(sigmas))
	}
	w := make([]float64, n*n)
	for i, s := range sigmas {
		if s <= 0 {
			return nil, fmt.Errorf("fit: sigma[%d] = %g must be positive", i, s)
		}
		w[i*n+i] = 1 / (s * s)
	}
	return &Problem{F: f, Xs: xs, Ys: ys, W: w}, nil
}

// NewCorrelated builds a Problem from a covariance matrix, inverting it.
func NewCorrelated(f Func, xs, ys, cov []float64) (*Problem, error) {
	n := len(xs)
	if len(ys) != n || len(cov) != n*n {
		return nil, fmt.Errorf("fit: covariance shape mismatch")
	}
	w, err := linalg.InvReal(n, cov)
	if err != nil {
		return nil, fmt.Errorf("fit: covariance not invertible: %w", err)
	}
	return &Problem{F: f, Xs: xs, Ys: ys, W: w}, nil
}

// Chi2 evaluates the correlated chi-square at the given parameters.
func (p *Problem) Chi2(params []float64) float64 {
	n := len(p.Xs)
	r := make([]float64, n)
	for i := range r {
		r[i] = p.Ys[i] - p.F(params, p.Xs[i])
	}
	chi2 := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			chi2 += r[i] * p.W[i*n+j] * r[j]
		}
	}
	return chi2
}

// jacobian computes d f / d p_k at every x by central differences.
func (p *Problem) jacobian(params []float64) []float64 {
	n := len(p.Xs)
	k := len(params)
	jac := make([]float64, n*k)
	pp := append([]float64(nil), params...)
	for c := 0; c < k; c++ {
		h := 1e-7 * (1 + math.Abs(params[c]))
		pp[c] = params[c] + h
		for i := 0; i < n; i++ {
			jac[i*k+c] = p.F(pp, p.Xs[i])
		}
		pp[c] = params[c] - h
		for i := 0; i < n; i++ {
			jac[i*k+c] = (jac[i*k+c] - p.F(pp, p.Xs[i])) / (2 * h)
		}
		pp[c] = params[c]
	}
	return jac
}

// Solve runs Levenberg-Marquardt from the initial guess p0.
func (p *Problem) Solve(p0 []float64, opt Options) (Result, error) {
	opt = opt.withDefaults()
	n := len(p.Xs)
	k := len(p0)
	if n < k {
		return Result{}, fmt.Errorf("fit: %d points cannot constrain %d parameters", n, k)
	}
	params := append([]float64(nil), p0...)
	chi2 := p.Chi2(params)
	lambda := opt.Lambda0
	res := Result{DOF: n - k}

	r := make([]float64, n)
	grad := make([]float64, k)
	hess := make([]float64, k*k)
	damped := make([]float64, k*k)

	for iter := 0; iter < opt.MaxIter; iter++ {
		res.Iterations = iter + 1
		jac := p.jacobian(params)
		for i := 0; i < n; i++ {
			r[i] = p.Ys[i] - p.F(params, p.Xs[i])
		}
		// grad = J^T W r ; hess = J^T W J.
		for a := 0; a < k; a++ {
			grad[a] = 0
			for b := 0; b < k; b++ {
				hess[a*k+b] = 0
			}
		}
		wr := make([]float64, n)
		wj := make([]float64, n*k)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				wij := p.W[i*n+j]
				if wij == 0 {
					continue
				}
				wr[i] += wij * r[j]
				for a := 0; a < k; a++ {
					wj[i*k+a] += wij * jac[j*k+a]
				}
			}
		}
		for i := 0; i < n; i++ {
			for a := 0; a < k; a++ {
				grad[a] += jac[i*k+a] * wr[i]
				for b := 0; b < k; b++ {
					hess[a*k+b] += jac[i*k+a] * wj[i*k+b]
				}
			}
		}

		improved := false
		for attempt := 0; attempt < 25; attempt++ {
			copy(damped, hess)
			for a := 0; a < k; a++ {
				damped[a*k+a] *= 1 + lambda
				if damped[a*k+a] == 0 {
					damped[a*k+a] = lambda
				}
			}
			step, err := linalg.SolveReal(k, damped, grad)
			if err != nil {
				lambda *= 10
				continue
			}
			trial := make([]float64, k)
			for a := range trial {
				trial[a] = params[a] + step[a]
			}
			trialChi2 := p.Chi2(trial)
			if !math.IsNaN(trialChi2) && trialChi2 < chi2 {
				rel := (chi2 - trialChi2) / (chi2 + 1e-300)
				copy(params, trial)
				chi2 = trialChi2
				lambda = math.Max(lambda*0.3, 1e-12)
				improved = true
				if rel < opt.Tol {
					res.Params = params
					res.Chi2 = chi2
					res.Converged = true
					return res, nil
				}
				break
			}
			lambda *= 10
			if lambda > 1e12 {
				break
			}
		}
		if !improved {
			// Local minimum (or singular): accept if chi2 is finite.
			res.Params = params
			res.Chi2 = chi2
			res.Converged = !math.IsNaN(chi2) && !math.IsInf(chi2, 0)
			if !res.Converged {
				return res, ErrSingular
			}
			return res, nil
		}
	}
	res.Params = params
	res.Chi2 = chi2
	res.Converged = true
	return res, nil
}

// Models of the gA analysis.

// SingleExp is A * exp(-m x) with params = [A, m].
func SingleExp(p []float64, x float64) float64 { return p[0] * math.Exp(-p[1]*x) }

// TwoExp is A0 exp(-m0 x) (1 + A1 exp(-dE x)) with params = [A0, m0, A1, dE]
// and dE > 0 enforced softly by |dE|.
func TwoExp(p []float64, x float64) float64 {
	return p[0] * math.Exp(-p[1]*x) * (1 + p[2]*math.Exp(-math.Abs(p[3])*x))
}

// GeffModel is the paper's Fig. 1 fit form for the effective coupling:
// g_eff(t) = gA + c1 * exp(-dE t), params = [gA, c1, dE]; the excited
// contamination dies away leaving the plateau gA.
func GeffModel(p []float64, t float64) float64 {
	return p[0] + p[1]*math.Exp(-math.Abs(p[2])*t)
}

// ExcitedPart returns only the contamination term of GeffModel, used to
// produce the paper's "modified results ... after removing the
// contribution from excited states" (black points of Fig. 1).
func ExcitedPart(p []float64, t float64) float64 {
	return p[1] * math.Exp(-math.Abs(p[2])*t)
}

// TradRatioModel is the traditional fixed-sink ratio
// R(tau; T) = gA + b [exp(-dE tau) + exp(-dE (T - tau))],
// params = [gA, b, dE], with x encoding tau and the caller fixing T via
// closure.
func TradRatioModel(tSep float64) Func {
	return func(p []float64, tau float64) float64 {
		dE := math.Abs(p[2])
		return p[0] + p[1]*(math.Exp(-dE*tau)+math.Exp(-dE*(tSep-tau)))
	}
}
