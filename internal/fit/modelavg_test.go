package fit

import (
	"math"
	"testing"
)

func TestModelAverageSingleCandidate(t *testing.T) {
	avg, err := ModelAverage([]Candidate{{Value: 1.27, Err: 0.01, Chi2: 5, Params: 3, Cut: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if avg.Value != 1.27 || math.Abs(avg.StatErr-0.01) > 1e-15 {
		t.Fatalf("%+v", avg)
	}
	if avg.ModelErr > 1e-12 {
		t.Fatalf("single model has spread %v", avg.ModelErr)
	}
}

func TestModelAverageWeightsByAIC(t *testing.T) {
	// Candidate 0 has much better AIC: it must dominate.
	cands := []Candidate{
		{Value: 1.0, Err: 0.01, Chi2: 2, Params: 2, Cut: 0, Label: "good"},
		{Value: 2.0, Err: 0.01, Chi2: 30, Params: 2, Cut: 0, Label: "bad"},
	}
	avg, err := ModelAverage(cands)
	if err != nil {
		t.Fatal(err)
	}
	if avg.Best != 0 {
		t.Fatalf("best = %d", avg.Best)
	}
	if avg.Weights[0] < 0.99 {
		t.Fatalf("good model weight %v", avg.Weights[0])
	}
	if math.Abs(avg.Value-1.0) > 0.01 {
		t.Fatalf("value %v", avg.Value)
	}
}

func TestModelAverageEqualWeightsSplit(t *testing.T) {
	cands := []Candidate{
		{Value: 1.0, Err: 0.1, Chi2: 5, Params: 2},
		{Value: 2.0, Err: 0.1, Chi2: 5, Params: 2},
	}
	avg, err := ModelAverage(cands)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(avg.Value-1.5) > 1e-12 {
		t.Fatalf("value %v", avg.Value)
	}
	// Model spread: sqrt(<v^2> - <v>^2) = 0.5.
	if math.Abs(avg.ModelErr-0.5) > 1e-12 {
		t.Fatalf("model err %v", avg.ModelErr)
	}
	// Combined error exceeds both components.
	if avg.Err < avg.ModelErr || avg.Err < avg.StatErr {
		t.Fatal("combination wrong")
	}
}

func TestModelAverageCutPenalty(t *testing.T) {
	// Equal chi2 and params, but candidate 1 cut 5 more points: AIC
	// penalizes it by 10, so candidate 0 dominates.
	cands := []Candidate{
		{Value: 1.0, Err: 0.1, Chi2: 5, Params: 2, Cut: 0},
		{Value: 2.0, Err: 0.1, Chi2: 5, Params: 2, Cut: 5},
	}
	avg, err := ModelAverage(cands)
	if err != nil {
		t.Fatal(err)
	}
	if avg.Weights[0] < 0.95 {
		t.Fatalf("weights %v", avg.Weights)
	}
}

func TestModelAverageRejectsInvalid(t *testing.T) {
	if _, err := ModelAverage(nil); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := ModelAverage([]Candidate{{Value: math.NaN(), Err: 1}}); err == nil {
		t.Fatal("all-NaN accepted")
	}
	// NaN candidates are skipped, not fatal, when others exist.
	avg, err := ModelAverage([]Candidate{
		{Value: math.NaN(), Err: 1, Chi2: 1},
		{Value: 3, Err: 0.1, Chi2: 1, Params: 1},
	})
	if err != nil || math.Abs(avg.Value-3) > 1e-12 {
		t.Fatalf("%v %+v", err, avg)
	}
}
