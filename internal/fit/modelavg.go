package fit

import (
	"fmt"
	"math"
)

// Model averaging over fit choices (window, excited-state form), in the
// Akaike-information-criterion form used by the collaboration's later gA
// analyses: each candidate fit gets weight exp(-AIC/2) with
// AIC = chi2 + 2 k + 2 n_cut, where k counts parameters and n_cut counts
// data points excluded by the window. The averaged result propagates both
// the within-fit error and the spread across models.

// Candidate is one fit entering the average.
type Candidate struct {
	// Value and Err are the parameter of interest and its uncertainty.
	Value float64
	Err   float64
	// Chi2 is the (correlated) chi-square of the fit.
	Chi2 float64
	// Params counts the fit parameters k.
	Params int
	// Cut counts the data points the fit window excluded.
	Cut int
	// Label identifies the candidate in reports.
	Label string
}

// AIC returns the Akaike criterion of the candidate.
func (c Candidate) AIC() float64 {
	return c.Chi2 + 2*float64(c.Params) + 2*float64(c.Cut)
}

// Average is the outcome of a model average.
type Average struct {
	Value float64
	// StatErr is the weighted within-model uncertainty; ModelErr is the
	// across-model spread; Err combines them in quadrature.
	StatErr  float64
	ModelErr float64
	Err      float64
	Weights  []float64
	Best     int // index of the highest-weight candidate
}

// ModelAverage combines candidates with AIC weights. At least one
// candidate with finite values is required.
func ModelAverage(cands []Candidate) (Average, error) {
	if len(cands) == 0 {
		return Average{}, fmt.Errorf("fit: no candidates to average")
	}
	// Subtract the minimum AIC before exponentiating for stability.
	minAIC := math.Inf(1)
	for _, c := range cands {
		if a := c.AIC(); a < minAIC && !math.IsNaN(c.Value) {
			minAIC = a
		}
	}
	if math.IsInf(minAIC, 1) {
		return Average{}, fmt.Errorf("fit: all candidates invalid")
	}
	w := make([]float64, len(cands))
	sum := 0.0
	for i, c := range cands {
		if math.IsNaN(c.Value) || math.IsNaN(c.Err) {
			continue
		}
		w[i] = math.Exp(-(c.AIC() - minAIC) / 2)
		sum += w[i]
	}
	if sum == 0 {
		return Average{}, fmt.Errorf("fit: zero total weight")
	}
	avg := Average{Weights: w}
	best := 0
	for i := range w {
		w[i] /= sum
		if w[i] > w[best] {
			best = i
		}
	}
	avg.Best = best
	var mean, stat, second float64
	for i, c := range cands {
		if w[i] == 0 {
			continue
		}
		mean += w[i] * c.Value
		stat += w[i] * c.Err * c.Err
		second += w[i] * c.Value * c.Value
	}
	avg.Value = mean
	avg.StatErr = math.Sqrt(stat)
	modelVar := second - mean*mean
	if modelVar < 0 {
		modelVar = 0
	}
	avg.ModelErr = math.Sqrt(modelVar)
	avg.Err = math.Hypot(avg.StatErr, avg.ModelErr)
	return avg, nil
}
