// Package metaq implements a METAQ-style backfilling bundler [Berkowitz,
// METAQ: Bundle Supercomputing Tasks; EPJ Web Conf. 175, 09007]: a thin
// middle layer between the batch scheduler and the user's job scripts
// that starts any pending task as soon as enough nodes are free,
// recovering the idle time naive bundling wastes. Being a set of shell
// scripts, it is hardware-agnostic: it cannot keep a task's nodes close
// together (scattered placements run at a locality penalty as the
// allocation fragments), it pays a separate mpirun invocation per task,
// and it cannot safely overlay CPU work on GPU-busy nodes.
package metaq

import "femtoverse/internal/cluster"

// Policy is the METAQ scheduling policy.
type Policy struct {
	// LaunchOverhead is the per-task mpirun cost in seconds (the paper
	// notes separate invocations "can become taxing on the service
	// nodes"). Default 15.
	LaunchOverhead float64
	// ScatterPenalty is the speed factor of a task placed on
	// non-contiguous nodes. Default 0.92.
	ScatterPenalty float64
}

// Name implements cluster.Policy.
func (Policy) Name() string { return "metaq" }

// Startup implements cluster.Policy: the batch allocation itself is
// already running; METAQ begins dispatching immediately.
func (Policy) Startup(cluster.Config) float64 { return 0 }

func (p Policy) overhead() float64 {
	if p.LaunchOverhead > 0 {
		return p.LaunchOverhead
	}
	return 15
}

func (p Policy) scatter() float64 {
	if p.ScatterPenalty > 0 && p.ScatterPenalty <= 1 {
		return p.ScatterPenalty
	}
	return 0.92
}

// Dispatch implements cluster.Policy: walk the queue in order and start
// every task that fits anywhere (backfilling); GPU tasks take the
// lowest-numbered free whole nodes, wherever they are.
func (p Policy) Dispatch(s *cluster.Sim) []cluster.Start {
	free := s.FreeWholeNodes()
	var starts []cluster.Start
	for _, id := range s.PendingIDs() {
		t, _ := s.PendingTask(id)
		if !s.Admits(t, p.overhead()) {
			// METAQ's own rule: a task is only launched if it fits in the
			// remaining allocation, so the batch job ends clean instead of
			// killing work mid-flight.
			continue
		}
		switch t.Kind {
		case cluster.GPUTask:
			per := s.Config().GPUsPerNode
			need := (t.GPUs + per - 1) / per
			if need > len(free) {
				continue // backfill: later, smaller tasks may still fit
			}
			nodes := free[:need]
			free = free[need:]
			penalty := 1.0
			if !isContiguous(nodes) {
				penalty = p.scatter()
			}
			starts = append(starts, cluster.Start{
				TaskID:       id,
				Nodes:        nodes,
				SpeedPenalty: penalty,
				Overhead:     p.overhead(),
			})
		case cluster.CPUTask:
			// METAQ cannot overlay executables: CPU tasks consume an
			// idle node exclusively.
			if len(free) == 0 {
				continue
			}
			starts = append(starts, cluster.Start{
				TaskID:       id,
				Nodes:        free[:1],
				SpeedPenalty: 1,
				Overhead:     p.overhead(),
				Exclusive:    true,
			})
			free = free[1:]
		}
	}
	return starts
}

func isContiguous(nodes []int) bool {
	for i := 1; i < len(nodes); i++ {
		if nodes[i] != nodes[i-1]+1 {
			return false
		}
	}
	return true
}
