package metaq

import (
	"math/rand"
	"testing"

	"femtoverse/internal/cluster"
)

func mixedTasks(n int, base, spread float64, seed int64) []cluster.Task {
	rng := rand.New(rand.NewSource(seed))
	tasks := make([]cluster.Task, n)
	for i := range tasks {
		tasks[i] = cluster.Task{
			ID: i, Name: "prop", Kind: cluster.GPUTask,
			GPUs:    16,
			Seconds: base * (1 + spread*(2*rng.Float64()-1)),
			TFlops:  28,
		}
	}
	return tasks
}

func sierraLike(nodes int, seed int64) cluster.Config {
	return cluster.Config{
		Nodes: nodes, GPUsPerNode: 4, CPUSlotsPerNode: 40,
		JitterSigma: 0.05, Seed: seed,
	}
}

func TestMETAQRecoversNaiveBundlingWaste(t *testing.T) {
	// The paper: backfilling "allowed us to recover an enormous fraction
	// of our wasted time, effectively providing an across-the-board 25%
	// speed-up".
	cfg := sierraLike(64, 3)
	// A realistic campaign mixes job sizes that do not tile the
	// allocation exactly, on top of +-40% duration spread (iteration
	// counts vary per configuration); both effects starve the naive
	// bundler.
	rng := rand.New(rand.NewSource(4))
	var tasks []cluster.Task
	for i := 0; i < 72; i++ {
		gpus := 16
		if i%4 == 0 {
			gpus = 24
		}
		tasks = append(tasks, cluster.Task{
			ID: i, Name: "prop", Kind: cluster.GPUTask, GPUs: gpus,
			Seconds: 2000 * (1 + 0.4*(2*rng.Float64()-1)),
			TFlops:  28,
		})
	}
	naive, err := cluster.Run(cfg, tasks, cluster.NaiveBundle{LaunchOverhead: 10})
	if err != nil {
		t.Fatal(err)
	}
	mq, err := cluster.Run(cfg, tasks, Policy{})
	if err != nil {
		t.Fatal(err)
	}
	speedup := (naive.Makespan - naive.StartupSeconds) / (mq.Makespan - mq.StartupSeconds)
	if speedup < 1.12 || speedup > 1.6 {
		t.Fatalf("METAQ speedup %.2f, paper reports ~1.25", speedup)
	}
	if mq.GPUUtil <= naive.GPUUtil {
		t.Fatalf("METAQ utilization %.2f not above naive %.2f", mq.GPUUtil, naive.GPUUtil)
	}
}

func TestMETAQFragmentsOverTime(t *testing.T) {
	// As differently-sized jobs complete and start, placements scatter:
	// some tasks must land on non-contiguous nodes (the locality problem
	// mpi_jm's blocks fix).
	cfg := sierraLike(32, 5)
	rng := rand.New(rand.NewSource(6))
	var tasks []cluster.Task
	// Small jobs first, larger jobs queued behind: as the small jobs
	// drain, their non-adjacent holes are all the big jobs can get.
	for i := 0; i < 32; i++ {
		tasks = append(tasks, cluster.Task{
			ID: i, Kind: cluster.GPUTask, GPUs: 8,
			Seconds: 500 * (1 + 0.8*rng.Float64()),
		})
	}
	for i := 32; i < 48; i++ {
		tasks = append(tasks, cluster.Task{
			ID: i, Kind: cluster.GPUTask, GPUs: 16,
			Seconds: 500 * (1 + 0.8*rng.Float64()),
		})
	}
	rep, err := cluster.Run(cfg, tasks, Policy{})
	if err != nil {
		t.Fatal(err)
	}
	scattered := 0
	for _, st := range rep.PerTask {
		if st.Scattered {
			scattered++
			if st.Speed >= 1 {
				t.Fatal("scattered task did not pay the locality penalty")
			}
		}
	}
	if scattered == 0 {
		t.Fatal("no fragmentation observed; the baseline should fragment")
	}
}

func TestMETAQPerTaskLaunchOverhead(t *testing.T) {
	cfg := sierraLike(4, 7)
	tasks := mixedTasks(1, 100, 0, 8)
	rep, err := cluster.Run(cfg, tasks, Policy{LaunchOverhead: 30})
	if err != nil {
		t.Fatal(err)
	}
	dur := rep.PerTask[0].End - rep.PerTask[0].Start
	if dur < 100+30-1 {
		t.Fatalf("launch overhead not charged: duration %v", dur)
	}
}

func TestMETAQHandlesCPUTasksExclusively(t *testing.T) {
	cfg := sierraLike(8, 9)
	tasks := []cluster.Task{
		{ID: 0, Kind: cluster.GPUTask, GPUs: 16, Seconds: 100},
		{ID: 1, Kind: cluster.CPUTask, CPUs: 8, Seconds: 100},
	}
	rep, err := cluster.Run(cfg, tasks, Policy{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TasksDone != 2 {
		t.Fatal("tasks unfinished")
	}
	// The CPU task consumed a whole node: its node must differ from the
	// GPU task's nodes.
	cpuNode := -1
	gpuNodes := map[int]bool{}
	for _, st := range rep.PerTask {
		if st.Task.Kind == cluster.CPUTask {
			cpuNode = st.Nodes[0]
		} else {
			for _, n := range st.Nodes {
				gpuNodes[n] = true
			}
		}
	}
	if gpuNodes[cpuNode] {
		t.Fatal("METAQ overlaid a CPU task on GPU-busy nodes; it cannot do that")
	}
}

func TestMETAQZeroStartup(t *testing.T) {
	if (Policy{}).Startup(sierraLike(128, 1)) != 0 {
		t.Fatal("METAQ dispatches inside an existing allocation")
	}
}
