// Package autotune is the run-time kernel autotuner, modelled on QUDA's:
// the first time an un-tuned kernel/problem combination is met, a
// brute-force search over launch parameters is performed; the optimum is
// stored in a keyed cache and looked up on demand ever after. Entries
// carry performance metadata, the cache can be saved and restored (QUDA's
// tunecache file), and destructive kernels can be tuned safely through
// the PreTune/PostTune backup hooks. The launch-parameter space here is
// worker count and site-block granularity rather than CUDA block/grid
// geometry, but the mechanism - and its effect on performance
// portability - is the paper's.
package autotune

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	rcache "femtoverse/internal/cache"
	"femtoverse/internal/obs"
)

// Key identifies a tuned kernel: its name, the problem geometry, and any
// salient auxiliary parameters (precision, stencil direction mask, ...).
type Key struct {
	Kernel string `json:"kernel"`
	Volume string `json:"volume"`
	Aux    string `json:"aux"`
}

// String renders the key in QUDA's tunecache style.
func (k Key) String() string { return k.Kernel + "," + k.Volume + "," + k.Aux }

// LaunchParams is the tunable launch configuration of a kernel.
type LaunchParams struct {
	Workers int `json:"workers"` // goroutines in the site loop
	Block   int `json:"block"`   // sites per scheduling block
}

// Entry is a cache record: the winning parameters plus metadata.
type Entry struct {
	Params LaunchParams `json:"params"`
	// Time is the best measured time for timed searches. For modelled
	// searches (SearchModelled) it instead encodes the unit-less model
	// cost as cost seconds, clamped to [0, MaxInt64] nanoseconds.
	Time   time.Duration `json:"time"`
	GFLOPS float64       `json:"gflops"` // derived from Flops metadata
	// Tried counts candidates examined; Runs counts total kernel
	// executions during the search (one warm-up plus reps per candidate),
	// which is what the search actually cost.
	Tried    int       `json:"tried"`
	Runs     int       `json:"runs,omitempty"`
	TunedAt  time.Time `json:"tuned_at"` // when the search ran
	Comments string    `json:"comments,omitempty"`
}

// Tunable is the contract a kernel implements to be autotuned, mirroring
// QUDA's Tunable class.
type Tunable interface {
	Key() Key
	Candidates() []LaunchParams
	// Run executes the kernel once with the given launch parameters.
	Run(p LaunchParams)
	// Flops returns the work of one Run for the performance metadata.
	Flops() int64
	// PreTune saves any state the kernel destroys; PostTune restores it.
	PreTune()
	PostTune()
}

// Tuner owns the cache. It is safe for concurrent use: cache lookups are
// mutex-guarded, and cold-key searches are singleflighted (through the
// shared cache.Flight primitive) so N workers hitting the same un-tuned
// kernel perform exactly one search instead of N concurrent ones timing
// candidates against each other's load.
type Tuner struct {
	mu     sync.Mutex
	cache  map[Key]Entry
	flight *rcache.Flight[Key, Entry]

	reps    atomic.Int64
	enabled atomic.Bool

	obsMu   sync.Mutex
	metrics *obs.Registry
	scope   obs.Scope
}

// New returns an enabled tuner with an empty cache.
func New() *Tuner {
	t := &Tuner{cache: make(map[Key]Entry), flight: rcache.NewFlight[Key, Entry]()}
	t.reps.Store(3)
	t.enabled.Store(true)
	return t
}

// Reps is how many timed repetitions each candidate gets (best of).
// Race-safe; defaults to 3.
func (t *Tuner) Reps() int { return int(t.reps.Load()) }

// SetReps sets the per-candidate repetition count (values < 1 clamp to 1
// at search time).
func (t *Tuner) SetReps(n int) { t.reps.Store(int64(n)) }

// Enabled reports whether tuning is active. When false, Execute bypasses
// the search and always runs the first candidate, supporting the ablation
// benchmarks. Race-safe; defaults to true.
func (t *Tuner) Enabled() bool { return t.enabled.Load() }

// SetEnabled toggles tuning.
func (t *Tuner) SetEnabled(on bool) { t.enabled.Store(on) }

// SetObserver attaches a metrics registry and trace scope: each completed
// search records counters and per-kernel GFLOPS gauges into the registry
// and an instant event on the scope. Either may be nil/zero (no-op).
func (t *Tuner) SetObserver(reg *obs.Registry, sc obs.Scope) {
	t.obsMu.Lock()
	t.metrics = reg
	t.scope = sc
	t.obsMu.Unlock()
}

// observeSearch publishes one finished search to the attached observer.
func (t *Tuner) observeSearch(key Key, e Entry) {
	t.obsMu.Lock()
	reg, sc := t.metrics, t.scope
	t.obsMu.Unlock()
	reg.Counter("autotune.searches").Inc()
	reg.Counter("autotune.kernel_runs").Add(int64(e.Runs))
	if e.GFLOPS > 0 {
		reg.Gauge("autotune.gflops."+key.Kernel).Set(e.GFLOPS)
	}
	sc.Instant("autotune", "search", map[string]interface{}{
		"key":     key.String(),
		"workers": e.Params.Workers,
		"block":   e.Params.Block,
		"tried":   e.Tried,
		"gflops":  e.GFLOPS,
	})
}

// lookupOrSearch returns the cached entry for key, or runs search exactly
// once across all concurrent callers (per-key singleflight via the shared
// cache.Flight) and caches its result. If the searcher panics, waiters
// wake with completed=false, re-check the cache, and retry — one of them
// becomes the next searcher — while the panic propagates to the caller
// that ran the search.
func (t *Tuner) lookupOrSearch(key Key, search func() Entry) Entry {
	for {
		if e, ok := t.Lookup(key); ok {
			return e
		}
		e, err, _, completed := t.flight.Do(key, func() (Entry, error) {
			e := search()
			t.mu.Lock()
			t.cache[key] = e
			t.mu.Unlock()
			return e, nil
		})
		if err != nil {
			// The search closure never returns an error; a non-nil error
			// here is a programming bug, not a tunable condition.
			panic(err)
		}
		if completed {
			return e
		}
	}
}

// Lookup returns the cached entry, if any.
func (t *Tuner) Lookup(k Key) (Entry, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.cache[k]
	return e, ok
}

// Len returns the number of cached entries.
func (t *Tuner) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.cache)
}

// Execute runs the tunable with its optimal launch parameters, performing
// the brute-force search on a cache miss (with PreTune/PostTune wrapped
// around the timing runs, as QUDA does for data-destructive kernels).
// Concurrent calls on the same cold key perform exactly one search.
func (t *Tuner) Execute(k Tunable) LaunchParams {
	key := k.Key()
	cands := k.Candidates()
	if len(cands) == 0 {
		panic("autotune: tunable offered no candidates")
	}
	if !t.Enabled() {
		k.Run(cands[0])
		return cands[0]
	}
	e := t.lookupOrSearch(key, func() Entry { return t.search(key, k, cands) })
	k.Run(e.Params)
	return e.Params
}

// Tune performs the search without executing afterwards and caches the
// result; it returns the winning entry. Singleflighted like Execute.
func (t *Tuner) Tune(k Tunable) Entry {
	key := k.Key()
	return t.lookupOrSearch(key, func() Entry { return t.search(key, k, k.Candidates()) })
}

func (t *Tuner) search(key Key, k Tunable, cands []LaunchParams) Entry {
	if len(cands) == 0 {
		panic("autotune: tunable offered no candidates")
	}
	reps := t.Reps()
	if reps < 1 {
		reps = 1
	}
	k.PreTune()
	defer k.PostTune()
	best := Entry{Time: time.Duration(1<<62 - 1), Tried: len(cands)}
	// Warm up once so first-touch costs do not bias candidate 0. The
	// warm-up is counted in Runs (it happened) but not in Tried (no
	// candidate was examined by it).
	k.Run(cands[0])
	runs := 1
	for _, c := range cands {
		var fastest time.Duration = 1<<62 - 1
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			k.Run(c)
			if d := time.Since(t0); d < fastest {
				fastest = d
			}
		}
		runs += reps
		if fastest < best.Time {
			best.Time = fastest
			best.Params = c
		}
	}
	best.Runs = runs
	if s := best.Time.Seconds(); s > 0 {
		best.GFLOPS = float64(k.Flops()) / s / 1e9
	}
	best.TunedAt = time.Now()
	t.observeSearch(key, best)
	return best
}

// modelCostDuration encodes a unit-less model cost in the Entry.Time slot
// as cost seconds. The model cost has no time dimension — the field is
// reused so modelled and measured entries share one cache record — so the
// encoding clamps rather than overflows: NaN and non-positive costs map to
// 0, and costs beyond the int64 nanosecond range (~292 model-years)
// saturate at the maximum Duration instead of wrapping negative.
func modelCostDuration(cost float64) time.Duration {
	sec := cost * float64(time.Second)
	if math.IsNaN(sec) || sec <= 0 {
		return 0
	}
	if sec >= float64(math.MaxInt64) {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(sec)
}

// SearchModelled is the communication-policy variant: instead of timing
// real runs it minimises a caller-supplied cost model, so the same keyed
// cache serves the paper's communication-policy autotuning where the
// "measurement" is the modelled exchange time. Singleflighted like
// Execute, so concurrent callers evaluate the model once per key.
func (t *Tuner) SearchModelled(key Key, cands []LaunchParams, cost func(LaunchParams) float64) LaunchParams {
	if len(cands) == 0 {
		panic("autotune: no candidates")
	}
	e := t.lookupOrSearch(key, func() Entry {
		best, bestCost := cands[0], cost(cands[0])
		for _, c := range cands[1:] {
			if v := cost(c); v < bestCost {
				best, bestCost = c, v
			}
		}
		e := Entry{
			Params:   best,
			Time:     modelCostDuration(bestCost),
			Tried:    len(cands),
			TunedAt:  time.Now(),
			Comments: "modelled",
		}
		t.observeSearch(key, e)
		return e
	})
	return e.Params
}

// DefaultCandidates enumerates the standard launch-parameter grid:
// power-of-two worker counts up to the machine width crossed with a few
// site-block granularities.
func DefaultCandidates() []LaunchParams {
	maxW := runtime.GOMAXPROCS(0)
	var out []LaunchParams
	for w := 1; w <= maxW; w *= 2 {
		for _, b := range []int{256, 1024, 4096, 16384} {
			out = append(out, LaunchParams{Workers: w, Block: b})
		}
	}
	return out
}

// cacheFile is the JSON serialization of the tune cache.
type cacheFile struct {
	Version string         `json:"version"`
	Entries map[string]rec `json:"entries"`
}

type rec struct {
	Key   Key   `json:"key"`
	Entry Entry `json:"entry"`
}

// Save writes the cache to path (QUDA's tunecache.tsv analogue).
func (t *Tuner) Save(path string) error {
	t.mu.Lock()
	f := cacheFile{Version: "femtoverse-1", Entries: make(map[string]rec, len(t.cache))}
	for k, e := range t.cache {
		f.Entries[k.String()] = rec{Key: k, Entry: e}
	}
	t.mu.Unlock()
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("autotune: marshal cache: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}

// Load merges a previously saved cache, preferring existing entries.
func (t *Tuner) Load(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("autotune: read cache: %w", err)
	}
	var f cacheFile
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("autotune: parse cache: %w", err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, r := range f.Entries {
		if _, exists := t.cache[r.Key]; !exists {
			t.cache[r.Key] = r.Entry
		}
	}
	return nil
}

// Report renders the cache sorted by key, one line per kernel, for the
// -tune diagnostic output of the benchmark CLI.
func (t *Tuner) Report() string {
	t.mu.Lock()
	keys := make([]Key, 0, len(t.cache))
	for k := range t.cache {
		keys = append(keys, k)
	}
	entries := make(map[Key]Entry, len(t.cache))
	for k, e := range t.cache {
		entries[k] = e
	}
	t.mu.Unlock()
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	out := ""
	for _, k := range keys {
		e := entries[k]
		out += fmt.Sprintf("%-60s workers=%-3d block=%-6d %10s %8.2f GF/s\n",
			k.String(), e.Params.Workers, e.Params.Block, e.Time, e.GFLOPS)
	}
	return out
}
