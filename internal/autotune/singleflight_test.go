package autotune

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"femtoverse/internal/obs"
)

// countingKernel is a Tunable shared across goroutines: every hook counts
// atomically, so the singleflight tests can assert exactly how many
// searches actually ran under -race.
type countingKernel struct {
	key      Key
	cands    []LaunchParams
	runs     atomic.Int64
	preTunes atomic.Int64
	panics   atomic.Int64
	failures atomic.Int64 // remaining Run calls that panic
}

func (c *countingKernel) Key() Key                   { return c.key }
func (c *countingKernel) Candidates() []LaunchParams { return c.cands }
func (c *countingKernel) Flops() int64               { return 1e6 }
func (c *countingKernel) PreTune()                   { c.preTunes.Add(1) }
func (c *countingKernel) PostTune()                  {}
func (c *countingKernel) Run(p LaunchParams) {
	if c.failures.Load() > 0 && c.failures.Add(-1) >= 0 {
		c.panics.Add(1)
		panic("countingKernel: injected search failure")
	}
	c.runs.Add(1)
	time.Sleep(50 * time.Microsecond)
}

func newCounting(name string) *countingKernel {
	return &countingKernel{
		key: Key{Kernel: name, Volume: "4x4x4x8", Aux: "prec=half"},
		cands: []LaunchParams{
			{Workers: 1, Block: 256},
			{Workers: 2, Block: 1024},
			{Workers: 4, Block: 4096},
		},
	}
}

// TestColdKeySingleflight is the regression test for the check-then-act
// race: N workers hitting the same cold key must perform exactly one
// brute-force search, with the rest blocking on its result.
func TestColdKeySingleflight(t *testing.T) {
	tn := New()
	tn.SetReps(1)
	k := newCounting("dslash")
	const goroutines = 16
	var wg sync.WaitGroup
	wg.Add(goroutines)
	params := make([]LaunchParams, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		go func() {
			defer wg.Done()
			params[g] = tn.Execute(k)
		}()
	}
	wg.Wait()
	if got := k.preTunes.Load(); got != 1 {
		t.Fatalf("%d searches ran, want exactly 1", got)
	}
	// One search (warm-up + reps x candidates) plus one post-search run
	// per Execute call.
	wantRuns := int64(1 + len(k.cands) + goroutines)
	if got := k.runs.Load(); got != wantRuns {
		t.Fatalf("kernel ran %d times, want %d", got, wantRuns)
	}
	for g := 1; g < goroutines; g++ {
		if params[g] != params[0] {
			t.Fatalf("caller %d got %+v, caller 0 got %+v", g, params[g], params[0])
		}
	}
	if tn.Len() != 1 {
		t.Fatalf("cache has %d entries", tn.Len())
	}
}

// TestSearchModelledSingleflight pins the same property for the modelled
// path: concurrent callers on a cold key evaluate the cost model once.
func TestSearchModelledSingleflight(t *testing.T) {
	tn := New()
	cands := []LaunchParams{{Workers: 1}, {Workers: 2}}
	var evals atomic.Int64
	cost := func(p LaunchParams) float64 {
		evals.Add(1)
		time.Sleep(100 * time.Microsecond)
		return float64(p.Workers)
	}
	key := Key{Kernel: "comms", Volume: "8x8x8x16", Aux: "nodes=4"}
	const goroutines = 12
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			if got := tn.SearchModelled(key, cands, cost); got.Workers != 1 {
				t.Errorf("picked %+v", got)
			}
		}()
	}
	wg.Wait()
	if got := evals.Load(); got != int64(len(cands)) {
		t.Fatalf("cost model evaluated %d times, want %d", got, len(cands))
	}
}

// TestSingleflightSurvivesPanickingSearch checks a panicking searcher does
// not deadlock waiters: they wake, one retries the search, and the cache
// ends up populated.
func TestSingleflightSurvivesPanickingSearch(t *testing.T) {
	tn := New()
	tn.SetReps(1)
	k := newCounting("dslash")
	k.failures.Store(1) // exactly the first Run panics
	const goroutines = 8
	var wg sync.WaitGroup
	wg.Add(goroutines)
	var recovered atomic.Int64
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			defer func() {
				if recover() != nil {
					recovered.Add(1)
				}
			}()
			tn.Execute(k)
		}()
	}
	wg.Wait()
	if got := recovered.Load(); got != 1 {
		t.Fatalf("%d callers saw the panic, want exactly 1", got)
	}
	if tn.Len() != 1 {
		t.Fatalf("cache has %d entries after retry", tn.Len())
	}
	// The failed attempt plus the successful retry: two searches total.
	if got := k.preTunes.Load(); got != 2 {
		t.Fatalf("%d searches ran, want 2 (failed + retry)", got)
	}
}

func TestSearchRunsAccounting(t *testing.T) {
	tn := New()
	tn.SetReps(2)
	k := newCounting("dslash")
	e := tn.Tune(k)
	if e.Tried != len(k.cands) {
		t.Fatalf("Tried = %d, want %d", e.Tried, len(k.cands))
	}
	// Warm-up + reps x candidates.
	want := 1 + 2*len(k.cands)
	if e.Runs != want {
		t.Fatalf("Runs = %d, want %d", e.Runs, want)
	}
	if got := k.runs.Load(); got != int64(want) {
		t.Fatalf("kernel ran %d times, want %d", got, want)
	}
}

func TestModelCostDurationClamps(t *testing.T) {
	cases := []struct {
		cost float64
		want time.Duration
	}{
		{0, 0},
		{-3, 0},
		{math.NaN(), 0},
		{1.5, 1500 * time.Millisecond},
		{1e40, time.Duration(math.MaxInt64)},
		{math.Inf(1), time.Duration(math.MaxInt64)},
	}
	for _, c := range cases {
		if got := modelCostDuration(c.cost); got != c.want {
			t.Fatalf("modelCostDuration(%v) = %v, want %v", c.cost, got, c.want)
		}
	}
}

func TestSearchModelledLargeCostDoesNotOverflow(t *testing.T) {
	tn := New()
	key := Key{Kernel: "comms", Volume: "v", Aux: "huge"}
	tn.SearchModelled(key, []LaunchParams{{Workers: 1}}, func(LaunchParams) float64 { return 1e30 })
	e, ok := tn.Lookup(key)
	if !ok {
		t.Fatal("entry not cached")
	}
	if e.Time < 0 {
		t.Fatalf("model cost overflowed to negative duration %v", e.Time)
	}
}

func TestRepsEnabledRaceSafe(t *testing.T) {
	tn := New()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			tn.SetReps(i % 3)
			tn.SetEnabled(i%2 == 0)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			_ = tn.Reps()
			_ = tn.Enabled()
		}
	}()
	wg.Wait()
}

// TestObserverSeesSearches checks the obs hookup: a completed search lands
// counters and a per-kernel GFLOPS gauge in the registry and an instant in
// the trace.
func TestObserverSeesSearches(t *testing.T) {
	tn := New()
	tn.SetReps(1)
	reg := obs.NewRegistry()
	tr := obs.NewTracer(nil)
	tn.SetObserver(reg, obs.NewScope(tr, 0, 0))
	k := newCounting("dslash")
	e := tn.Tune(k)
	if got := reg.Counter("autotune.searches").Value(); got != 1 {
		t.Fatalf("searches counter = %d", got)
	}
	if got := reg.Counter("autotune.kernel_runs").Value(); got != int64(e.Runs) {
		t.Fatalf("kernel_runs counter = %d, want %d", got, e.Runs)
	}
	if e.GFLOPS > 0 && reg.Gauge("autotune.gflops.dslash").Value() != e.GFLOPS {
		t.Fatal("GFLOPS gauge not recorded")
	}
	// Cache hit: no new search observed.
	tn.Tune(k)
	if got := reg.Counter("autotune.searches").Value(); got != 1 {
		t.Fatalf("cache hit incremented searches to %d", got)
	}
}
