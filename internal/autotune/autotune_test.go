package autotune

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// fakeKernel is a Tunable whose run time depends deterministically on the
// launch parameters, with a known optimum.
type fakeKernel struct {
	key      Key
	cands    []LaunchParams
	best     LaunchParams
	runs     int
	preTune  int
	postTune int
	lastUsed LaunchParams
}

func (f *fakeKernel) Key() Key                   { return f.key }
func (f *fakeKernel) Candidates() []LaunchParams { return f.cands }
func (f *fakeKernel) Flops() int64               { return 1e6 }
func (f *fakeKernel) PreTune()                   { f.preTune++ }
func (f *fakeKernel) PostTune()                  { f.postTune++ }
func (f *fakeKernel) Run(p LaunchParams) {
	f.runs++
	f.lastUsed = p
	if p != f.best {
		time.Sleep(200 * time.Microsecond)
	}
}

func newFake(name string) *fakeKernel {
	cands := []LaunchParams{
		{Workers: 1, Block: 256},
		{Workers: 2, Block: 1024},
		{Workers: 4, Block: 4096},
	}
	return &fakeKernel{
		key:   Key{Kernel: name, Volume: "4x4x4x8", Aux: "prec=half"},
		cands: cands,
		best:  cands[1],
	}
}

func TestTunerFindsOptimum(t *testing.T) {
	tn := New()
	tn.SetReps(1)
	k := newFake("dslash")
	got := tn.Execute(k)
	if got != k.best {
		t.Fatalf("picked %+v, optimum %+v", got, k.best)
	}
	if k.preTune != 1 || k.postTune != 1 {
		t.Fatalf("PreTune/PostTune called %d/%d times", k.preTune, k.postTune)
	}
}

func TestTunerCachesAfterFirstEncounter(t *testing.T) {
	tn := New()
	tn.SetReps(1)
	k := newFake("dslash")
	tn.Execute(k)
	runsAfterSearch := k.runs
	tn.Execute(k)
	// Second Execute must add exactly one run (no re-search).
	if k.runs != runsAfterSearch+1 {
		t.Fatalf("re-tuned: %d runs after search, %d now", runsAfterSearch, k.runs)
	}
	if k.preTune != 1 {
		t.Fatal("PreTune called again on cache hit")
	}
	if tn.Len() != 1 {
		t.Fatalf("cache has %d entries", tn.Len())
	}
}

func TestTunerDisabledUsesFirstCandidate(t *testing.T) {
	tn := New()
	tn.SetEnabled(false)
	k := newFake("dslash")
	got := tn.Execute(k)
	if got != k.cands[0] {
		t.Fatalf("disabled tuner used %+v", got)
	}
	if k.runs != 1 {
		t.Fatalf("disabled tuner ran %d times", k.runs)
	}
}

func TestDistinctKeysTunedSeparately(t *testing.T) {
	tn := New()
	tn.SetReps(1)
	a := newFake("dslash")
	b := newFake("axpy") // different kernel name -> different key
	tn.Execute(a)
	tn.Execute(b)
	if tn.Len() != 2 {
		t.Fatalf("cache has %d entries, want 2", tn.Len())
	}
	if _, ok := tn.Lookup(a.key); !ok {
		t.Fatal("a not cached")
	}
}

func TestEntryMetadata(t *testing.T) {
	tn := New()
	tn.SetReps(1)
	k := newFake("dslash")
	e := tn.Tune(k)
	if e.Tried != len(k.cands) {
		t.Fatalf("Tried = %d", e.Tried)
	}
	if e.GFLOPS <= 0 {
		t.Fatalf("GFLOPS = %v", e.GFLOPS)
	}
	if e.TunedAt.IsZero() {
		t.Fatal("TunedAt not set")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tunecache.json")
	tn := New()
	tn.SetReps(1)
	k := newFake("dslash")
	tn.Tune(k)
	if err := tn.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
	tn2 := New()
	if err := tn2.Load(path); err != nil {
		t.Fatal(err)
	}
	e, ok := tn2.Lookup(k.key)
	if !ok {
		t.Fatal("entry lost in round trip")
	}
	if e.Params != k.best {
		t.Fatalf("params lost: %+v", e.Params)
	}
	// Loading again must not clobber existing entries.
	if err := tn2.Load(path); err != nil {
		t.Fatal(err)
	}
	if tn2.Len() != 1 {
		t.Fatalf("duplicate entries after re-load: %d", tn2.Len())
	}
}

func TestLoadMissingFileErrors(t *testing.T) {
	tn := New()
	if err := tn.Load(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestSearchModelledPicksCheapestPolicy(t *testing.T) {
	tn := New()
	cands := []LaunchParams{{Workers: 0}, {Workers: 1}, {Workers: 2}}
	cost := func(p LaunchParams) float64 {
		// Policy 1 is cheapest.
		return []float64{3.0, 1.0, 2.0}[p.Workers]
	}
	key := Key{Kernel: "comms", Volume: "48x48x48x64", Aux: "nodes=16"}
	got := tn.SearchModelled(key, cands, cost)
	if got.Workers != 1 {
		t.Fatalf("picked policy %d", got.Workers)
	}
	// Cached: a different cost function must not change the answer.
	got2 := tn.SearchModelled(key, cands, func(LaunchParams) float64 { return 0 })
	if got2 != got {
		t.Fatal("modelled search not cached")
	}
}

func TestDefaultCandidatesCoverWorkerRange(t *testing.T) {
	c := DefaultCandidates()
	if len(c) < 4 {
		t.Fatalf("only %d candidates", len(c))
	}
	seen1 := false
	for _, p := range c {
		if p.Workers == 1 {
			seen1 = true
		}
		if p.Block <= 0 || p.Workers <= 0 {
			t.Fatalf("bad candidate %+v", p)
		}
	}
	if !seen1 {
		t.Fatal("single-worker candidate missing")
	}
}

func TestReportListsEntries(t *testing.T) {
	tn := New()
	tn.SetReps(1)
	tn.Tune(newFake("dslash"))
	tn.Tune(newFake("axpy"))
	r := tn.Report()
	if r == "" {
		t.Fatal("empty report")
	}
}

func TestTunerConcurrentExecuteIsSafe(t *testing.T) {
	tn := New()
	tn.SetReps(1)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			k := newFake("dslash") // same key from all goroutines
			tn.Execute(k)
		}()
	}
	wg.Wait()
	if tn.Len() != 1 {
		t.Fatalf("cache has %d entries", tn.Len())
	}
}
