package runtime

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"femtoverse/internal/fault"
)

// chaosTasks builds n quick solve-class tasks returning their IDs.
func chaosTasks(n int) []Task {
	var tasks []Task
	for i := 0; i < n; i++ {
		i := i
		tasks = append(tasks, Task{
			ID: i, Name: fmt.Sprintf("t%d", i), Class: Solve,
			Run: func(ctx context.Context) (interface{}, error) {
				select {
				case <-time.After(time.Millisecond):
					return i, nil
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			},
		})
	}
	return tasks
}

// TestChaosReproducibleAcrossWorkerCounts is the acceptance test for the
// chaos engine's identity keying: the same seed and plan must materialize
// the same injected-fault sequence per task - and the same final
// success/failure outcome - at 1, 4 and 16 workers, even though
// scheduling, casualties and retries interleave completely differently.
func TestChaosReproducibleAcrossWorkerCounts(t *testing.T) {
	plan := fault.Plan{
		Seed: 20260806, Transient: 0.12, Panic: 0.06, Hang: 0.06,
		Corrupt: 0.06, DomainLoss: 0.06, MaxInjections: 3,
	}
	run := func(workers int) ([]Result, Report) {
		res, rep, err := Run(context.Background(), Config{
			SolveWorkers: workers, ContractWorkers: 1,
			MaxRetries: 10, RetryBackoff: 100 * time.Microsecond,
			MaxBackoff: time.Millisecond, Watchdog: 20 * time.Millisecond,
			Fault: plan,
		}, chaosTasks(40))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res, rep
	}
	ref, refRep := run(1)
	for _, workers := range []int{4, 16} {
		res, rep := run(workers)
		if rep.Faults != refRep.Faults {
			t.Fatalf("workers=%d faults %v, workers=1 %v", workers, rep.Faults, refRep.Faults)
		}
		if rep.Succeeded != refRep.Succeeded || rep.Failed != refRep.Failed {
			t.Fatalf("workers=%d outcome %d/%d, workers=1 %d/%d",
				workers, rep.Succeeded, rep.Failed, refRep.Succeeded, refRep.Failed)
		}
		for i := range res {
			if res[i].Value != ref[i].Value {
				t.Fatalf("workers=%d task %d value %v, workers=1 %v",
					workers, i, res[i].Value, ref[i].Value)
			}
			a, b := res[i].Metrics.Injected, ref[i].Metrics.Injected
			if len(a) != len(b) {
				t.Fatalf("workers=%d task %d injected %v, workers=1 %v", workers, i, a, b)
			}
			for k := range a {
				if a[k] != b[k] {
					t.Fatalf("workers=%d task %d injected %v, workers=1 %v", workers, i, a, b)
				}
			}
		}
	}
	if refRep.Faults.Total() == 0 {
		t.Fatal("chaos plan injected nothing; the reproducibility test is vacuous")
	}
}

// TestBackoffScheduleIsPinned pins the capped, deterministically
// jittered retry schedule: exact values derived from the fault seed and
// task identity, doubled per failure, never past 1.5x MaxBackoff.
func TestBackoffScheduleIsPinned(t *testing.T) {
	cfg := Config{
		SolveWorkers: 1, ContractWorkers: 1,
		RetryBackoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond,
		Fault: fault.Plan{Seed: 9},
	}
	p, err := New(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { p.Close(); p.Wait() }() //femtolint:ignore errdrop test teardown of an empty pool

	base := []time.Duration{
		time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond,
		8 * time.Millisecond, 8 * time.Millisecond, 8 * time.Millisecond,
	}
	for taskID := 0; taskID < 5; taskID++ {
		for n := 1; n <= len(base); n++ {
			got := p.retryDelay(taskID, n)
			want := time.Duration(float64(base[n-1]) *
				(0.5 + fault.Uniform(cfg.Fault.Seed^backoffSalt, int64(taskID), int64(n))))
			if got != want {
				t.Fatalf("task %d failure %d: delay %v, pinned %v", taskID, n, got, want)
			}
			if got > time.Duration(1.5*float64(cfg.MaxBackoff)) {
				t.Fatalf("task %d failure %d: delay %v exceeds jittered cap", taskID, n, got)
			}
			if got < cfg.RetryBackoff/2 {
				t.Fatalf("task %d failure %d: delay %v below half the base", taskID, n, got)
			}
		}
		// The schedule is a pure function: re-evaluation is identical.
		if p.retryDelay(taskID, 3) != p.retryDelay(taskID, 3) {
			t.Fatal("retry delay is not deterministic")
		}
	}
	// Unbounded doubling is gone: even failure 40 stays at the cap.
	if d := p.retryDelay(0, 40); d > time.Duration(1.5*float64(cfg.MaxBackoff)) {
		t.Fatalf("failure 40 delay %v escaped the cap", d)
	}
}

// TestPanicIsolation: a panicking task must fail alone; the worker and
// the pool survive to run everything else.
func TestPanicIsolation(t *testing.T) {
	tasks := []Task{
		{ID: 0, Class: Solve, Retries: -1, Run: func(context.Context) (interface{}, error) {
			panic("wild pointer")
		}},
	}
	for i := 1; i < 8; i++ {
		i := i
		tasks = append(tasks, Task{ID: i, Class: Solve, Run: func(context.Context) (interface{}, error) {
			return i, nil
		}})
	}
	res, rep, err := Run(context.Background(), Config{SolveWorkers: 2, ContractWorkers: 1}, tasks)
	if err == nil {
		t.Fatal("panicked task not reported")
	}
	if !errors.Is(res[0].Err, ErrPanic) {
		t.Fatalf("task 0 error %v, want ErrPanic", res[0].Err)
	}
	if rep.RecoveredPanics != 1 {
		t.Fatalf("recovered panics %d, want 1", rep.RecoveredPanics)
	}
	for _, r := range res[1:] {
		if r.Err != nil {
			t.Fatalf("task %d caught the panic: %v", r.Task.ID, r.Err)
		}
	}
}

// TestPanicRetries: an injected panic is a normal failure for retry
// purposes - the task recovers on a clean attempt.
func TestPanicRetries(t *testing.T) {
	attempts := 0
	tasks := []Task{{ID: 0, Class: Solve, Run: func(context.Context) (interface{}, error) {
		attempts++
		if attempts == 1 {
			panic("first attempt dies")
		}
		return "ok", nil
	}}}
	res, rep, err := Run(context.Background(), Config{
		SolveWorkers: 1, ContractWorkers: 1, MaxRetries: 2,
		RetryBackoff: 100 * time.Microsecond,
	}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Value != "ok" || rep.RecoveredPanics != 1 || res[0].Metrics.Attempts != 2 {
		t.Fatalf("recovery failed: %+v, panics %d", res[0], rep.RecoveredPanics)
	}
}

// TestWatchdogReclaimsHungSlot: a task that ignores its context entirely
// is abandoned at the heartbeat deadline and its slot reused; the pool
// does not wait for the zombie.
func TestWatchdogReclaimsHungSlot(t *testing.T) {
	hang := Task{ID: 0, Class: Solve, Retries: -1,
		Run: func(context.Context) (interface{}, error) {
			time.Sleep(300 * time.Millisecond) // deaf to cancellation
			return nil, nil
		}}
	follow := Task{ID: 1, Class: Solve, Run: func(context.Context) (interface{}, error) {
		return "alive", nil
	}}
	start := time.Now()
	res, rep, err := Run(context.Background(), Config{
		SolveWorkers: 1, ContractWorkers: 1, Watchdog: 15 * time.Millisecond,
	}, []Task{hang, follow})
	if err == nil {
		t.Fatal("hung task not reported")
	}
	if !errors.Is(res[0].Err, ErrWatchdog) {
		t.Fatalf("task 0 error %v, want ErrWatchdog", res[0].Err)
	}
	if rep.WatchdogKills != 1 {
		t.Fatalf("watchdog kills %d, want 1", rep.WatchdogKills)
	}
	if res[1].Err != nil || res[1].Value != "alive" {
		t.Fatalf("follow-up task did not run on the reclaimed slot: %+v", res[1])
	}
	if elapsed := time.Since(start); elapsed > 250*time.Millisecond {
		t.Fatalf("pool waited %v for the zombie", elapsed)
	}
}

// TestInjectedHangIsKilledByWatchdog: the Hang fault stalls without
// returning; only the watchdog reclaims it, and the retry succeeds.
func TestInjectedHangIsKilledByWatchdog(t *testing.T) {
	// Find a seed whose first draw for task 0 is a hang.
	seed := int64(0)
	for {
		in, err := fault.NewInjector(fault.Plan{Seed: seed, Hang: 0.3, MaxInjections: 1})
		if err != nil {
			t.Fatal(err)
		}
		if in.Draw(0, 1) == fault.Hang {
			break
		}
		seed++
	}
	res, rep, err := Run(context.Background(), Config{
		SolveWorkers: 1, ContractWorkers: 1,
		MaxRetries: 3, RetryBackoff: 100 * time.Microsecond,
		Watchdog: 10 * time.Millisecond,
		Fault:    fault.Plan{Seed: seed, Hang: 0.3, MaxInjections: 1},
	}, chaosTasks(1))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faults.Hang < 1 || rep.WatchdogKills < 1 {
		t.Fatalf("hang not injected+killed: %v, %d watchdog kills", rep.Faults, rep.WatchdogKills)
	}
	if res[0].Value != 0 {
		t.Fatalf("task did not recover after the hang: %+v", res[0])
	}
}

// TestQuarantineBenchesWorkerAndReroutes: three consecutive failures on
// one worker bench it; the failing task is requeued onto the survivor,
// and the last worker of a class can never be benched.
func TestQuarantineBenchesWorkerAndReroutes(t *testing.T) {
	tasks := []Task{{ID: 0, Class: Solve, Retries: 10,
		Run: func(context.Context) (interface{}, error) {
			return nil, errors.New("always fails")
		}}}
	res, rep, err := Run(context.Background(), Config{
		SolveWorkers: 2, ContractWorkers: 1,
		QuarantineAfter: 3, RetryBackoff: 100 * time.Microsecond,
	}, tasks)
	if err == nil {
		t.Fatal("hopeless task reported success")
	}
	if len(rep.QuarantinedSolve) != 1 {
		t.Fatalf("quarantined solve workers %v, want exactly one", rep.QuarantinedSolve)
	}
	if rep.Requeues != 1 {
		t.Fatalf("requeues %d, want 1 (benched mid-retry, re-routed once)", rep.Requeues)
	}
	if res[0].Metrics.Attempts != 11 {
		t.Fatalf("attempts %d, want initial + 10 retries", res[0].Metrics.Attempts)
	}
}

// TestQuarantineSparesHealthyWorkers: after the bad streak ends, healthy
// tasks keep the remaining workers and complete; a benched worker stays
// benched for the rest of the pool's life.
func TestQuarantineSparesHealthyWorkers(t *testing.T) {
	var tasks []Task
	// Eight hopeless tasks to poison workers, then twenty good ones.
	for i := 0; i < 8; i++ {
		tasks = append(tasks, Task{ID: i, Class: Solve, Retries: -1,
			Run: func(context.Context) (interface{}, error) {
				return nil, errors.New("bad streak")
			}})
	}
	for i := 8; i < 28; i++ {
		i := i
		tasks = append(tasks, Task{ID: i, Class: Solve,
			Run: func(context.Context) (interface{}, error) { return i, nil }})
	}
	res, rep, err := Run(context.Background(), Config{
		SolveWorkers: 3, ContractWorkers: 1,
		QuarantineAfter: 2, RetryBackoff: 100 * time.Microsecond,
	}, tasks)
	if err == nil {
		t.Fatal("bad streak reported success")
	}
	if len(rep.QuarantinedSolve) == 0 || len(rep.QuarantinedSolve) > 2 {
		t.Fatalf("quarantined %v; want 1-2 of 3 (floor keeps the class alive)", rep.QuarantinedSolve)
	}
	for _, r := range res[8:] {
		if r.Err != nil {
			t.Fatalf("healthy task %d failed after quarantine: %v", r.Task.ID, r.Err)
		}
	}
}

// TestDomainLossKillsCoDomainTasks: a DomainLoss fault takes down the
// in-flight tasks sharing the failure domain (the MPI_Abort lump kill);
// casualties retry for free and everything completes.
func TestDomainLossKillsCoDomainTasks(t *testing.T) {
	// Find a seed where task 0 draws DomainLoss on its first attempt and
	// the longer-running victims draw nothing.
	plan := fault.Plan{DomainLoss: 0.3, MaxInjections: 1}
	for seed := int64(0); ; seed++ {
		plan.Seed = seed
		in, err := fault.NewInjector(plan)
		if err != nil {
			t.Fatal(err)
		}
		clean := in.Draw(0, 1) == fault.DomainLoss
		for id := 1; id < 4 && clean; id++ {
			clean = in.Draw(id, 1) == fault.None && in.Draw(id, 2) == fault.None
		}
		if clean {
			break
		}
	}
	killer := Task{ID: 0, Class: Solve, Run: func(ctx context.Context) (interface{}, error) {
		select {
		case <-time.After(5 * time.Millisecond):
			return 0, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}}
	var tasks []Task
	tasks = append(tasks, killer)
	for i := 1; i < 4; i++ {
		i := i
		tasks = append(tasks, Task{ID: i, Class: Solve,
			Run: func(ctx context.Context) (interface{}, error) {
				select {
				case <-time.After(60 * time.Millisecond):
					return i, nil
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}})
	}
	res, rep, err := Run(context.Background(), Config{
		SolveWorkers: 4, ContractWorkers: 1, DomainSize: 4,
		MaxRetries: 3, RetryBackoff: 100 * time.Microsecond,
		Fault: plan,
	}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faults.DomainLoss != 1 {
		t.Fatalf("domain losses %d, want 1", rep.Faults.DomainLoss)
	}
	if rep.DomainCasualties == 0 {
		t.Fatal("no casualties from a domain loss with three co-domain tasks in flight")
	}
	for i, r := range res {
		if r.Err != nil || r.Value != i {
			t.Fatalf("task %d did not recover: %+v", i, r)
		}
	}
}

// TestCorruptResultsAreDiscarded: a Corrupt fault must never leak a
// value; the attempt fails, is retried, and the clean value lands.
func TestCorruptResultsAreDiscarded(t *testing.T) {
	plan := fault.Plan{Seed: 5, Corrupt: 0.5, MaxInjections: 2}
	res, rep, err := Run(context.Background(), Config{
		SolveWorkers: 4, ContractWorkers: 1,
		MaxRetries: 5, RetryBackoff: 100 * time.Microsecond,
		Fault: plan,
	}, chaosTasks(20))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faults.Corrupt == 0 {
		t.Fatal("50% corruption rate injected nothing over 20 tasks")
	}
	for i, r := range res {
		if r.Value != i {
			t.Fatalf("task %d final value %v; a corrupted result leaked", i, r.Value)
		}
	}
}
