package runtime

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Budget is a finite batch allocation: the wall-clock window the pool is
// allowed to occupy, and the grace it grants in-flight work once the
// window closes. The paper's job managers (METAQ, mpi_jm) live and die by
// this clock - tasks are sized against remaining wall time so the
// allocation ends with no half-finished, discarded work - and the pool
// enforces the same rule: it refuses to admit any task whose estimated
// duration exceeds the remaining budget, drains gracefully at expiry, and
// hard-cancels whatever is still running after DrainGrace.
type Budget struct {
	// WallClock is the allocation length, measured from pool creation.
	// 0 disables budget enforcement (the drain path stays available for
	// signals and injected preemptions).
	WallClock time.Duration
	// DrainGrace bounds the drain phase: once the pool starts draining -
	// budget expiry, Pool.Drain, a received preemption, or an injected
	// fault.Preempt - in-flight attempts get this long to finish before
	// their contexts are cancelled and they are recorded as stranded.
	// 0 means one second.
	DrainGrace time.Duration
}

// Enabled reports whether the budget bounds the allocation.
func (b Budget) Enabled() bool { return b.WallClock > 0 }

// Validate checks the budget.
func (b Budget) Validate() error {
	if b.WallClock < 0 {
		return fmt.Errorf("runtime: negative Budget.WallClock %v", b.WallClock)
	}
	if b.DrainGrace < 0 {
		return fmt.Errorf("runtime: negative Budget.DrainGrace %v", b.DrainGrace)
	}
	return nil
}

// ErrRefused marks a task the admission controller never started: its
// estimated duration exceeded the remaining allocation (or the pool was
// already draining when it was considered). Refused work is not failed
// work - it is work correctly left for the next allocation, and Wait does
// not surface it as an error.
var ErrRefused = errors.New("runtime: task refused by allocation budget")

// ErrStranded marks an in-flight attempt killed by the hard-cancel phase
// of a drain: the allocation ended before it could finish, and whatever
// partial work it had done is discarded. A journaled campaign re-runs
// stranded tasks on resume.
var ErrStranded = errors.New("runtime: task stranded by allocation drain")

// drainPhase orders the pool's shutdown states.
type drainPhase int

const (
	// drainNone: normal operation, admission control only.
	drainNone drainPhase = iota
	// drainSoft: no new starts; in-flight attempts may finish (and
	// retry); queued and blocked work is refused.
	drainSoft
	// drainHard: in-flight attempt contexts are cancelled; failed
	// attempts are stranded, not retried.
	drainHard
)

// estimateAlpha is the EWMA weight of the newest observation when
// refining per-class cost calibration online.
const estimateAlpha = 0.3

// estimator refines per-class task-duration estimates online. Estimates
// are seeded from the nominal planning costs (Task.Cost / DefaultCost,
// in seconds) and corrected by an EWMA of the observed-over-nominal
// ratio of completed attempts, per worker class - so a campaign whose
// nominal costs are off by a constant factor converges to truthful
// admission decisions after the first few completions.
type estimator struct {
	calib  [numClasses]float64 // EWMA of observed/nominal duration ratio
	n      [numClasses]int     // observations per class
	errSum float64             // accumulated relative estimate error
	errN   int
}

// predict returns the calibrated duration estimate for a nominal cost.
func (e *estimator) predict(cls Class, nominal float64) time.Duration {
	c := 1.0
	if e.n[cls] > 0 {
		c = e.calib[cls]
	}
	return time.Duration(nominal * c * float64(time.Second))
}

// observe folds one successful attempt's measured duration into the
// class calibration and the estimate-error accounting.
func (e *estimator) observe(cls Class, nominal float64, predicted, observed time.Duration) {
	if nominal <= 0 || observed <= 0 {
		return
	}
	ratio := observed.Seconds() / nominal
	if e.n[cls] == 0 {
		e.calib[cls] = ratio
	} else {
		e.calib[cls] = (1-estimateAlpha)*e.calib[cls] + estimateAlpha*ratio
	}
	e.n[cls]++
	if predicted > 0 {
		e.errSum += math.Abs(observed.Seconds()-predicted.Seconds()) / predicted.Seconds()
		e.errN++
	}
}

// meanErr returns the mean relative error of the estimates used, over
// every observed attempt.
func (e *estimator) meanErr() float64 {
	if e.errN == 0 {
		return 0
	}
	return e.errSum / float64(e.errN)
}

// nominalCost returns a job's planning cost in seconds.
func (p *Pool) nominalCost(j *job) float64 {
	c := j.t.Cost
	if c <= 0 {
		c = p.cfg.DefaultCost
	}
	return c
}

// remainingLocked returns the wall-clock left in the allocation. A
// draining pool has no remaining time regardless of the clock; without a
// budget the allocation is unbounded.
func (p *Pool) remainingLocked(now time.Time) time.Duration {
	if p.drainLevel > drainNone {
		return 0
	}
	if !p.cfg.Budget.Enabled() {
		return math.MaxInt64
	}
	rem := p.cfg.Budget.WallClock - now.Sub(p.t0)
	if rem < 0 {
		rem = 0
	}
	return rem
}

// admitLocked is the admission controller: it walks the class's ready
// queue and refuses every task whose calibrated estimate exceeds the
// remaining allocation. Remaining time only shrinks, so a refusal is
// final - the task could never have fit later, and reporting it refused
// now (rather than letting it sit in the queue until expiry) is what
// keeps refusal a liveness property, not a silent strand.
func (p *Pool) admitLocked(cls Class, now time.Time) {
	rem := p.remainingLocked(now)
	q := p.ready[cls]
	kept := q[:0]
	var refused []*job
	for _, j := range q {
		if p.est.predict(cls, p.nominalCost(j)) > rem {
			refused = append(refused, j)
		} else {
			kept = append(kept, j)
		}
	}
	p.ready[cls] = kept
	for _, j := range refused {
		est := p.est.predict(cls, p.nominalCost(j))
		j.state = jobBlocked
		p.finishLocked(j, nil, fmt.Errorf("%w: estimated %v exceeds remaining %v",
			ErrRefused, est.Round(time.Millisecond), rem.Round(time.Millisecond)), false)
	}
}

// Drain begins a graceful shutdown of the pool: queued and blocked tasks
// are refused, in-flight attempts keep running, and after the budget's
// DrainGrace whatever is still running is hard-cancelled and recorded as
// stranded. Drain is idempotent; the first reason wins. It is the single
// landing path shared by budget expiry, SIGTERM handling, an external
// preemption notice, and the injected fault.Preempt.
func (p *Pool) Drain(reason string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.drainLocked(reason)
}

func (p *Pool) drainLocked(reason string) {
	if p.drainLevel >= drainSoft {
		return
	}
	p.drainLevel = drainSoft
	p.drainReason = reason
	p.drainedAt = time.Since(p.t0)
	if p.budgetTimer != nil {
		// The drain is already under way; a budget expiry landing after
		// this point must not fire a second trigger into the pool.
		p.budgetTimer.Stop()
	}
	p.trace.Instant("sched", "drain-soft", map[string]interface{}{"reason": reason})
	p.refuseQueuedLocked(reason)
	p.graceTimer = time.AfterFunc(p.cfg.Budget.DrainGrace, p.hardCancel)
	p.room.Broadcast()
	p.idle.Broadcast()
}

// refuseQueuedLocked refuses every job that has not started running:
// the ready queues, the dependency-blocked jobs, and the waiters on
// never-submitted IDs. Running jobs are untouched - the drain's grace
// period is theirs.
func (p *Pool) refuseQueuedLocked(reason string) {
	for c := Class(0); c < numClasses; c++ {
		q := p.ready[c]
		p.ready[c] = nil
		for _, j := range q {
			j.state = jobBlocked
			p.finishLocked(j, nil, fmt.Errorf("%w (draining: %s)", ErrRefused, reason), false)
		}
	}
	for _, j := range p.order {
		if j.state == jobBlocked {
			p.finishLocked(j, nil, fmt.Errorf("%w (draining: %s)", ErrRefused, reason), false)
		}
	}
	p.waiters = map[int][]*job{}
}

// hardCancel ends the grace period: every in-flight attempt's context is
// cancelled, and execute records the casualties as stranded rather than
// retrying them.
func (p *Pool) hardCancel() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.drainLevel >= drainHard {
		return
	}
	if p.drainLevel < drainSoft {
		// Hard cancel without a preceding soft drain (second preemption
		// notice): refuse the queues first so nothing new starts.
		p.drainLocked("hard cancel")
	}
	p.drainLevel = drainHard
	if p.graceTimer != nil {
		// Escalation has happened; the pending grace expiry (or the
		// redundant timer armed by the drainLocked call above) must not
		// re-fire hardCancel into a pool that may outlive this drain.
		p.graceTimer.Stop()
	}
	p.trace.Instant("sched", "drain-hard", nil)
	close(p.hardCh)
	for j := range p.runningSet {
		if j.attemptCancel != nil {
			j.attemptCancel()
		}
	}
}

// stopTimersLocked releases the budget and grace timers once the pool's
// outcome is decided.
func (p *Pool) stopTimersLocked() {
	if p.budgetTimer != nil {
		p.budgetTimer.Stop()
	}
	if p.graceTimer != nil {
		p.graceTimer.Stop()
	}
}
