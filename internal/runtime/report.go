package runtime

import (
	"fmt"
	"strings"
	"time"

	"femtoverse/internal/fault"
)

// TaskMetrics is the per-task lifecycle record the job manager keeps for
// every task it executed: the live analogue of cluster.TaskStat.
type TaskMetrics struct {
	ID    int
	Name  string
	Class Class
	Slots int
	// Attempts counts executions: 1 means the task succeeded (or failed
	// terminally) on its first run, larger values mean retries happened.
	Attempts int
	// QueueWait is the time from submission to the first execution start.
	QueueWait time.Duration
	// Run is the total execution time over all attempts.
	Run time.Duration
	// Workers lists the worker slots of the task's class that ran the
	// task (len == Slots). Empty for tasks that never started.
	Workers []int
	// Backfilled marks a task started out of order through a hole left by
	// a wider task waiting at the head of the queue.
	Backfilled bool
	// Injected lists the faults that materialized on this task, in
	// order. Because draws are keyed by task identity, this sequence is
	// identical at any worker count for a given fault plan.
	Injected []fault.Kind
}

// Report summarises a pool run with the same vocabulary as the
// discrete-event simulator's cluster.Report, so the real executor and the
// model can be cross-checked against each other.
type Report struct {
	SolveWorkers    int
	ContractWorkers int
	// Wall is the busy window: first task start to last task end
	// (the simulator's makespan minus startup).
	Wall time.Duration
	// Tasks counts submitted tasks;
	// Succeeded + Failed + Refused + Stranded == Tasks.
	Tasks     int
	Succeeded int
	Failed    int
	// Admitted counts tasks that started at least one attempt. Refused
	// counts tasks the admission controller never started because their
	// estimate exceeded the remaining allocation (or the pool was
	// draining); refused work is deliberately left for the next
	// allocation and is never counted as failed. Stranded counts tasks
	// whose in-flight attempt was killed by the hard-cancel phase of a
	// drain - the work the allocation's end actually wasted.
	Admitted int
	Refused  int
	Stranded int
	// Drained reports whether the pool entered the drain path, with
	// DrainReason ("budget expired", a signal name, "preempt fault", ...)
	// and DrainedAt the allocation-elapsed instant it began.
	Drained     bool
	DrainReason string
	DrainedAt   time.Duration
	// BudgetWall / BudgetUsed / BudgetUtil describe wall-clock budget
	// consumption: the configured allocation, the span from allocation
	// start to the last task end, and their ratio (may exceed 1 when the
	// drain grace runs past the wall). Zero without a budget.
	BudgetWall time.Duration
	BudgetUsed time.Duration
	BudgetUtil float64
	// EstimateErr is the mean relative error |observed-predicted|/predicted
	// of the duration estimates over completed attempts: how honest the
	// admission controller's cost model was this run.
	EstimateErr float64
	// FailedAttempts counts failed executions (injected failures,
	// timeouts, task errors, casualties) including ones that were
	// retried; the analogue of cluster.Report.Failures.
	FailedAttempts int
	// Backfills counts out-of-order starts through EASY backfilling.
	Backfills int
	// Faults tallies materialized injected faults by kind; deterministic
	// for a given plan at any worker count.
	Faults fault.Counts
	// RecoveredPanics counts task panics caught at the worker isolation
	// boundary (the worker survived, the task failed).
	RecoveredPanics int
	// WatchdogKills counts attempts abandoned past the heartbeat
	// deadline.
	WatchdogKills int
	// DomainCasualties counts attempts killed by the loss of their
	// failure domain rather than their own failure; casualties retry
	// without consuming the task's budget.
	DomainCasualties int
	// Requeues counts tasks sent back to the ready queue for re-routing
	// after one of their workers was quarantined.
	Requeues int
	// QuarantinedSolve / QuarantinedContract list the worker IDs benched
	// by the circuit breaker, ascending.
	QuarantinedSolve    []int
	QuarantinedContract []int
	// JournalCheckpoints and SolverRestarts are filled in by campaign
	// drivers that run on this pool: completed-work checkpoints written
	// to the crash-recovery journal, and precision-escalation restarts
	// the solvers performed (solver.Stats.Restarts summed).
	JournalCheckpoints int
	SolverRestarts     int
	// SolveBusy / ContractBusy integrate busy worker-seconds per class.
	SolveBusy    time.Duration
	ContractBusy time.Duration
	// SolveUtil / ContractUtil are busy fractions of the class's workers
	// over the busy window: the paper's utilization metric (Fig. 6).
	SolveUtil    float64
	ContractUtil float64
	// Timeline is the live per-class utilization timeline assembled from
	// completed attempts: bucketed busy/backfill fractions over the busy
	// window, renderable as ASCII (Timeline.Render) and cross-checkable
	// against the busy integrals above and the exported trace.
	Timeline Timeline
	// Queue-wait statistics over all started tasks.
	MeanQueueWait time.Duration
	MaxQueueWait  time.Duration
	// PerTask holds every task's lifecycle record in submission order.
	PerTask []TaskMetrics
}

// IdleFraction returns 1 - SolveUtil, the bundling-waste metric the paper
// quotes for the solve (GPU) partition.
func (r Report) IdleFraction() float64 { return 1 - r.SolveUtil }

// CheckConservation verifies the report's accounting identities: every
// submitted task is exactly one of succeeded, failed, refused or
// stranded; stranded work implies a drain happened (the hard-cancel
// phase is the only thing that strands); and the admitted count covers
// at least the outcomes that require a started attempt (success or being
// killed mid-flight) without exceeding the task count. The scenario soak
// harness holds every run, chaotic or not, to these invariants.
func (r Report) CheckConservation() error {
	if r.Succeeded+r.Failed+r.Refused+r.Stranded != r.Tasks {
		return fmt.Errorf("runtime: outcome counts %d ok + %d failed + %d refused + %d stranded != %d tasks",
			r.Succeeded, r.Failed, r.Refused, r.Stranded, r.Tasks)
	}
	if r.Stranded > 0 && !r.Drained {
		return fmt.Errorf("runtime: %d tasks stranded without a drain event", r.Stranded)
	}
	if r.Admitted > r.Tasks {
		return fmt.Errorf("runtime: %d admitted > %d tasks", r.Admitted, r.Tasks)
	}
	if r.Admitted < r.Succeeded+r.Stranded {
		return fmt.Errorf("runtime: %d admitted < %d succeeded + %d stranded",
			r.Admitted, r.Succeeded, r.Stranded)
	}
	return nil
}

// Util returns the utilization of one worker class.
func (r Report) Util(c Class) float64 {
	if c == Solve {
		return r.SolveUtil
	}
	return r.ContractUtil
}

// String renders a human-readable summary.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "runtime: %d tasks (%d ok, %d failed) on %d solve + %d contract workers\n",
		r.Tasks, r.Succeeded, r.Failed, r.SolveWorkers, r.ContractWorkers)
	fmt.Fprintf(&b, "  wall %v, solve util %.1f%%, contract util %.1f%%\n",
		r.Wall.Round(time.Millisecond), 100*r.SolveUtil, 100*r.ContractUtil)
	fmt.Fprintf(&b, "  %d backfills, %d failed attempts, queue wait mean %v max %v",
		r.Backfills, r.FailedAttempts,
		r.MeanQueueWait.Round(time.Microsecond), r.MaxQueueWait.Round(time.Microsecond))
	if r.Faults.Total() > 0 || r.RecoveredPanics > 0 || r.WatchdogKills > 0 ||
		r.DomainCasualties > 0 || len(r.QuarantinedSolve)+len(r.QuarantinedContract) > 0 {
		fmt.Fprintf(&b, "\n  chaos: %v; %d panics recovered, %d watchdog kills, %d domain casualties, %d requeues, %d workers quarantined",
			r.Faults, r.RecoveredPanics, r.WatchdogKills, r.DomainCasualties,
			r.Requeues, len(r.QuarantinedSolve)+len(r.QuarantinedContract))
	}
	if r.JournalCheckpoints > 0 || r.SolverRestarts > 0 {
		fmt.Fprintf(&b, "\n  recovery: %d journal checkpoints, %d solver restarts",
			r.JournalCheckpoints, r.SolverRestarts)
	}
	if r.Drained || r.Refused > 0 || r.Stranded > 0 {
		fmt.Fprintf(&b, "\n  drain: %d admitted, %d refused, %d stranded", r.Admitted, r.Refused, r.Stranded)
		if r.Drained {
			fmt.Fprintf(&b, " (%s at %v)", r.DrainReason, r.DrainedAt.Round(time.Millisecond))
		}
	}
	if r.BudgetWall > 0 {
		fmt.Fprintf(&b, "\n  budget: used %v of %v (%.1f%%), estimate error %.1f%%",
			r.BudgetUsed.Round(time.Millisecond), r.BudgetWall, 100*r.BudgetUtil, 100*r.EstimateErr)
	}
	return b.String()
}
