package runtime

import (
	"fmt"
	"strings"
	"time"
)

// TaskMetrics is the per-task lifecycle record the job manager keeps for
// every task it executed: the live analogue of cluster.TaskStat.
type TaskMetrics struct {
	ID    int
	Name  string
	Class Class
	Slots int
	// Attempts counts executions: 1 means the task succeeded (or failed
	// terminally) on its first run, larger values mean retries happened.
	Attempts int
	// QueueWait is the time from submission to the first execution start.
	QueueWait time.Duration
	// Run is the total execution time over all attempts.
	Run time.Duration
	// Workers lists the worker slots of the task's class that ran the
	// task (len == Slots). Empty for tasks that never started.
	Workers []int
	// Backfilled marks a task started out of order through a hole left by
	// a wider task waiting at the head of the queue.
	Backfilled bool
}

// Report summarises a pool run with the same vocabulary as the
// discrete-event simulator's cluster.Report, so the real executor and the
// model can be cross-checked against each other.
type Report struct {
	SolveWorkers    int
	ContractWorkers int
	// Wall is the busy window: first task start to last task end
	// (the simulator's makespan minus startup).
	Wall time.Duration
	// Tasks counts submitted tasks; Succeeded + Failed == Tasks.
	Tasks     int
	Succeeded int
	Failed    int
	// FailedAttempts counts failed executions (injected failures,
	// timeouts, task errors) including ones that were retried; the
	// analogue of cluster.Report.Failures.
	FailedAttempts int
	// Backfills counts out-of-order starts through EASY backfilling.
	Backfills int
	// SolveBusy / ContractBusy integrate busy worker-seconds per class.
	SolveBusy    time.Duration
	ContractBusy time.Duration
	// SolveUtil / ContractUtil are busy fractions of the class's workers
	// over the busy window: the paper's utilization metric (Fig. 6).
	SolveUtil    float64
	ContractUtil float64
	// Queue-wait statistics over all started tasks.
	MeanQueueWait time.Duration
	MaxQueueWait  time.Duration
	// PerTask holds every task's lifecycle record in submission order.
	PerTask []TaskMetrics
}

// IdleFraction returns 1 - SolveUtil, the bundling-waste metric the paper
// quotes for the solve (GPU) partition.
func (r Report) IdleFraction() float64 { return 1 - r.SolveUtil }

// Util returns the utilization of one worker class.
func (r Report) Util(c Class) float64 {
	if c == Solve {
		return r.SolveUtil
	}
	return r.ContractUtil
}

// String renders a human-readable summary.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "runtime: %d tasks (%d ok, %d failed) on %d solve + %d contract workers\n",
		r.Tasks, r.Succeeded, r.Failed, r.SolveWorkers, r.ContractWorkers)
	fmt.Fprintf(&b, "  wall %v, solve util %.1f%%, contract util %.1f%%\n",
		r.Wall.Round(time.Millisecond), 100*r.SolveUtil, 100*r.ContractUtil)
	fmt.Fprintf(&b, "  %d backfills, %d failed attempts, queue wait mean %v max %v",
		r.Backfills, r.FailedAttempts,
		r.MeanQueueWait.Round(time.Microsecond), r.MaxQueueWait.Round(time.Microsecond))
	return b.String()
}
