package runtime

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"femtoverse/internal/fault"
)

// checkDrainAccounting verifies the drain counters partition the task
// set: every task is exactly one of succeeded, failed, refused, or
// stranded.
func checkDrainAccounting(t *testing.T, rep Report) {
	t.Helper()
	if got := rep.Succeeded + rep.Failed + rep.Refused + rep.Stranded; got != rep.Tasks {
		t.Fatalf("accounting: %d+%d+%d+%d = %d tasks, want %d",
			rep.Succeeded, rep.Failed, rep.Refused, rep.Stranded, got, rep.Tasks)
	}
}

// TestBudgetRefusesOversizedTask is the admission-control liveness
// property: a task whose estimate always exceeds the remaining budget is
// reported as refused - never silently stranded in the queue, never
// counted as failed - and its dependents are refused with it, while
// work that fits proceeds normally.
func TestBudgetRefusesOversizedTask(t *testing.T) {
	var tasks []Task
	for i := 0; i < 4; i++ {
		tasks = append(tasks, sleepTask(i, Solve, 5*time.Millisecond))
	}
	monster := sleepTask(4, Solve, 10*time.Second) // estimate 10s >> 1s budget
	tasks = append(tasks, monster)
	tasks = append(tasks, sleepTask(5, Contract, time.Millisecond, 4)) // dependent of the monster

	results, rep, err := Run(context.Background(), Config{
		SolveWorkers: 2, ContractWorkers: 1,
		Budget: Budget{WallClock: time.Second, DrainGrace: 100 * time.Millisecond},
	}, tasks)
	if err != nil {
		t.Fatalf("refused work surfaced as an error: %v", err)
	}
	checkDrainAccounting(t, rep)
	if rep.Succeeded != 4 || rep.Refused != 2 || rep.Failed != 0 || rep.Stranded != 0 {
		t.Fatalf("counters: %d ok, %d refused, %d failed, %d stranded", rep.Succeeded, rep.Refused, rep.Failed, rep.Stranded)
	}
	if !errors.Is(results[4].Err, ErrRefused) {
		t.Fatalf("monster error %v, want ErrRefused", results[4].Err)
	}
	if !errors.Is(results[5].Err, ErrRefused) {
		t.Fatalf("dependent of refused task: %v, want ErrRefused", results[5].Err)
	}
	if rep.Admitted != 4 {
		t.Fatalf("admitted %d, want 4", rep.Admitted)
	}
	if rep.BudgetWall != time.Second || rep.BudgetUtil <= 0 {
		t.Fatalf("budget accounting missing: wall %v util %g", rep.BudgetWall, rep.BudgetUtil)
	}
}

// TestBudgetExpiryStrandsOverrunningWork: tasks admitted on optimistic
// estimates that are still running when the budget expires get the
// drain grace, then are hard-cancelled and recorded as stranded - not
// failed - and Wait does not surface them as an error.
func TestBudgetExpiryStrandsOverrunningWork(t *testing.T) {
	var tasks []Task
	for i := 0; i < 2; i++ {
		t := sleepTask(i, Solve, 2*time.Second)
		t.Cost = 0.001 // wildly optimistic: admitted, then overruns
		tasks = append(tasks, t)
	}
	results, rep, err := Run(context.Background(), Config{
		SolveWorkers: 2, ContractWorkers: 1,
		Budget: Budget{WallClock: 30 * time.Millisecond, DrainGrace: 30 * time.Millisecond},
	}, tasks)
	if err != nil {
		t.Fatalf("stranded work surfaced as an error: %v", err)
	}
	checkDrainAccounting(t, rep)
	if !rep.Drained || rep.DrainReason != "budget expired" {
		t.Fatalf("drained=%v reason=%q, want budget expiry", rep.Drained, rep.DrainReason)
	}
	if rep.Stranded != 2 {
		t.Fatalf("stranded %d, want 2 (report: %v)", rep.Stranded, rep)
	}
	for _, r := range results {
		if !errors.Is(r.Err, ErrStranded) {
			t.Fatalf("task %d error %v, want ErrStranded", r.Task.ID, r.Err)
		}
	}
}

// TestQuarantineReleaseDuringDrain: a task re-routed because its worker
// was quarantined mid-drain is refused - with its healthy workers
// released first - rather than re-queued onto a pool that will never
// dispatch again. This is the "quarantined workers release their slots
// before drain accounting runs" half of the liveness property.
func TestQuarantineReleaseDuringDrain(t *testing.T) {
	p, err := New(context.Background(), Config{
		SolveWorkers: 2, ContractWorkers: 1,
		MaxRetries: 5, QuarantineAfter: 1,
		RetryBackoff: 100 * time.Microsecond,
		Budget:       Budget{DrainGrace: 200 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	if err := p.Submit(Task{ID: 0, Class: Solve, Run: func(context.Context) (interface{}, error) {
		p.Drain("test drain")
		return nil, boom
	}}); err != nil {
		t.Fatal(err)
	}
	p.Close()
	results, rep, err := p.Wait()
	if err != nil {
		t.Fatalf("drain-refused task surfaced as an error: %v", err)
	}
	checkDrainAccounting(t, rep)
	if rep.Requeues != 1 {
		t.Fatalf("requeues %d, want 1 (quarantine must have fired)", rep.Requeues)
	}
	if rep.Refused != 1 || rep.Stranded != 0 {
		t.Fatalf("refused %d stranded %d, want the re-routed task refused", rep.Refused, rep.Stranded)
	}
	if !errors.Is(results[0].Err, ErrRefused) {
		t.Fatalf("task error %v, want ErrRefused", results[0].Err)
	}
}

// TestPreemptFaultFiresDrainPath: an injected fault.Preempt is an
// allocation-level event, not a task failure - the drawing attempt runs
// to completion inside the grace period, the pool drains, queued tasks
// are refused, and the fault is tallied.
func TestPreemptFaultFiresDrainPath(t *testing.T) {
	const n = 8
	var tasks []Task
	for i := 0; i < n; i++ {
		tasks = append(tasks, sleepTask(i, Solve, 5*time.Millisecond))
	}
	results, rep, err := Run(context.Background(), Config{
		SolveWorkers: 2, ContractWorkers: 1,
		Budget: Budget{DrainGrace: 500 * time.Millisecond},
		Fault:  fault.Plan{Seed: 7, Preempt: 0.9, MaxInjections: 1},
	}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	checkDrainAccounting(t, rep)
	if !rep.Drained || rep.DrainReason != "preempt fault" {
		t.Fatalf("drained=%v reason=%q, want preempt fault", rep.Drained, rep.DrainReason)
	}
	if rep.Faults.Preempt == 0 {
		t.Fatal("no Preempt fault tallied")
	}
	if rep.Stranded != 0 {
		t.Fatalf("stranded %d: the grace period should cover 5ms sleeps", rep.Stranded)
	}
	if rep.Refused == 0 || rep.Succeeded == 0 {
		t.Fatalf("want a mix of refused and completed work, got %d refused %d ok", rep.Refused, rep.Succeeded)
	}
	// The drawing attempt itself completed: every non-refused task
	// returned its value.
	for _, r := range results {
		if r.Err == nil && r.Value != r.Task.ID {
			t.Fatalf("task %d value %v", r.Task.ID, r.Value)
		}
		if errors.Is(r.Err, ErrRefused) && len(r.Metrics.Workers) != 0 {
			t.Fatalf("refused task %d has workers %v", r.Task.ID, r.Metrics.Workers)
		}
	}
}

// TestPreemptChannelTwoStageShutdown: the external preemption channel is
// the SIGTERM landing path - the first notice drains gracefully
// (in-flight work keeps running), the second hard-cancels immediately.
func TestPreemptChannelTwoStageShutdown(t *testing.T) {
	preempt := make(chan string, 2)
	started := make(chan struct{})
	p, err := New(context.Background(), Config{
		SolveWorkers: 1, ContractWorkers: 1,
		Budget:  Budget{DrainGrace: time.Minute}, // grace never expires on its own
		Preempt: preempt,
	})
	if err != nil {
		t.Fatal(err)
	}
	blocker := Task{ID: 0, Class: Solve, Run: func(ctx context.Context) (interface{}, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	}}
	if err := p.Submit(blocker); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 4; i++ {
		if err := p.Submit(sleepTask(i, Solve, time.Millisecond)); err != nil {
			t.Fatal(err)
		}
	}
	p.Close()
	<-started
	preempt <- "SIGTERM" // graceful: queued work refused, blocker keeps running
	preempt <- "SIGTERM" // immediate: the blocker's context is cancelled
	results, rep, err := p.Wait()
	if err != nil {
		t.Fatalf("preempted run surfaced an error: %v", err)
	}
	checkDrainAccounting(t, rep)
	if !rep.Drained || rep.DrainReason != "SIGTERM" {
		t.Fatalf("drained=%v reason=%q, want SIGTERM", rep.Drained, rep.DrainReason)
	}
	if !errors.Is(results[0].Err, ErrStranded) {
		t.Fatalf("blocker error %v, want ErrStranded (hard cancel)", results[0].Err)
	}
	if rep.Refused != 3 || rep.Stranded != 1 {
		t.Fatalf("refused %d stranded %d, want 3 refused + 1 stranded", rep.Refused, rep.Stranded)
	}
}

// TestEstimatorCalibration: the estimator seeds from nominal costs and
// converges to the observed ratio via the EWMA; predictions before any
// observation are the nominal cost verbatim.
func TestEstimatorCalibration(t *testing.T) {
	var e estimator
	if got := e.predict(Solve, 2); got != 2*time.Second {
		t.Fatalf("cold prediction %v, want 2s", got)
	}
	// Tasks declared at 1s that actually run 10ms.
	for i := 0; i < 20; i++ {
		e.observe(Solve, 1, e.predict(Solve, 1), 10*time.Millisecond)
	}
	got := e.predict(Solve, 1)
	if got < 9*time.Millisecond || got > 12*time.Millisecond {
		t.Fatalf("calibrated prediction %v, want ~10ms", got)
	}
	// Contract class is calibrated independently.
	if got := e.predict(Contract, 1); got != time.Second {
		t.Fatalf("contract class leaked calibration: %v", got)
	}
	if e.meanErr() <= 0 {
		t.Fatal("estimate error accounting empty")
	}
}

// TestBudgetedPoolCalibratesAdmission: nominal costs off by 100x do not
// poison admission for long - after the first completions the EWMA pulls
// the estimates down to reality and the remaining tasks are admitted
// even though their nominal cost would no longer fit the shrunken
// remaining budget.
func TestBudgetedPoolCalibratesAdmission(t *testing.T) {
	p, err := New(context.Background(), Config{
		SolveWorkers: 1, ContractWorkers: 1,
		Budget: Budget{WallClock: 3 * time.Second, DrainGrace: 100 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Each task declares 1s but runs 5ms. Submitting sequentially makes
	// every admission decision see the latest calibration: by mid-run
	// the remaining budget is below the total *nominal* cost, and only a
	// calibrated estimator keeps admitting.
	const n = 6
	for i := 0; i < n; i++ {
		task := sleepTask(i, Solve, 5*time.Millisecond)
		task.Cost = 1
		if err := p.Submit(task); err != nil {
			t.Fatal(err)
		}
	}
	p.Close()
	_, rep, err := p.Wait()
	if err != nil {
		t.Fatal(err)
	}
	checkDrainAccounting(t, rep)
	if rep.Succeeded != n {
		t.Fatalf("%d of %d tasks completed: %v", rep.Succeeded, n, rep)
	}
	if rep.EstimateErr <= 0 {
		t.Fatal("estimate error accounting empty")
	}
}

// TestDrainReportString: the human-readable report mentions the drain
// and budget lines when they carry information.
func TestDrainReportString(t *testing.T) {
	rep := Report{
		Tasks: 3, Succeeded: 1, Refused: 1, Stranded: 1,
		Drained: true, DrainReason: "budget expired", DrainedAt: 80 * time.Millisecond,
		BudgetWall: 100 * time.Millisecond, BudgetUsed: 90 * time.Millisecond, BudgetUtil: 0.9,
	}
	s := rep.String()
	for _, want := range []string{"refused", "stranded", "budget expired", "90ms"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report %q missing %q", s, want)
		}
	}
}

// TestBudgetValidation rejects nonsense budgets.
func TestBudgetValidation(t *testing.T) {
	if err := (Config{Budget: Budget{WallClock: -time.Second}}).Validate(); err == nil {
		t.Fatal("negative WallClock accepted")
	}
	if err := (Config{Budget: Budget{DrainGrace: -time.Second}}).Validate(); err == nil {
		t.Fatal("negative DrainGrace accepted")
	}
	if _, err := New(context.Background(), Config{Budget: Budget{WallClock: -1}}); err == nil {
		t.Fatal("New accepted a negative budget")
	}
}
