package runtime

import (
	"sort"
	"time"
)

// release is a running task's predicted slot release, the planning input
// of the backfill scheduler. Estimates come from Task.Cost; they steer
// scheduling only and never affect correctness.
type release struct {
	at    time.Time
	slots int
}

// reservationTime returns the earliest instant at which need slots can be
// free, given free slots now and the running tasks' predicted releases.
// The boolean is false when even draining every running task cannot
// satisfy the request.
func reservationTime(now time.Time, free, need int, running []release) (time.Time, bool) {
	if need <= free {
		return now, true
	}
	rs := append([]release(nil), running...)
	sort.Slice(rs, func(i, j int) bool { return rs[i].at.Before(rs[j].at) })
	avail := free
	for _, r := range rs {
		avail += r.slots
		if avail >= need {
			at := r.at
			if at.Before(now) {
				at = now
			}
			return at, true
		}
	}
	return time.Time{}, false
}

// backfillOK implements EASY backfilling: when the queue head (headSlots
// wide) does not fit the free slots, a smaller candidate may start in the
// gap only if it cannot delay the head's reservation - either it is
// predicted to finish before the head could start anyway, or the slots it
// occupies are not among those the head needs at its reservation time.
// This is the mpi_jm behaviour of Fig. 5: small tasks drain into the
// holes left while a large lump request waits for nodes.
func backfillOK(now time.Time, free, headSlots, candSlots int, candCost time.Duration, running []release) bool {
	if candSlots > free {
		return false
	}
	resAt, ok := reservationTime(now, free, headSlots, running)
	if !ok {
		// The head can never run (should be rejected at submit); do not
		// let it block smaller work forever.
		return true
	}
	if !now.Add(candCost).After(resAt) {
		return true
	}
	// The candidate is predicted to still hold its slots at the
	// reservation: admit it only if the head is satisfiable regardless.
	avail := free - candSlots
	for _, r := range running {
		if !r.at.After(resAt) {
			avail += r.slots
		}
	}
	return avail >= headSlots
}
