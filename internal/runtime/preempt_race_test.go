package runtime

import (
	"context"
	"errors"
	"testing"
	"time"
)

// The drain path has four triggers - budget expiry, Pool.Drain, the
// external Preempt channel, and the injected fault.Preempt - and a pool
// under a batch system routinely sees two of them land in the same tick
// (the allocation clock runs out just as the SIGTERM notice arrives).
// The contract pinned here: a second *distinct* trigger landing on an
// already-soft drain is a no-op - only a second value on the Preempt
// channel, or grace expiry, escalates to hard-cancel. These tests run
// both orderings under -race; the white-box drainLevel checks catch an
// escalation even if the blocker happens to finish before the cancel.

// drainBlockerPool builds a one-solve-worker pool with the given budget
// and an unbuffered preempt channel, running a blocker task that holds
// the worker until unblock is closed (and reports ctx cancellation -
// i.e. a hard cancel - as its error).
func drainBlockerPool(t *testing.T, budget Budget) (p *Pool, preempt chan string, started, unblock chan struct{}) {
	t.Helper()
	preempt = make(chan string) // unbuffered: a send returns only once the pool has the value
	started = make(chan struct{})
	unblock = make(chan struct{})
	p, err := New(context.Background(), Config{
		SolveWorkers: 1, ContractWorkers: 1,
		Budget:  budget,
		Preempt: preempt,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Cost is wildly optimistic so a short WallClock still admits the
	// blocker (it then overruns into the drain, which is the point).
	blocker := Task{ID: 0, Class: Solve, Cost: 0.001, Run: func(ctx context.Context) (interface{}, error) {
		close(started)
		select {
		case <-unblock:
			return "survived", nil
		case <-ctx.Done():
			return nil, ctx.Err() // only a hard cancel lands here
		}
	}}
	if err := p.Submit(blocker); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 4; i++ {
		if err := p.Submit(sleepTask(i, Solve, time.Millisecond)); err != nil {
			t.Fatal(err)
		}
	}
	p.Close()
	<-started
	return p, preempt, started, unblock
}

// drainLevelNow reads the pool's drain phase under the lock.
func drainLevelNow(p *Pool) drainPhase {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.drainLevel
}

// waitSoft blocks until the pool has started draining.
func waitSoft(t *testing.T, p *Pool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for drainLevelNow(p) < drainSoft {
		if time.Now().After(deadline) {
			t.Fatal("pool never drained")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBudgetExpiryThenPreemptSignalStaysSoft: the budget expires first,
// then a single preemption notice arrives. The notice is the second
// trigger and must not escalate the soft drain to a hard cancel - the
// in-flight blocker finishes on its own terms.
func TestBudgetExpiryThenPreemptSignalStaysSoft(t *testing.T) {
	p, preempt, _, unblock := drainBlockerPool(t, Budget{
		WallClock: 20 * time.Millisecond, DrainGrace: time.Minute,
	})
	waitSoft(t, p) // budget expiry: trigger one
	preempt <- "SIGTERM"
	// The unbuffered send returned, so the pool has consumed the notice;
	// give its Drain call time to land, then pin the level.
	time.Sleep(20 * time.Millisecond)
	if lvl := drainLevelNow(p); lvl != drainSoft {
		t.Fatalf("drain level %d after second trigger, want soft (%d)", lvl, drainSoft)
	}
	close(unblock)
	results, rep, err := p.Wait()
	if err != nil {
		t.Fatal(err)
	}
	checkDrainAccounting(t, rep)
	if !rep.Drained || rep.DrainReason != "budget expired" {
		t.Fatalf("drained=%v reason=%q, want budget expiry to keep the first reason", rep.Drained, rep.DrainReason)
	}
	if results[0].Err != nil || results[0].Value != "survived" {
		t.Fatalf("blocker = (%v, %v), want it to finish inside the grace period", results[0].Value, results[0].Err)
	}
	if rep.Stranded != 0 {
		t.Fatalf("stranded %d, want 0: a single preempt notice must not hard-cancel", rep.Stranded)
	}
}

// TestPreemptSignalThenBudgetExpiryStaysSoft: the mirror ordering - the
// preemption notice drains first, then the allocation clock runs out.
// The expiry must not escalate (and must not steal the drain reason).
func TestPreemptSignalThenBudgetExpiryStaysSoft(t *testing.T) {
	p, preempt, _, unblock := drainBlockerPool(t, Budget{
		WallClock: 30 * time.Millisecond, DrainGrace: time.Minute,
	})
	preempt <- "SIGTERM" // trigger one
	waitSoft(t, p)
	// Outlive the budget timer: if expiry re-triggered the drain path it
	// would have landed well within this window.
	time.Sleep(60 * time.Millisecond)
	if lvl := drainLevelNow(p); lvl != drainSoft {
		t.Fatalf("drain level %d after budget expiry, want soft (%d)", lvl, drainSoft)
	}
	close(unblock)
	results, rep, err := p.Wait()
	if err != nil {
		t.Fatal(err)
	}
	checkDrainAccounting(t, rep)
	if !rep.Drained || rep.DrainReason != "SIGTERM" {
		t.Fatalf("drained=%v reason=%q, want the preempt notice to keep the first reason", rep.Drained, rep.DrainReason)
	}
	if results[0].Err != nil || results[0].Value != "survived" {
		t.Fatalf("blocker = (%v, %v), want it to finish inside the grace period", results[0].Value, results[0].Err)
	}
	if rep.Stranded != 0 {
		t.Fatalf("stranded %d, want 0: budget expiry on a draining pool must not hard-cancel", rep.Stranded)
	}
}

// TestSecondPreemptValueStillEscalates: the intentional escalation path
// is untouched by the double-trigger guard - two values on the Preempt
// channel hard-cancel the blocker even with an undisturbed grace period.
func TestSecondPreemptValueStillEscalates(t *testing.T) {
	p, preempt, _, unblock := drainBlockerPool(t, Budget{DrainGrace: time.Minute})
	defer close(unblock)
	preempt <- "SIGTERM"
	preempt <- "SIGTERM"
	results, rep, err := p.Wait()
	if err != nil {
		t.Fatal(err)
	}
	checkDrainAccounting(t, rep)
	if !errors.Is(results[0].Err, ErrStranded) {
		t.Fatalf("blocker error %v, want ErrStranded after the second notice", results[0].Err)
	}
	if rep.Stranded != 1 {
		t.Fatalf("stranded %d, want exactly the blocker", rep.Stranded)
	}
}
