package runtime

import (
	"testing"
	"time"
)

var t0 = time.Unix(1000, 0)

func at(sec float64) time.Time { return t0.Add(time.Duration(sec * float64(time.Second))) }

func TestReservationTime(t *testing.T) {
	running := []release{
		{at: at(5), slots: 2},
		{at: at(2), slots: 1},
		{at: at(9), slots: 4},
	}
	// Fits now: reservation is immediate.
	if got, ok := reservationTime(t0, 3, 3, running); !ok || !got.Equal(t0) {
		t.Fatalf("immediate fit: %v %v", got, ok)
	}
	// Needs the first release.
	if got, ok := reservationTime(t0, 1, 2, running); !ok || !got.Equal(at(2)) {
		t.Fatalf("one release: %v %v", got, ok)
	}
	// Needs two releases (releases considered in time order).
	if got, ok := reservationTime(t0, 1, 4, running); !ok || !got.Equal(at(5)) {
		t.Fatalf("two releases: %v %v", got, ok)
	}
	// Unsatisfiable even after every release.
	if _, ok := reservationTime(t0, 0, 100, running); ok {
		t.Fatal("unsatisfiable request satisfied")
	}
	// A release predicted in the past clamps to now.
	if got, ok := reservationTime(at(3), 0, 1, []release{{at: at(2), slots: 1}}); !ok || !got.Equal(at(3)) {
		t.Fatalf("past release not clamped: %v %v", got, ok)
	}
}

func TestBackfillShortTaskFitsUnderReservation(t *testing.T) {
	// 4-slot class: 3 slots busy until t=10, head wants all 4.
	running := []release{{at: at(10), slots: 3}}
	// A 1-slot task predicted to finish by t=10 may backfill...
	if !backfillOK(t0, 1, 4, 1, 5*time.Second, running) {
		t.Fatal("short filler rejected")
	}
	// ...but one predicted to outlive the reservation would delay the
	// 4-slot head and must wait.
	if backfillOK(t0, 1, 4, 1, 20*time.Second, running) {
		t.Fatal("long filler admitted; it delays the head")
	}
	// A candidate wider than the free slots never fits.
	if backfillOK(t0, 1, 4, 2, time.Second, running) {
		t.Fatal("over-wide filler admitted")
	}
}

func TestBackfillSlotsNotNeededByHead(t *testing.T) {
	// 8-slot class: 4 busy until t=10, 4 free, head wants 6. At the
	// reservation (t=10) there are 8 slots; a long 2-slot filler still
	// leaves 6, so it cannot delay the head.
	running := []release{{at: at(10), slots: 4}}
	if !backfillOK(t0, 4, 6, 2, time.Hour, running) {
		t.Fatal("harmless long filler rejected")
	}
	// A 3-slot long filler would leave only 5 < 6 at the reservation.
	if backfillOK(t0, 4, 6, 3, time.Hour, running) {
		t.Fatal("head-delaying filler admitted")
	}
}

func TestBackfillUnsatisfiableHeadDoesNotBlockQueue(t *testing.T) {
	// Head wider than the class (rejected at Submit in practice): the
	// planner must not wedge smaller work behind it.
	if !backfillOK(t0, 2, 100, 1, time.Second, nil) {
		t.Fatal("queue wedged behind an unsatisfiable head")
	}
}
