package runtime

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"femtoverse/internal/fault"
)

// sleepTask returns a task that sleeps for d (honouring ctx) and returns
// its ID.
func sleepTask(id int, class Class, d time.Duration, deps ...int) Task {
	return Task{
		ID:        id,
		Name:      fmt.Sprintf("t%d", id),
		Class:     class,
		Cost:      d.Seconds(),
		DependsOn: deps,
		Run: func(ctx context.Context) (interface{}, error) {
			select {
			case <-time.After(d):
				return id, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	}
}

func TestResultsInSubmissionOrder(t *testing.T) {
	var tasks []Task
	for i := 0; i < 24; i++ {
		// Varying durations so completion order differs from submission.
		d := time.Duration(1+(i*7)%5) * time.Millisecond
		tasks = append(tasks, sleepTask(100+i, Solve, d))
	}
	res, rep, err := Run(context.Background(), Config{SolveWorkers: 4}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 24 || rep.Tasks != 24 || rep.Succeeded != 24 {
		t.Fatalf("counts: %d results, %+v", len(res), rep)
	}
	for i, r := range res {
		if r.Task.ID != 100+i {
			t.Fatalf("result %d carries task %d; want submission order", i, r.Task.ID)
		}
		if v, ok := r.Value.(int); !ok || v != 100+i {
			t.Fatalf("result %d value %v", i, r.Value)
		}
	}
	if rep.SolveUtil <= 0 || rep.SolveUtil > 1 {
		t.Fatalf("solve utilization %v outside (0,1]", rep.SolveUtil)
	}
}

func TestDependenciesGateExecution(t *testing.T) {
	var mu sync.Mutex
	var order []int
	record := func(id int) func(context.Context) (interface{}, error) {
		return func(context.Context) (interface{}, error) {
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
			return nil, nil
		}
	}
	tasks := []Task{
		{ID: 0, Class: Solve, Run: record(0)},
		{ID: 1, Class: Contract, DependsOn: []int{0}, Run: record(1)},
		{ID: 2, Class: Contract, DependsOn: []int{0, 1}, Run: record(2)},
	}
	if _, _, err := Run(context.Background(), Config{SolveWorkers: 2, ContractWorkers: 2}, tasks); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("execution order %v violates dependencies", order)
	}
}

func TestClassWidthsBoundConcurrency(t *testing.T) {
	var inFlight, peak atomic.Int64
	var tasks []Task
	for i := 0; i < 20; i++ {
		tasks = append(tasks, Task{
			ID: i, Class: Solve,
			Run: func(context.Context) (interface{}, error) {
				n := inFlight.Add(1)
				for {
					old := peak.Load()
					if n <= old || peak.CompareAndSwap(old, n) {
						break
					}
				}
				time.Sleep(2 * time.Millisecond)
				inFlight.Add(-1)
				return nil, nil
			},
		})
	}
	if _, _, err := Run(context.Background(), Config{SolveWorkers: 3, ContractWorkers: 1}, tasks); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 3 {
		t.Fatalf("peak concurrency %d exceeds 3 solve workers", p)
	}
}

func TestWideTaskOccupiesSlots(t *testing.T) {
	var inFlight, peak atomic.Int64
	track := func(w int64) func(context.Context) (interface{}, error) {
		return func(context.Context) (interface{}, error) {
			n := inFlight.Add(w)
			for {
				old := peak.Load()
				if n <= old || peak.CompareAndSwap(old, n) {
					break
				}
			}
			time.Sleep(5 * time.Millisecond)
			inFlight.Add(-w)
			return nil, nil
		}
	}
	tasks := []Task{
		{ID: 0, Class: Solve, Slots: 4, Cost: 0.005, Run: track(4)},
		{ID: 1, Class: Solve, Slots: 2, Cost: 0.005, Run: track(2)},
		{ID: 2, Class: Solve, Slots: 2, Cost: 0.005, Run: track(2)},
		{ID: 3, Class: Solve, Slots: 4, Cost: 0.005, Run: track(4)},
	}
	if _, _, err := Run(context.Background(), Config{SolveWorkers: 4, ContractWorkers: 1}, tasks); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 4 {
		t.Fatalf("slot-weighted concurrency peaked at %d on 4 slots", p)
	}
}

func TestBackfillRecoversIdleSlots(t *testing.T) {
	// 4 solve workers: two 1-slot holders run long, a 4-wide head must
	// wait for them, and short 1-slot fillers should flow through the
	// two idle slots in the meantime.
	var tasks []Task
	tasks = append(tasks,
		sleepTask(0, Solve, 60*time.Millisecond),
		sleepTask(1, Solve, 60*time.Millisecond),
	)
	wide := sleepTask(2, Solve, 5*time.Millisecond)
	wide.Slots = 4
	tasks = append(tasks, wide)
	for i := 3; i < 9; i++ {
		tasks = append(tasks, sleepTask(i, Solve, 3*time.Millisecond))
	}
	res, rep, err := Run(context.Background(), Config{SolveWorkers: 4, ContractWorkers: 1}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Backfills == 0 {
		t.Fatal("no backfills on a mix engineered for them")
	}
	backfilled := 0
	for _, r := range res[3:] {
		if r.Metrics.Backfilled {
			backfilled++
		}
	}
	if backfilled == 0 {
		t.Fatal("no filler task marked backfilled")
	}
	// The wide head still ran (backfilling must not starve it).
	if res[2].Err != nil || res[2].Metrics.Attempts != 1 {
		t.Fatalf("wide task: %+v", res[2])
	}
}

func TestInjectedFailuresAreRetriedToSuccess(t *testing.T) {
	var tasks []Task
	for i := 0; i < 30; i++ {
		tasks = append(tasks, sleepTask(i, Solve, time.Millisecond))
	}
	res, rep, err := Run(context.Background(), Config{
		SolveWorkers: 4, ContractWorkers: 1,
		Fault:        fault.Plan{Seed: 11, Transient: 0.4},
		MaxRetries:   20,
		RetryBackoff: 100 * time.Microsecond,
	}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 || rep.Succeeded != 30 {
		t.Fatalf("retries did not recover: %+v", rep)
	}
	if rep.FailedAttempts == 0 {
		t.Fatal("40% failure rate injected no failures over 30 tasks")
	}
	retried := 0
	for _, r := range res {
		if r.Metrics.Attempts > 1 {
			retried++
		}
	}
	if retried == 0 {
		t.Fatal("no task records multiple attempts")
	}
}

func TestRetryLimitGivesUp(t *testing.T) {
	calls := 0
	tasks := []Task{{
		ID: 0, Class: Solve, Retries: 3,
		Run: func(context.Context) (interface{}, error) {
			calls++
			return nil, errors.New("boom")
		},
	}}
	res, rep, err := Run(context.Background(), Config{
		SolveWorkers: 1, ContractWorkers: 1, RetryBackoff: 100 * time.Microsecond,
	}, tasks)
	if err == nil {
		t.Fatal("terminal failure not reported")
	}
	if calls != 4 {
		t.Fatalf("%d executions; want initial + 3 retries", calls)
	}
	if rep.Failed != 1 || res[0].Err == nil {
		t.Fatalf("report %+v, err %v", rep, res[0].Err)
	}
}

func TestTimeoutCancelsAttempt(t *testing.T) {
	tasks := []Task{{
		ID: 0, Class: Solve, Timeout: 5 * time.Millisecond, Retries: -1,
		Run: func(ctx context.Context) (interface{}, error) {
			select {
			case <-time.After(time.Second):
				return nil, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	}}
	start := time.Now()
	res, _, err := Run(context.Background(), Config{SolveWorkers: 1, ContractWorkers: 1}, tasks)
	if err == nil || !errors.Is(res[0].Err, context.DeadlineExceeded) {
		t.Fatalf("timeout not surfaced: %v / %v", err, res[0].Err)
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Fatal("timed-out task ran to completion")
	}
}

func TestCancellationAbortsPool(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p, err := New(ctx, Config{SolveWorkers: 1, ContractWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	blocker := Task{ID: 0, Class: Solve, Run: func(c context.Context) (interface{}, error) {
		close(started)
		<-c.Done()
		return nil, c.Err()
	}}
	if err := p.Submit(blocker); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 5; i++ {
		if err := p.Submit(sleepTask(i, Solve, time.Millisecond)); err != nil {
			t.Fatal(err)
		}
	}
	p.Close()
	<-started
	cancel()
	res, rep, err := p.Wait()
	if err == nil {
		t.Fatal("cancelled pool reported success")
	}
	if rep.Failed == 0 {
		t.Fatalf("no failures after cancellation: %+v", rep)
	}
	for _, r := range res {
		if r.Err == nil {
			t.Fatalf("task %d succeeded after cancellation before it could start", r.Task.ID)
		}
	}
}

func TestDependencyFailureCascades(t *testing.T) {
	tasks := []Task{
		{ID: 0, Class: Solve, Retries: -1, Run: func(context.Context) (interface{}, error) {
			return nil, errors.New("solve died")
		}},
		sleepTask(1, Contract, time.Millisecond, 0),
		sleepTask(2, Contract, time.Millisecond, 1),
		sleepTask(3, Solve, time.Millisecond),
	}
	res, rep, err := Run(context.Background(), Config{SolveWorkers: 2, ContractWorkers: 2}, tasks)
	if err == nil {
		t.Fatal("failure not reported")
	}
	if res[1].Err == nil || res[2].Err == nil {
		t.Fatal("dependents of a failed task did not fail")
	}
	if res[3].Err != nil {
		t.Fatal("independent task caught the cascade")
	}
	if rep.Failed != 3 || rep.Succeeded != 1 {
		t.Fatalf("report %+v", rep)
	}
}

func TestDanglingDependencyFailsOnClose(t *testing.T) {
	p, err := New(context.Background(), Config{SolveWorkers: 1, ContractWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Submit(sleepTask(0, Solve, time.Millisecond, 99)); err != nil {
		t.Fatal(err)
	}
	p.Close()
	res, _, err := p.Wait()
	if err == nil || res[0].Err == nil {
		t.Fatal("dangling dependency not surfaced")
	}
}

func TestDependencyCycleDetected(t *testing.T) {
	p, err := New(context.Background(), Config{SolveWorkers: 1, ContractWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Submit(sleepTask(0, Solve, time.Millisecond, 1)); err != nil {
		t.Fatal(err)
	}
	if err := p.Submit(sleepTask(1, Solve, time.Millisecond, 0)); err != nil {
		t.Fatal(err)
	}
	p.Close()
	done := make(chan struct{})
	var res []Result
	var werr error
	go func() {
		res, _, werr = p.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Wait hung on a dependency cycle")
	}
	if werr == nil || res[0].Err == nil || res[1].Err == nil {
		t.Fatal("cycle not surfaced as task errors")
	}
}

func TestBackpressureBoundsRunnableBacklog(t *testing.T) {
	p, err := New(context.Background(), Config{
		SolveWorkers: 1, ContractWorkers: 1, QueueDepth: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	submitted := make(chan int, 64)
	go func() {
		for i := 0; i < 10; i++ {
			if err := p.Submit(sleepTask(i, Solve, 2*time.Millisecond)); err != nil {
				break
			}
			submitted <- i
		}
		p.Close()
		close(submitted)
	}()
	// With depth 2 and 2ms tasks, all 10 submissions cannot land
	// instantly: the producer must have been throttled at least once.
	time.Sleep(time.Millisecond)
	early := len(submitted)
	if early > 3 {
		t.Fatalf("%d tasks admitted immediately despite QueueDepth 2", early)
	}
	if _, rep, err := p.Wait(); err != nil || rep.Succeeded != 10 {
		t.Fatalf("drain failed: %v %+v", err, rep)
	}
}

func TestSubmitValidation(t *testing.T) {
	p, err := New(context.Background(), Config{SolveWorkers: 2, ContractWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Submit(Task{ID: 0, Class: Solve}); err == nil {
		t.Fatal("task without Run accepted")
	}
	if err := p.Submit(Task{ID: 0, Class: Class(9), Run: func(context.Context) (interface{}, error) { return nil, nil }}); err == nil {
		t.Fatal("unknown class accepted")
	}
	if err := p.Submit(sleepTask(0, Solve, 0, 0)); err == nil {
		t.Fatal("self-dependency accepted")
	}
	wide := sleepTask(0, Solve, 0)
	wide.Slots = 3
	if err := p.Submit(wide); err == nil {
		t.Fatal("task wider than its class accepted")
	}
	if err := p.Submit(sleepTask(7, Solve, time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if err := p.Submit(sleepTask(7, Solve, time.Millisecond)); err == nil {
		t.Fatal("duplicate ID accepted")
	}
	p.Close()
	if err := p.Submit(sleepTask(8, Solve, time.Millisecond)); err == nil {
		t.Fatal("submit after Close accepted")
	}
	if _, _, err := p.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidatesBatch(t *testing.T) {
	if _, _, err := Run(context.Background(), Config{}, []Task{
		sleepTask(0, Solve, 0), sleepTask(0, Solve, 0),
	}); err == nil {
		t.Fatal("duplicate IDs accepted")
	}
	if _, _, err := Run(context.Background(), Config{}, []Task{
		sleepTask(0, Solve, 0, 42),
	}); err == nil {
		t.Fatal("dangling dependency accepted")
	}
	if err := (Config{Fault: fault.Plan{Transient: 1.5}}).Validate(); err == nil {
		t.Fatal("fault rate 1.5 accepted")
	}
	if err := (Config{Fault: fault.Plan{Hang: 0.1}}).Validate(); err == nil {
		t.Fatal("hang injection without watchdog or timeout accepted")
	}
}
