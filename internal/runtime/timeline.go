package runtime

import (
	"fmt"
	"strings"
	"time"

	"femtoverse/internal/obs"
)

// Trace lane convention: the scheduler's control events live on pid 0,
// and each worker class gets its own process lane with one thread per
// worker - mirroring the simulator's node-lane Gantt and making the
// Perfetto view read like the paper's Figs. 5-7.
const controlPID = 0

// classPID maps a worker class to its trace process lane.
func classPID(c Class) int { return int(c) + 1 }

// poolMetrics holds the pool's metric instruments, resolved once at New.
// With no registry every field is a nil no-op, so the hot paths carry the
// calls unconditionally.
type poolMetrics struct {
	attempts         *obs.Counter
	failures         *obs.Counter
	retries          *obs.Counter
	backfills        *obs.Counter
	requeues         *obs.Counter
	quarantines      *obs.Counter
	watchdogKills    *obs.Counter
	domainCasualties *obs.Counter
	recoveredPanics  *obs.Counter
	refused          *obs.Counter
	attemptSeconds   *obs.Histogram
	queueWaitSeconds *obs.Histogram
}

func newPoolMetrics(r *obs.Registry) poolMetrics {
	return poolMetrics{
		attempts:         r.Counter("runtime.attempts"),
		failures:         r.Counter("runtime.failed_attempts"),
		retries:          r.Counter("runtime.retries"),
		backfills:        r.Counter("runtime.backfills"),
		requeues:         r.Counter("runtime.requeues"),
		quarantines:      r.Counter("runtime.quarantines"),
		watchdogKills:    r.Counter("runtime.watchdog_kills"),
		domainCasualties: r.Counter("runtime.domain_casualties"),
		recoveredPanics:  r.Counter("runtime.recovered_panics"),
		refused:          r.Counter("runtime.refused"),
		attemptSeconds:   r.Histogram("runtime.attempt_seconds", nil),
		queueWaitSeconds: r.Histogram("runtime.queue_wait_seconds", nil),
	}
}

// segment is one completed attempt's slot occupancy, relative to the
// pool's allocation clock: the raw material of the live timeline.
type segment struct {
	class      Class
	start, end time.Duration
	slots      int
	backfilled bool
}

// TimelineBucket aggregates class occupancy over one fixed slice of the
// busy window. Fractions are of the class's total workers; Backfill is
// the portion of Busy contributed by backfilled tasks (the idle-time
// recovery the paper quotes, ~25% in Fig. 7).
type TimelineBucket struct {
	Start            time.Duration
	SolveBusy        float64
	SolveBackfill    float64
	ContractBusy     float64
	ContractBackfill float64
}

// Timeline is the live per-class utilization timeline the pool assembles
// from completed attempts: the real-execution analogue of the cluster
// simulator's Gantt chart and the paper's utilization traces (Figs. 5-7).
type Timeline struct {
	// Start is the allocation-elapsed instant of the first bucket;
	// BucketWidth the slice length; Buckets the per-slice occupancy.
	Start           time.Duration
	BucketWidth     time.Duration
	Buckets         []TimelineBucket
	SolveWorkers    int
	ContractWorkers int
}

// timelineBuckets is the resolution of the assembled timeline.
const timelineBuckets = 60

// buildTimeline slices the busy window into fixed buckets and integrates
// each segment's slot-seconds into the slices it overlaps.
func buildTimeline(segs []segment, start, end time.Duration, solveW, contractW int) Timeline {
	tl := Timeline{SolveWorkers: solveW, ContractWorkers: contractW}
	if end <= start || len(segs) == 0 {
		return tl
	}
	n := timelineBuckets
	width := (end - start) / time.Duration(n)
	if width <= 0 {
		width = time.Nanosecond
		n = int((end - start) / width)
	}
	tl.Start = start
	tl.BucketWidth = width
	tl.Buckets = make([]TimelineBucket, n)
	for i := range tl.Buckets {
		tl.Buckets[i].Start = start + time.Duration(i)*width
	}
	for _, s := range segs {
		lo := s.start
		if lo < start {
			lo = start
		}
		hi := s.end
		if hi > end {
			hi = end
		}
		for b := int((lo - start) / width); b < n && tl.Buckets[b].Start < hi; b++ {
			bs := tl.Buckets[b].Start
			be := bs + width
			if bs < lo {
				bs = lo
			}
			if be > hi {
				be = hi
			}
			if be <= bs {
				continue
			}
			// Busy worker-seconds of this segment inside this bucket,
			// normalized to a fraction of the class width over the slice.
			frac := float64(s.slots) * float64(be-bs) / (float64(width) * classWidthOf(s.class, solveW, contractW))
			switch s.class {
			case Solve:
				tl.Buckets[b].SolveBusy += frac
				if s.backfilled {
					tl.Buckets[b].SolveBackfill += frac
				}
			default:
				tl.Buckets[b].ContractBusy += frac
				if s.backfilled {
					tl.Buckets[b].ContractBackfill += frac
				}
			}
		}
	}
	return tl
}

func classWidthOf(c Class, solveW, contractW int) float64 {
	if c == Solve {
		return float64(solveW)
	}
	return float64(contractW)
}

// BusySeconds integrates a class's busy worker-seconds over the timeline:
// the quantity cross-checked against Report.SolveBusy/ContractBusy and
// against the trace's per-lane span durations.
func (tl Timeline) BusySeconds(c Class) float64 {
	w := classWidthOf(c, tl.SolveWorkers, tl.ContractWorkers)
	var sum float64
	for _, b := range tl.Buckets {
		if c == Solve {
			sum += b.SolveBusy
		} else {
			sum += b.ContractBusy
		}
	}
	return sum * tl.BucketWidth.Seconds() * w
}

// glyphFor renders one bucket's busy fraction as a density glyph.
func glyphFor(frac float64) byte {
	switch {
	case frac <= 0.001:
		return '.'
	case frac < 0.25:
		return ':'
	case frac < 0.5:
		return '-'
	case frac < 0.75:
		return '='
	default:
		return '#'
	}
}

// Render draws the timeline as two ASCII utilization rows, one per worker
// class, time flowing right: the quick-look answer to "what did the
// allocation actually do", next to the simulator's Gantt.
func (tl Timeline) Render() string {
	if len(tl.Buckets) == 0 {
		return "(empty timeline)\n"
	}
	var b strings.Builder
	span := time.Duration(len(tl.Buckets)) * tl.BucketWidth
	fmt.Fprintf(&b, "utilization: %d buckets x %v ('.' idle, ':' <25%%, '-' <50%%, '=' <75%%, '#' busy)\n",
		len(tl.Buckets), tl.BucketWidth.Round(time.Microsecond))
	solve := make([]byte, len(tl.Buckets))
	contract := make([]byte, len(tl.Buckets))
	for i, bk := range tl.Buckets {
		solve[i] = glyphFor(bk.SolveBusy)
		contract[i] = glyphFor(bk.ContractBusy)
	}
	fmt.Fprintf(&b, "solve    |%s|\n", string(solve))
	fmt.Fprintf(&b, "contract |%s|\n", string(contract))
	fmt.Fprintf(&b, "window: %v .. %v of the allocation\n",
		tl.Start.Round(time.Microsecond), (tl.Start + span).Round(time.Microsecond))
	return b.String()
}
