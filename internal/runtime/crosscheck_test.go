package runtime

import (
	"context"
	"math"
	"testing"
	"time"

	"femtoverse/internal/cluster"
	"femtoverse/internal/mpijm"
)

// TestUtilizationMatchesClusterSimulator keeps the real executor and the
// discrete-event simulator mutually honest: the same task mix - eight
// solves of two duration classes with a dependent contraction each - is
// run live on the goroutine pool and simulated on an equivalent
// allocation under the mpi_jm policy, and the solve/GPU utilization of
// the two reports must agree. The simulator is exact while the live run
// pays goroutine-scheduling overheads, so the comparison carries a
// tolerance, but a scheduler bug (serialized solves, lost backfill,
// idle workers) moves utilization by far more than the slack.
func TestUtilizationMatchesClusterSimulator(t *testing.T) {
	const (
		nSolve     = 8
		longSolve  = 0.12 // seconds
		shortSolve = 0.06
		contractD  = 0.02
		workers    = 4
	)
	solveDur := func(i int) float64 {
		if i%2 == 0 {
			return longSolve
		}
		return shortSolve
	}

	// Live execution on the goroutine runtime.
	var tasks []Task
	for i := 0; i < nSolve; i++ {
		d := time.Duration(solveDur(i) * float64(time.Second))
		tasks = append(tasks, sleepTask(i, Solve, d))
		tasks = append(tasks, sleepTask(nSolve+i, Contract,
			time.Duration(contractD*float64(time.Second)), i))
	}
	_, rep, err := Run(context.Background(), Config{
		SolveWorkers: workers, ContractWorkers: workers,
	}, tasks)
	if err != nil {
		t.Fatal(err)
	}

	// The equivalent allocation in the simulator: one GPU per node so a
	// solve slot maps to a node, contractions co-scheduled by mpi_jm.
	var simTasks []cluster.Task
	for i := 0; i < nSolve; i++ {
		simTasks = append(simTasks, cluster.Task{
			ID: i, Kind: cluster.GPUTask, GPUs: 1, Seconds: solveDur(i),
		})
		simTasks = append(simTasks, cluster.Task{
			ID: nSolve + i, Kind: cluster.CPUTask, CPUs: 1, Seconds: contractD,
			DependsOn: []int{i},
		})
	}
	simRep, err := cluster.Run(cluster.Config{
		Nodes: workers, GPUsPerNode: 1, CPUSlotsPerNode: 2, Seed: 1,
	}, simTasks, mpijm.New(mpijm.Params{
		LumpNodes: workers, BlockNodes: 2,
		SpawnOverhead: 1e-4, SolveEfficiency: 1, CoSchedule: true,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if simRep.TasksDone != 2*nSolve || rep.Succeeded != 2*nSolve {
		t.Fatalf("task counts: sim %d, live %d", simRep.TasksDone, rep.Succeeded)
	}

	if diff := math.Abs(rep.SolveUtil - simRep.GPUUtil); diff > 0.15 {
		t.Fatalf("solve utilization disagrees: live %.3f vs simulated %.3f (|diff| %.3f)",
			rep.SolveUtil, simRep.GPUUtil, diff)
	}

	// Both accountings must agree on the integrated busy time too: the
	// live pool's solve busy-seconds against the simulator's GPU busy
	// seconds (identical nominal durations).
	liveBusy := rep.SolveBusy.Seconds()
	if diff := math.Abs(liveBusy - simRep.GPUBusy); diff > 0.15*simRep.GPUBusy {
		t.Fatalf("busy seconds disagree: live %.3f vs simulated %.3f", liveBusy, simRep.GPUBusy)
	}
}
