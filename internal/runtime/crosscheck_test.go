package runtime

import (
	"context"
	"math"
	"testing"
	"time"

	"femtoverse/internal/cluster"
	"femtoverse/internal/fault"
	"femtoverse/internal/mpijm"
)

// TestUtilizationMatchesClusterSimulator keeps the real executor and the
// discrete-event simulator mutually honest: the same task mix - eight
// solves of two duration classes with a dependent contraction each - is
// run live on the goroutine pool and simulated on an equivalent
// allocation under the mpi_jm policy, and the solve/GPU utilization of
// the two reports must agree. The simulator is exact while the live run
// pays goroutine-scheduling overheads, so the comparison carries a
// tolerance, but a scheduler bug (serialized solves, lost backfill,
// idle workers) moves utilization by far more than the slack.
func TestUtilizationMatchesClusterSimulator(t *testing.T) {
	const (
		nSolve     = 8
		longSolve  = 0.12 // seconds
		shortSolve = 0.06
		contractD  = 0.02
		workers    = 4
	)
	solveDur := func(i int) float64 {
		if i%2 == 0 {
			return longSolve
		}
		return shortSolve
	}

	// Live execution on the goroutine runtime.
	var tasks []Task
	for i := 0; i < nSolve; i++ {
		d := time.Duration(solveDur(i) * float64(time.Second))
		tasks = append(tasks, sleepTask(i, Solve, d))
		tasks = append(tasks, sleepTask(nSolve+i, Contract,
			time.Duration(contractD*float64(time.Second)), i))
	}
	_, rep, err := Run(context.Background(), Config{
		SolveWorkers: workers, ContractWorkers: workers,
	}, tasks)
	if err != nil {
		t.Fatal(err)
	}

	// The equivalent allocation in the simulator: one GPU per node so a
	// solve slot maps to a node, contractions co-scheduled by mpi_jm.
	var simTasks []cluster.Task
	for i := 0; i < nSolve; i++ {
		simTasks = append(simTasks, cluster.Task{
			ID: i, Kind: cluster.GPUTask, GPUs: 1, Seconds: solveDur(i),
		})
		simTasks = append(simTasks, cluster.Task{
			ID: nSolve + i, Kind: cluster.CPUTask, CPUs: 1, Seconds: contractD,
			DependsOn: []int{i},
		})
	}
	simRep, err := cluster.Run(cluster.Config{
		Nodes: workers, GPUsPerNode: 1, CPUSlotsPerNode: 2, Seed: 1,
	}, simTasks, mpijm.New(mpijm.Params{
		LumpNodes: workers, BlockNodes: 2,
		SpawnOverhead: 1e-4, SolveEfficiency: 1, CoSchedule: true,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if simRep.TasksDone != 2*nSolve || rep.Succeeded != 2*nSolve {
		t.Fatalf("task counts: sim %d, live %d", simRep.TasksDone, rep.Succeeded)
	}

	if diff := math.Abs(rep.SolveUtil - simRep.GPUUtil); diff > 0.15 {
		t.Fatalf("solve utilization disagrees: live %.3f vs simulated %.3f (|diff| %.3f)",
			rep.SolveUtil, simRep.GPUUtil, diff)
	}

	// Both accountings must agree on the integrated busy time too: the
	// live pool's solve busy-seconds against the simulator's GPU busy
	// seconds (identical nominal durations).
	liveBusy := rep.SolveBusy.Seconds()
	if diff := math.Abs(liveBusy - simRep.GPUBusy); diff > 0.15*simRep.GPUBusy {
		t.Fatalf("busy seconds disagree: live %.3f vs simulated %.3f", liveBusy, simRep.GPUBusy)
	}
}

// TestFaultInjectionMatchesClusterSimulator keeps the two consumers of
// the chaos engine mutually honest: the live goroutine pool and the
// discrete-event cluster simulator, given the same transient-only plan
// over the same task IDs, must inject the identical per-task failure
// counts and the identical per-kind fault totals - the draws are keyed
// by task identity and attempt, so neither executor's scheduling can
// leak into the fault sequence.
func TestFaultInjectionMatchesClusterSimulator(t *testing.T) {
	const nTasks = 24
	plan := fault.Plan{Seed: 31, Transient: 0.3, MaxInjections: 6}

	// Live execution.
	var tasks []Task
	for i := 0; i < nTasks; i++ {
		i := i
		tasks = append(tasks, Task{ID: i, Class: Solve,
			Run: func(context.Context) (interface{}, error) { return i, nil }})
	}
	_, rep, err := Run(context.Background(), Config{
		SolveWorkers: 4, ContractWorkers: 1,
		MaxRetries: 20, RetryBackoff: 50 * time.Microsecond,
		Fault: plan,
	}, tasks)
	if err != nil {
		t.Fatal(err)
	}

	// Simulation of the same task IDs under the same plan.
	var simTasks []cluster.Task
	for i := 0; i < nTasks; i++ {
		simTasks = append(simTasks, cluster.Task{
			ID: i, Kind: cluster.GPUTask, GPUs: 1, Seconds: 10,
		})
	}
	simRep, err := cluster.Run(cluster.Config{
		Nodes: 4, GPUsPerNode: 1, CPUSlotsPerNode: 2, Seed: 1,
		Fault: plan, MaxRetries: 20,
	}, simTasks, mpijm.New(mpijm.Params{
		LumpNodes: 4, BlockNodes: 2,
		SpawnOverhead: 1e-4, SolveEfficiency: 1, CoSchedule: true,
	}))
	if err != nil {
		t.Fatal(err)
	}

	if rep.Faults != simRep.Faults {
		t.Fatalf("fault totals disagree: live %v vs simulated %v", rep.Faults, simRep.Faults)
	}
	if rep.Faults.Transient == 0 {
		t.Fatal("plan injected nothing; the crosscheck is vacuous")
	}
	simFailed := make([]int, nTasks)
	for _, st := range simRep.PerTask {
		if st.Failed {
			simFailed[st.Task.ID]++
		}
	}
	liveRes, _, err := Run(context.Background(), Config{
		SolveWorkers: 1, ContractWorkers: 1,
		MaxRetries: 20, RetryBackoff: 50 * time.Microsecond,
		Fault: plan,
	}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nTasks; i++ {
		if liveFailed := liveRes[i].Metrics.Attempts - 1; liveFailed != simFailed[i] {
			t.Fatalf("task %d: live injected %d failures, simulator %d",
				i, liveFailed, simFailed[i])
		}
	}
}
