package runtime

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"femtoverse/internal/cluster"
	"femtoverse/internal/fault"
	"femtoverse/internal/metaq"
	"femtoverse/internal/mpijm"
)

// TestUtilizationMatchesClusterSimulator keeps the real executor and the
// discrete-event simulator mutually honest: the same task mix - eight
// solves of two duration classes with a dependent contraction each - is
// run live on the goroutine pool and simulated on an equivalent
// allocation under the mpi_jm policy, and the solve/GPU utilization of
// the two reports must agree. The simulator is exact while the live run
// pays goroutine-scheduling overheads, so the comparison carries a
// tolerance, but a scheduler bug (serialized solves, lost backfill,
// idle workers) moves utilization by far more than the slack.
func TestUtilizationMatchesClusterSimulator(t *testing.T) {
	const (
		nSolve     = 8
		longSolve  = 0.12 // seconds
		shortSolve = 0.06
		contractD  = 0.02
		workers    = 4
	)
	solveDur := func(i int) float64 {
		if i%2 == 0 {
			return longSolve
		}
		return shortSolve
	}

	// Live execution on the goroutine runtime.
	var tasks []Task
	for i := 0; i < nSolve; i++ {
		d := time.Duration(solveDur(i) * float64(time.Second))
		tasks = append(tasks, sleepTask(i, Solve, d))
		tasks = append(tasks, sleepTask(nSolve+i, Contract,
			time.Duration(contractD*float64(time.Second)), i))
	}
	_, rep, err := Run(context.Background(), Config{
		SolveWorkers: workers, ContractWorkers: workers,
	}, tasks)
	if err != nil {
		t.Fatal(err)
	}

	// The equivalent allocation in the simulator: one GPU per node so a
	// solve slot maps to a node, contractions co-scheduled by mpi_jm.
	var simTasks []cluster.Task
	for i := 0; i < nSolve; i++ {
		simTasks = append(simTasks, cluster.Task{
			ID: i, Kind: cluster.GPUTask, GPUs: 1, Seconds: solveDur(i),
		})
		simTasks = append(simTasks, cluster.Task{
			ID: nSolve + i, Kind: cluster.CPUTask, CPUs: 1, Seconds: contractD,
			DependsOn: []int{i},
		})
	}
	simRep, err := cluster.Run(cluster.Config{
		Nodes: workers, GPUsPerNode: 1, CPUSlotsPerNode: 2, Seed: 1,
	}, simTasks, mpijm.New(mpijm.Params{
		LumpNodes: workers, BlockNodes: 2,
		SpawnOverhead: 1e-4, SolveEfficiency: 1, CoSchedule: true,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if simRep.TasksDone != 2*nSolve || rep.Succeeded != 2*nSolve {
		t.Fatalf("task counts: sim %d, live %d", simRep.TasksDone, rep.Succeeded)
	}

	if diff := math.Abs(rep.SolveUtil - simRep.GPUUtil); diff > 0.15 {
		t.Fatalf("solve utilization disagrees: live %.3f vs simulated %.3f (|diff| %.3f)",
			rep.SolveUtil, simRep.GPUUtil, diff)
	}

	// Both accountings must agree on the integrated busy time too: the
	// live pool's solve busy-seconds against the simulator's GPU busy
	// seconds (identical nominal durations).
	liveBusy := rep.SolveBusy.Seconds()
	if diff := math.Abs(liveBusy - simRep.GPUBusy); diff > 0.15*simRep.GPUBusy {
		t.Fatalf("busy seconds disagree: live %.3f vs simulated %.3f", liveBusy, simRep.GPUBusy)
	}
}

// TestFaultInjectionMatchesClusterSimulator keeps the two consumers of
// the chaos engine mutually honest: the live goroutine pool and the
// discrete-event cluster simulator, given the same transient-only plan
// over the same task IDs, must inject the identical per-task failure
// counts and the identical per-kind fault totals - the draws are keyed
// by task identity and attempt, so neither executor's scheduling can
// leak into the fault sequence.
func TestFaultInjectionMatchesClusterSimulator(t *testing.T) {
	const nTasks = 24
	plan := fault.Plan{Seed: 31, Transient: 0.3, MaxInjections: 6}

	// Live execution.
	var tasks []Task
	for i := 0; i < nTasks; i++ {
		i := i
		tasks = append(tasks, Task{ID: i, Class: Solve,
			Run: func(context.Context) (interface{}, error) { return i, nil }})
	}
	_, rep, err := Run(context.Background(), Config{
		SolveWorkers: 4, ContractWorkers: 1,
		MaxRetries: 20, RetryBackoff: 50 * time.Microsecond,
		Fault: plan,
	}, tasks)
	if err != nil {
		t.Fatal(err)
	}

	// Simulation of the same task IDs under the same plan.
	var simTasks []cluster.Task
	for i := 0; i < nTasks; i++ {
		simTasks = append(simTasks, cluster.Task{
			ID: i, Kind: cluster.GPUTask, GPUs: 1, Seconds: 10,
		})
	}
	simRep, err := cluster.Run(cluster.Config{
		Nodes: 4, GPUsPerNode: 1, CPUSlotsPerNode: 2, Seed: 1,
		Fault: plan, MaxRetries: 20,
	}, simTasks, mpijm.New(mpijm.Params{
		LumpNodes: 4, BlockNodes: 2,
		SpawnOverhead: 1e-4, SolveEfficiency: 1, CoSchedule: true,
	}))
	if err != nil {
		t.Fatal(err)
	}

	if rep.Faults != simRep.Faults {
		t.Fatalf("fault totals disagree: live %v vs simulated %v", rep.Faults, simRep.Faults)
	}
	if rep.Faults.Transient == 0 {
		t.Fatal("plan injected nothing; the crosscheck is vacuous")
	}
	simFailed := make([]int, nTasks)
	for _, st := range simRep.PerTask {
		if st.Failed {
			simFailed[st.Task.ID]++
		}
	}
	liveRes, _, err := Run(context.Background(), Config{
		SolveWorkers: 1, ContractWorkers: 1,
		MaxRetries: 20, RetryBackoff: 50 * time.Microsecond,
		Fault: plan,
	}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nTasks; i++ {
		if liveFailed := liveRes[i].Metrics.Attempts - 1; liveFailed != simFailed[i] {
			t.Fatalf("task %d: live injected %d failures, simulator %d",
				i, liveFailed, simFailed[i])
		}
	}
}

// TestAdmissionMatchesClusterSimulator holds the live runtime's budget
// admission and the simulator's allocation admission to the same
// decisions on a shared plan: tasks sized well inside the allocation are
// admitted everywhere, tasks sized well outside it are refused
// everywhere - including their dependents - and the live decision is
// invariant across worker counts. The plan keeps an order of magnitude
// between every estimate and the wall so the decisions are properties of
// the plan, not of scheduling timing.
func TestAdmissionMatchesClusterSimulator(t *testing.T) {
	const (
		nSmall  = 6
		smallD  = 0.01  // seconds: fits 2s wall with 200x margin
		bigD    = 100.0 // exceeds the wall 50x: refused everywhere
		wall    = 2.0
		monster = nSmall     // ID of the oversized solve
		dep     = nSmall + 1 // ID of its dependent contraction
	)

	refusedIn := func(workers int) map[int]bool {
		t.Helper()
		var tasks []Task
		for i := 0; i < nSmall; i++ {
			tasks = append(tasks, sleepTask(i, Solve, time.Duration(smallD*float64(time.Second))))
		}
		big := sleepTask(monster, Solve, time.Duration(bigD*float64(time.Second)))
		tasks = append(tasks, big)
		tasks = append(tasks, sleepTask(dep, Contract, time.Millisecond, monster))
		results, rep, err := Run(context.Background(), Config{
			SolveWorkers: workers, ContractWorkers: 1,
			Budget: Budget{WallClock: time.Duration(wall * float64(time.Second)), DrainGrace: 100 * time.Millisecond},
		}, tasks)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Stranded != 0 {
			t.Fatalf("plan not timing-robust: %d stranded at %d workers", rep.Stranded, workers)
		}
		refused := map[int]bool{}
		for _, r := range results {
			if errors.Is(r.Err, ErrRefused) {
				refused[r.Task.ID] = true
			}
		}
		return refused
	}

	// Simulator: the same IDs and durations on a bounded allocation under
	// admission control.
	var simTasks []cluster.Task
	for i := 0; i < nSmall; i++ {
		simTasks = append(simTasks, cluster.Task{ID: i, Kind: cluster.GPUTask, GPUs: 1, Seconds: smallD})
	}
	simTasks = append(simTasks, cluster.Task{ID: monster, Kind: cluster.GPUTask, GPUs: 1, Seconds: bigD})
	simTasks = append(simTasks, cluster.Task{
		ID: dep, Kind: cluster.CPUTask, CPUs: 1, Seconds: 0.001, DependsOn: []int{monster},
	})
	// METAQ has zero startup, so the whole simulated allocation is live
	// dispatch time - matching the pool, whose clock starts at New.
	simRep, err := cluster.Run(cluster.Config{
		Nodes: 2, GPUsPerNode: 1, CPUSlotsPerNode: 2, Seed: 1,
		AllocationSeconds: wall, AdmissionControl: true,
	}, simTasks, metaq.Policy{LaunchOverhead: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	simStarted := map[int]bool{}
	for _, st := range simRep.PerTask {
		simStarted[st.Task.ID] = true
	}
	simRefused := map[int]bool{}
	for _, st := range simTasks {
		if !simStarted[st.ID] {
			simRefused[st.ID] = true
		}
	}
	if simRep.Refused != len(simRefused) || simRep.StrandedTasks != 0 {
		t.Fatalf("simulator: %d refused (want %d), %d stranded", simRep.Refused, len(simRefused), simRep.StrandedTasks)
	}

	want := map[int]bool{monster: true, dep: true}
	if !mapsEqual(simRefused, want) {
		t.Fatalf("simulator refused %v, want %v", simRefused, want)
	}
	for _, workers := range []int{1, 2, 4} {
		if got := refusedIn(workers); !mapsEqual(got, want) {
			t.Fatalf("live runtime at %d workers refused %v, want %v (simulator agrees on %v)",
				workers, got, want, simRefused)
		}
	}
}

func mapsEqual(a, b map[int]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}
