package runtime

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"femtoverse/internal/fault"
	"femtoverse/internal/obs"
)

// obsScenario runs a small two-class batch with metrics and tracing
// attached and returns everything the crosscheck tests need.
func obsScenario(t *testing.T) (Report, *obs.Registry, *obs.Tracer) {
	t.Helper()
	reg := obs.NewRegistry()
	tr := obs.NewTracer(nil)
	var tasks []Task
	for i := 0; i < 8; i++ {
		tasks = append(tasks, sleepTask(2*i, Solve, 20*time.Millisecond))
		tasks = append(tasks, sleepTask(2*i+1, Contract, 8*time.Millisecond, 2*i))
	}
	_, rep, err := Run(context.Background(), Config{
		SolveWorkers:    4,
		ContractWorkers: 2,
		Metrics:         reg,
		Trace:           tr,
	}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	return rep, reg, tr
}

// TestTimelineMatchesBusyIntegrals pins the live timeline against the
// report's busy worker-second integrals: the bucketed fractions must
// integrate back to the same totals the pool accumulated directly.
func TestTimelineMatchesBusyIntegrals(t *testing.T) {
	rep, _, _ := obsScenario(t)
	if len(rep.Timeline.Buckets) == 0 {
		t.Fatal("timeline empty")
	}
	for _, c := range []Class{Solve, Contract} {
		want := rep.SolveBusy.Seconds()
		if c == Contract {
			want = rep.ContractBusy.Seconds()
		}
		got := rep.Timeline.BusySeconds(c)
		// Attempts starting before firstStart or ending after lastEnd are
		// clipped to the window, so allow a small tolerance.
		if math.Abs(got-want) > 0.10*want+1e-3 {
			t.Fatalf("%v: timeline integrates to %.4fs, report says %.4fs", c, got, want)
		}
	}
	r := rep.Timeline.Render()
	for _, want := range []string{"solve", "contract", "utilization"} {
		if !strings.Contains(r, want) {
			t.Fatalf("render missing %q:\n%s", want, r)
		}
	}
}

// TestTraceAgreesWithReport cross-checks the exported trace against the
// report: per-class busy seconds summed from attempt spans must match the
// pool's own integrals, which is the acceptance criterion for the trace
// being a faithful utilization record.
func TestTraceAgreesWithReport(t *testing.T) {
	rep, _, tr := obsScenario(t)
	busy := tr.BusySeconds("attempt")
	for _, c := range []Class{Solve, Contract} {
		// Spans carry per-attempt wall time; busy integrals weight by
		// slots. Every task here is 1-slot, so the totals must agree.
		reportBusy := rep.SolveBusy.Seconds()
		if c == Contract {
			reportBusy = rep.ContractBusy.Seconds()
		}
		got := busy[classPID(c)]
		if math.Abs(got-reportBusy) > 0.10*reportBusy+1e-3 {
			t.Fatalf("%v: trace busy %.4fs, report busy %.4fs", c, got, reportBusy)
		}
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			PID  int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	spans := 0
	for _, e := range parsed.TraceEvents {
		if e.Ph == "X" {
			spans++
		}
	}
	if spans != 16 {
		t.Fatalf("trace has %d attempt spans, want 16", spans)
	}
}

func TestPoolMetricsCounters(t *testing.T) {
	rep, reg, _ := obsScenario(t)
	s := reg.Snapshot()
	get := func(name string) int64 {
		for _, c := range s.Counters {
			if c.Name == name {
				return c.Value
			}
		}
		t.Fatalf("counter %q missing from snapshot:\n%s", name, s.Text())
		return 0
	}
	if got := get("runtime.attempts"); got != 16 {
		t.Fatalf("attempts = %d", got)
	}
	if got := get("runtime.tasks_succeeded"); got != int64(rep.Succeeded) {
		t.Fatalf("tasks_succeeded = %d, report says %d", got, rep.Succeeded)
	}
	found := false
	for _, g := range s.Gauges {
		if g.Name == "runtime.solve_util" {
			found = true
			if math.Abs(g.Value-rep.SolveUtil) > 1e-9 {
				t.Fatalf("solve_util gauge %v, report %v", g.Value, rep.SolveUtil)
			}
		}
	}
	if !found {
		t.Fatal("solve_util gauge missing")
	}
}

// TestRetryInstantInTrace checks a transient-faulted, retried task emits
// a retry instant on the scheduler lane.
func TestRetryInstantInTrace(t *testing.T) {
	tr := obs.NewTracer(nil)
	_, rep, err := Run(context.Background(), Config{
		SolveWorkers: 2,
		MaxRetries:   2,
		Trace:        tr,
		Fault:        fault.Plan{Seed: 7, Transient: 0.95, MaxInjections: 1},
	}, []Task{sleepTask(1, Solve, 2*time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FailedAttempts == 0 {
		t.Fatal("fault plan injected nothing; test is vacuous")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"retry"`) {
		t.Fatalf("trace missing retry instant:\n%s", buf.String())
	}
}

// TestDrainInstantInTrace checks a drained pool records the drain-soft
// marker on the scheduler lane.
func TestDrainInstantInTrace(t *testing.T) {
	tr := obs.NewTracer(nil)
	p, err := New(context.Background(), Config{SolveWorkers: 2, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Submit(sleepTask(1, Solve, 2*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	p.Drain("test drain")
	p.Close()
	if _, _, err := p.Wait(); err != nil {
		// The in-flight task may finish or strand depending on drain
		// timing; this test only inspects the trace.
		t.Logf("wait after drain: %v", err)
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "drain-soft") {
		t.Fatalf("trace missing drain-soft instant:\n%s", buf.String())
	}
}

// TestUninstrumentedPoolUnchanged pins the no-op default: a pool with no
// registry and no tracer must behave identically (and not crash in any
// instrumented path).
func TestUninstrumentedPoolUnchanged(t *testing.T) {
	var tasks []Task
	for i := 0; i < 6; i++ {
		tasks = append(tasks, sleepTask(i, Solve, time.Millisecond))
	}
	_, rep, err := Run(context.Background(), Config{SolveWorkers: 2}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Succeeded != 6 {
		t.Fatalf("%d succeeded", rep.Succeeded)
	}
	if len(rep.Timeline.Buckets) == 0 {
		t.Fatal("timeline should be built even without a registry")
	}
}
