// Package runtime is the paper's mpi_jm job manager ported from
// simulation to real concurrent execution: where internal/cluster and
// internal/mpijm *model* how thousands of independent solves and
// contractions share an allocation, this package *is* the scheduler - it
// runs them, on goroutines, with the same structure:
//
//   - two worker classes sized from the host CPU count, a solve class
//     (the GPU analogue, wide tasks holding several slots like a 16-GPU
//     propagator job) and a contract class (the CPU analogue), so
//     contractions co-schedule under in-flight solves exactly as mpi_jm
//     overlays CPU tasks on the host cores of GPU-busy nodes (§VII);
//   - a dependency-aware ready queue in submission order with EASY
//     backfilling: when a wide task waits at the head for slots to drain,
//     smaller tasks start in the holes only if they cannot delay the
//     head's reservation;
//   - bounded admission with backpressure (Submit blocks while the
//     runnable backlog is full), per-task context cancellation and
//     timeouts, and bounded retry with exponential backoff over injected
//     or real task failures - the live version of the failure model in
//     cluster/failure_test.go;
//   - per-task lifecycle metrics rolled into a Report whose utilization
//     accounting matches cluster.Report, so the simulator's predictions
//     and the real executor can be cross-checked against each other.
//
// Results are returned in submission order regardless of completion
// order, so a campaign's physics output is independent of scheduling.
package runtime

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	goruntime "runtime"
	"sort"
	"sync"
	"time"
)

// Class is a worker class: the runtime analogue of cluster.TaskKind.
type Class int

const (
	// Solve is the GPU-analog class running the heavy Dirac solves.
	Solve Class = iota
	// Contract is the CPU-analog class running contractions and I/O,
	// co-scheduled under in-flight solves.
	Contract

	numClasses
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Solve:
		return "solve"
	case Contract:
		return "contract"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// ErrInjected is the synthetic failure injected by Config.FailureRate,
// the live analogue of the simulator's node-crash draw.
var ErrInjected = errors.New("runtime: injected task failure")

// Task is one schedulable unit of work.
type Task struct {
	// ID identifies the task; it must be unique within a pool and is the
	// namespace of DependsOn.
	ID   int
	Name string
	// Class selects the worker class.
	Class Class
	// Slots is how many workers of the class the task occupies while
	// running (the analogue of a job's GPU count); 0 means 1.
	Slots int
	// Cost is the estimated duration in seconds used for backfill
	// planning only; 0 means Config.DefaultCost. Estimates never affect
	// correctness, only schedule quality.
	Cost float64
	// DependsOn lists task IDs that must complete successfully before
	// this task starts. A failed dependency fails the task.
	DependsOn []int
	// Timeout bounds one execution attempt (0 = Config.Timeout).
	Timeout time.Duration
	// Retries overrides Config.MaxRetries for this task: 0 uses the pool
	// default, a negative value disables retries.
	Retries int
	// Run does the work. It must honour ctx: a cancelled or timed-out
	// task should stop mid-computation (the solver's CGNE loop does).
	Run func(ctx context.Context) (interface{}, error)
}

// Result is a finished task: its return value, final error, and
// lifecycle metrics.
type Result struct {
	Task    Task
	Value   interface{}
	Err     error
	Metrics TaskMetrics
}

// Config shapes a pool. The zero value is usable: worker counts are
// sized from the host CPU count.
type Config struct {
	// SolveWorkers is the solve-class width (default: NumCPU, every
	// hardware thread doubles as one GPU analogue).
	SolveWorkers int
	// ContractWorkers is the contract-class width (default: a quarter of
	// the solve width, the host cores mpi_jm overlays work onto).
	ContractWorkers int
	// QueueDepth bounds the runnable backlog (ready + running tasks):
	// Submit blocks - backpressure - while it is full. Default
	// 4*(SolveWorkers+ContractWorkers).
	QueueDepth int
	// MaxRetries is the default bound on re-executions after a failed
	// attempt (default 0: no retries).
	MaxRetries int
	// RetryBackoff is the first retry delay, doubled per retry
	// (default 2ms).
	RetryBackoff time.Duration
	// Timeout bounds each execution attempt (0 = none).
	Timeout time.Duration
	// DefaultCost is the planning estimate in seconds for tasks with
	// Cost 0 (default 1).
	DefaultCost float64
	// FailureRate injects a per-execution failure probability, the live
	// mirror of cluster.Config.FailureRate; Seed makes the draw
	// deterministic.
	FailureRate float64
	Seed        int64
}

func (c Config) withDefaults() Config {
	if c.SolveWorkers <= 0 {
		c.SolveWorkers = goruntime.NumCPU()
	}
	if c.ContractWorkers <= 0 {
		c.ContractWorkers = (c.SolveWorkers + 3) / 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * (c.SolveWorkers + c.ContractWorkers)
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 2 * time.Millisecond
	}
	if c.DefaultCost <= 0 {
		c.DefaultCost = 1
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.FailureRate < 0 || c.FailureRate >= 1 {
		return fmt.Errorf("runtime: FailureRate %g outside [0,1)", c.FailureRate)
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("runtime: negative MaxRetries %d", c.MaxRetries)
	}
	return nil
}

type jobState int

const (
	jobBlocked jobState = iota
	jobReady
	jobRunning
	jobDone
)

type job struct {
	t          Task
	seq        int // submission index
	state      jobState
	depsLeft   int
	dependents []*job

	submitted  time.Time
	started    time.Time // first execution start
	estEnd     time.Time // predicted release while running
	slots      int
	workers    []int
	attempts   int
	backfilled bool
	runTotal   time.Duration

	value interface{}
	err   error
}

// Pool is the executing job manager. Create with New, feed with Submit,
// then Close and Wait for the results and the utilization Report.
type Pool struct {
	cfg    Config
	ctx    context.Context
	cancel context.CancelFunc

	mu   sync.Mutex
	room *sync.Cond // signalled when the runnable backlog shrinks
	idle *sync.Cond // signalled when tasks finish

	jobs    map[int]*job
	order   []*job
	waiters map[int][]*job // dep ID not yet submitted -> dependents

	ready       [numClasses][]*job
	free        [numClasses]int
	freeWorkers [numClasses][]int
	runningSet  map[*job]struct{}

	unfinished int
	closed     bool
	rng        *rand.Rand

	firstStart     time.Time
	lastEnd        time.Time
	busy           [numClasses]time.Duration
	failedAttempts int
	backfills      int
}

// New creates a pool. Cancelling ctx aborts in-flight tasks (their Run
// contexts are children of it) and fails everything not yet finished.
func New(ctx context.Context, cfg Config) (*Pool, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	pctx, cancel := context.WithCancel(ctx)
	p := &Pool{
		cfg:        cfg,
		ctx:        pctx,
		cancel:     cancel,
		jobs:       map[int]*job{},
		waiters:    map[int][]*job{},
		runningSet: map[*job]struct{}{},
		rng:        rand.New(rand.NewSource(cfg.Seed ^ 0x6a6d)), // "jm"
	}
	p.room = sync.NewCond(&p.mu)
	p.idle = sync.NewCond(&p.mu)
	p.free[Solve] = cfg.SolveWorkers
	p.free[Contract] = cfg.ContractWorkers
	p.freeWorkers[Solve] = make([]int, cfg.SolveWorkers)
	for i := range p.freeWorkers[Solve] {
		p.freeWorkers[Solve][i] = i
	}
	p.freeWorkers[Contract] = make([]int, cfg.ContractWorkers)
	for i := range p.freeWorkers[Contract] {
		p.freeWorkers[Contract][i] = i
	}
	// Wake blocked Submit/Wait callers when the pool is cancelled.
	go func() {
		<-pctx.Done()
		p.mu.Lock()
		p.room.Broadcast()
		p.idle.Broadcast()
		p.mu.Unlock()
	}()
	return p, nil
}

func (p *Pool) classWidth(c Class) int {
	if c == Solve {
		return p.cfg.SolveWorkers
	}
	return p.cfg.ContractWorkers
}

func (p *Pool) runnableLocked() int {
	n := len(p.runningSet)
	for c := Class(0); c < numClasses; c++ {
		n += len(p.ready[c])
	}
	return n
}

// Submit enqueues a task. It blocks while the runnable backlog is at
// QueueDepth (backpressure); dependencies may reference tasks submitted
// earlier or - as long as backpressure permits - later.
func (p *Pool) Submit(t Task) error {
	if t.Run == nil {
		return errors.New("runtime: task without Run")
	}
	if t.Class != Solve && t.Class != Contract {
		return fmt.Errorf("runtime: task %d has unknown class %d", t.ID, int(t.Class))
	}
	if t.Slots <= 0 {
		t.Slots = 1
	}
	if w := p.classWidth(t.Class); t.Slots > w {
		return fmt.Errorf("runtime: task %d needs %d slots but class %v has %d workers",
			t.ID, t.Slots, t.Class, w)
	}
	for _, dep := range t.DependsOn {
		if dep == t.ID {
			return fmt.Errorf("runtime: task %d depends on itself", t.ID)
		}
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	for !p.closed && p.ctx.Err() == nil && p.runnableLocked() >= p.cfg.QueueDepth {
		p.room.Wait()
	}
	if p.closed {
		return errors.New("runtime: submit on closed pool")
	}
	if err := p.ctx.Err(); err != nil {
		return err
	}
	if _, dup := p.jobs[t.ID]; dup {
		return fmt.Errorf("runtime: duplicate task ID %d", t.ID)
	}

	j := &job{t: t, seq: len(p.order), slots: t.Slots, submitted: time.Now()}
	p.jobs[t.ID] = j
	p.order = append(p.order, j)
	p.unfinished++

	var depErr error
	for _, dep := range t.DependsOn {
		if d, ok := p.jobs[dep]; ok {
			if d.state == jobDone {
				if d.err != nil && depErr == nil {
					depErr = fmt.Errorf("runtime: dependency %d (%s) failed: %w", d.t.ID, d.t.Name, d.err)
				}
				continue
			}
			d.dependents = append(d.dependents, j)
			j.depsLeft++
		} else {
			p.waiters[dep] = append(p.waiters[dep], j)
			j.depsLeft++
		}
	}
	// Earlier submissions waiting for this ID.
	if ws := p.waiters[t.ID]; len(ws) > 0 {
		j.dependents = append(j.dependents, ws...)
		delete(p.waiters, t.ID)
	}
	if depErr != nil {
		p.finishLocked(j, nil, depErr, false)
		return nil
	}
	if j.depsLeft == 0 {
		p.enqueueLocked(j)
	}
	p.dispatchLocked()
	return nil
}

// enqueueLocked inserts a job into its class's ready queue, keeping the
// queue in submission order so head-of-line semantics are deterministic.
func (p *Pool) enqueueLocked(j *job) {
	j.state = jobReady
	q := p.ready[j.t.Class]
	i := sort.Search(len(q), func(k int) bool { return q[k].seq > j.seq })
	q = append(q, nil)
	copy(q[i+1:], q[i:])
	q[i] = j
	p.ready[j.t.Class] = q
}

// Close declares the submission stream complete. Tasks blocked on
// dependencies that were never submitted fail immediately.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	p.failDanglingLocked()
	p.idle.Broadcast()
}

// failDanglingLocked fails every job waiting on a dependency ID that can
// no longer arrive.
func (p *Pool) failDanglingLocked() {
	for id, ws := range p.waiters {
		for _, j := range ws {
			if j.state == jobBlocked && j.err == nil {
				j.err = fmt.Errorf("runtime: task %d depends on task %d, which was never submitted",
					j.t.ID, id)
			}
		}
	}
	p.waiters = map[int][]*job{}
	for _, j := range p.order {
		if j.state == jobBlocked && j.err != nil {
			p.finishLocked(j, nil, j.err, false)
		}
	}
}

// Wait blocks until every submitted task has finished (Close must have
// been called, or the context cancelled) and returns the results in
// submission order, the utilization report, and the first task error in
// submission order, if any. The pool is dead afterwards.
func (p *Pool) Wait() ([]Result, Report, error) {
	p.mu.Lock()
	for {
		if p.ctx.Err() != nil {
			// Cancelled: nothing new starts; fail everything not running.
			p.closed = true
			p.drainCancelledLocked()
			if len(p.runningSet) == 0 && p.unfinished == 0 {
				break
			}
		} else if p.closed {
			if p.unfinished == 0 {
				break
			}
			if len(p.runningSet) == 0 && p.readyEmptyLocked() {
				// The remaining blocked tasks form a dependency cycle.
				for _, j := range p.order {
					if j.state == jobBlocked {
						p.finishLocked(j, nil,
							fmt.Errorf("runtime: task %d blocked by a dependency cycle", j.t.ID), false)
					}
				}
				continue
			}
		}
		p.idle.Wait()
	}
	results, rep := p.collectLocked()
	p.mu.Unlock()
	p.cancel()

	var firstErr error
	for _, r := range results {
		if r.Err != nil {
			firstErr = fmt.Errorf("runtime: task %d (%s): %w", r.Task.ID, r.Task.Name, r.Err)
			break
		}
	}
	return results, rep, firstErr
}

func (p *Pool) readyEmptyLocked() bool {
	for c := Class(0); c < numClasses; c++ {
		if len(p.ready[c]) > 0 {
			return false
		}
	}
	return true
}

// drainCancelledLocked fails every ready or blocked job after the pool
// context was cancelled.
func (p *Pool) drainCancelledLocked() {
	err := p.ctx.Err()
	for c := Class(0); c < numClasses; c++ {
		q := p.ready[c]
		p.ready[c] = nil
		for _, j := range q {
			j.state = jobBlocked // finishLocked path for never-started jobs
			p.finishLocked(j, nil, err, false)
		}
	}
	for _, j := range p.order {
		if j.state == jobBlocked {
			p.finishLocked(j, nil, err, false)
		}
	}
}

// Run executes a batch: submit every task in order, close, wait. Task
// dependencies must stay within the batch; like cluster.Run, dangling
// references are rejected up front.
func Run(ctx context.Context, cfg Config, tasks []Task) ([]Result, Report, error) {
	ids := make(map[int]bool, len(tasks))
	for _, t := range tasks {
		if ids[t.ID] {
			return nil, Report{}, fmt.Errorf("runtime: duplicate task ID %d", t.ID)
		}
		ids[t.ID] = true
	}
	for _, t := range tasks {
		for _, dep := range t.DependsOn {
			if !ids[dep] {
				return nil, Report{}, fmt.Errorf("runtime: task %d depends on unknown task %d", t.ID, dep)
			}
		}
	}
	p, err := New(ctx, cfg)
	if err != nil {
		return nil, Report{}, err
	}
	for _, t := range tasks {
		if err := p.Submit(t); err != nil {
			p.Close()
			//femtolint:ignore errdrop Wait only drains in-flight tasks here; the Submit error below is the one the caller must see
			p.Wait()
			return nil, Report{}, err
		}
	}
	p.Close()
	return p.Wait()
}

func (p *Pool) costOf(j *job) time.Duration {
	c := j.t.Cost
	if c <= 0 {
		c = p.cfg.DefaultCost
	}
	return time.Duration(c * float64(time.Second))
}

// dispatchLocked starts every task the schedule admits right now.
func (p *Pool) dispatchLocked() {
	if p.ctx.Err() != nil {
		return
	}
	for c := Class(0); c < numClasses; c++ {
		for p.dispatchOneLocked(c) {
		}
	}
}

// dispatchOneLocked starts at most one task of the class: the queue head
// if it fits, otherwise the first admissible backfill candidate.
func (p *Pool) dispatchOneLocked(cls Class) bool {
	q := p.ready[cls]
	if len(q) == 0 {
		return false
	}
	now := time.Now()
	head := q[0]
	if head.slots <= p.free[cls] {
		p.ready[cls] = q[1:]
		p.startLocked(head, now, false)
		return true
	}
	running := p.releasesLocked(cls)
	for i, j := range q[1:] {
		if j.slots > p.free[cls] {
			continue
		}
		if backfillOK(now, p.free[cls], head.slots, j.slots, p.costOf(j), running) {
			p.ready[cls] = append(q[:i+1:i+1], q[i+2:]...)
			p.startLocked(j, now, true)
			return true
		}
	}
	return false
}

// releasesLocked lists the predicted slot releases of the class's
// running tasks, ordered by (time, width) so that the backfill planner
// never sees the randomized iteration order of the running set.
func (p *Pool) releasesLocked(cls Class) []release {
	var rs []release
	for j := range p.runningSet {
		if j.t.Class == cls {
			rs = append(rs, release{at: j.estEnd, slots: j.slots})
		}
	}
	sort.Slice(rs, func(i, k int) bool {
		if !rs[i].at.Equal(rs[k].at) {
			return rs[i].at.Before(rs[k].at)
		}
		return rs[i].slots < rs[k].slots
	})
	return rs
}

func (p *Pool) startLocked(j *job, now time.Time, backfilled bool) {
	cls := j.t.Class
	p.free[cls] -= j.slots
	j.workers = append([]int(nil), p.freeWorkers[cls][:j.slots]...)
	p.freeWorkers[cls] = p.freeWorkers[cls][j.slots:]
	j.state = jobRunning
	j.started = now
	j.estEnd = now.Add(p.costOf(j))
	j.backfilled = backfilled
	if backfilled {
		p.backfills++
	}
	if p.firstStart.IsZero() || now.Before(p.firstStart) {
		p.firstStart = now
	}
	p.runningSet[j] = struct{}{}
	go p.execute(j)
}

// execute runs a job's attempts outside the lock, with per-attempt
// timeout and bounded exponential-backoff retry.
func (p *Pool) execute(j *job) {
	maxRetries := p.cfg.MaxRetries
	if j.t.Retries > 0 {
		maxRetries = j.t.Retries
	} else if j.t.Retries < 0 {
		maxRetries = 0
	}
	backoff := p.cfg.RetryBackoff
	var value interface{}
	var err error
	for {
		runCtx := p.ctx
		cancel := context.CancelFunc(func() {})
		timeout := j.t.Timeout
		if timeout == 0 {
			timeout = p.cfg.Timeout
		}
		if timeout > 0 {
			runCtx, cancel = context.WithTimeout(p.ctx, timeout)
		}
		t0 := time.Now()
		value, err = j.t.Run(runCtx)
		cancel()
		dt := time.Since(t0)

		p.mu.Lock()
		j.attempts++
		j.runTotal += dt
		p.busy[j.t.Class] += time.Duration(j.slots) * dt
		if err == nil && p.cfg.FailureRate > 0 && p.rng.Float64() < p.cfg.FailureRate {
			err = ErrInjected
		}
		if err != nil {
			p.failedAttempts++
		}
		retry := err != nil && j.attempts <= maxRetries && p.ctx.Err() == nil
		p.mu.Unlock()

		if !retry {
			break
		}
		select {
		case <-time.After(backoff):
		case <-p.ctx.Done():
		}
		if p.ctx.Err() != nil {
			break
		}
		backoff *= 2
	}
	p.mu.Lock()
	p.finishLocked(j, value, err, true)
	p.dispatchLocked()
	p.mu.Unlock()
}

// finishLocked retires a job: releases its slots, records the result,
// unblocks (or, on error, cascades failure to) its dependents.
func (p *Pool) finishLocked(j *job, value interface{}, err error, wasRunning bool) {
	if j.state == jobDone {
		return
	}
	now := time.Now()
	if wasRunning {
		cls := j.t.Class
		p.free[cls] += j.slots
		p.freeWorkers[cls] = append(p.freeWorkers[cls], j.workers...)
		delete(p.runningSet, j)
		if now.After(p.lastEnd) {
			p.lastEnd = now
		}
	}
	j.state = jobDone
	j.value = value
	j.err = err
	p.unfinished--
	for _, d := range j.dependents {
		if d.state != jobBlocked {
			continue
		}
		if err != nil {
			if d.err == nil {
				d.err = fmt.Errorf("runtime: dependency %d (%s) failed: %w", j.t.ID, j.t.Name, err)
			}
			p.finishLocked(d, nil, d.err, false)
			continue
		}
		d.depsLeft--
		if d.depsLeft == 0 {
			p.enqueueLocked(d)
		}
	}
	p.room.Broadcast()
	p.idle.Broadcast()
}

// collectLocked assembles the submission-ordered results and the report.
func (p *Pool) collectLocked() ([]Result, Report) {
	rep := Report{
		SolveWorkers:    p.cfg.SolveWorkers,
		ContractWorkers: p.cfg.ContractWorkers,
		Tasks:           len(p.order),
		FailedAttempts:  p.failedAttempts,
		Backfills:       p.backfills,
		SolveBusy:       p.busy[Solve],
		ContractBusy:    p.busy[Contract],
	}
	results := make([]Result, len(p.order))
	started := 0
	var waitSum time.Duration
	for i, j := range p.order {
		m := TaskMetrics{
			ID:         j.t.ID,
			Name:       j.t.Name,
			Class:      j.t.Class,
			Slots:      j.slots,
			Attempts:   j.attempts,
			Run:        j.runTotal,
			Workers:    j.workers,
			Backfilled: j.backfilled,
		}
		if !j.started.IsZero() {
			m.QueueWait = j.started.Sub(j.submitted)
			started++
			waitSum += m.QueueWait
			if m.QueueWait > rep.MaxQueueWait {
				rep.MaxQueueWait = m.QueueWait
			}
		}
		if j.err != nil {
			rep.Failed++
		} else {
			rep.Succeeded++
		}
		results[i] = Result{Task: j.t, Value: j.value, Err: j.err, Metrics: m}
		rep.PerTask = append(rep.PerTask, m)
	}
	if started > 0 {
		rep.MeanQueueWait = waitSum / time.Duration(started)
	}
	if !p.firstStart.IsZero() && p.lastEnd.After(p.firstStart) {
		rep.Wall = p.lastEnd.Sub(p.firstStart)
		rep.SolveUtil = float64(p.busy[Solve]) / (float64(p.cfg.SolveWorkers) * float64(rep.Wall))
		rep.ContractUtil = float64(p.busy[Contract]) / (float64(p.cfg.ContractWorkers) * float64(rep.Wall))
	}
	return results, rep
}
