// Package runtime is the paper's mpi_jm job manager ported from
// simulation to real concurrent execution: where internal/cluster and
// internal/mpijm *model* how thousands of independent solves and
// contractions share an allocation, this package *is* the scheduler - it
// runs them, on goroutines, with the same structure:
//
//   - two worker classes sized from the host CPU count, a solve class
//     (the GPU analogue, wide tasks holding several slots like a 16-GPU
//     propagator job) and a contract class (the CPU analogue), so
//     contractions co-schedule under in-flight solves exactly as mpi_jm
//     overlays CPU tasks on the host cores of GPU-busy nodes (§VII);
//   - a dependency-aware ready queue in submission order with EASY
//     backfilling: when a wide task waits at the head for slots to drain,
//     smaller tasks start in the holes only if they cannot delay the
//     head's reservation;
//   - bounded admission with backpressure (Submit blocks while the
//     runnable backlog is full), per-task context cancellation and
//     timeouts, and bounded retry with capped, deterministically jittered
//     exponential backoff;
//   - a fault-tolerance layer over the internal/fault chaos engine:
//     injected faults are keyed by task identity so a chaos run replays
//     exactly at any worker count, worker panics are isolated (the task
//     fails, the worker survives), a watchdog abandons attempts that stop
//     making progress, workers that fail repeatedly are quarantined
//     (mpi_jm's bad-node marking) with their tasks re-routed, and a
//     failure-domain loss kills the in-flight co-domain tasks the way an
//     MPI_Abort takes down a whole lump;
//   - per-task lifecycle metrics rolled into a Report whose utilization
//     and waste accounting match cluster.Report, so the simulator's
//     predictions and the real executor can be cross-checked.
//
// Results are returned in submission order regardless of completion
// order, so a campaign's physics output is independent of scheduling.
package runtime

import (
	"context"
	"errors"
	"fmt"
	goruntime "runtime"
	"sort"
	"sync"
	"time"

	"femtoverse/internal/fault"
	"femtoverse/internal/obs"
)

// Class is a worker class: the runtime analogue of cluster.TaskKind.
type Class int

const (
	// Solve is the GPU-analog class running the heavy Dirac solves.
	Solve Class = iota
	// Contract is the CPU-analog class running contractions and I/O,
	// co-scheduled under in-flight solves.
	Contract

	numClasses
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Solve:
		return "solve"
	case Contract:
		return "contract"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// ErrInjected is the synthetic failure injected by Config.Fault; it
// aliases fault.ErrInjected so errors.Is works across layers.
var ErrInjected = fault.ErrInjected

// ErrPanic wraps a panic recovered from a task's Run: the worker
// goroutine survives, the task fails (and may retry).
var ErrPanic = errors.New("runtime: task panicked")

// ErrWatchdog marks an attempt abandoned by the watchdog: the task's Run
// exceeded the heartbeat deadline without returning, so its slots were
// reclaimed and the stalled goroutine discarded.
var ErrWatchdog = errors.New("runtime: watchdog killed hung task")

// ErrDomainCasualty marks an attempt killed not by its own failure but by
// the loss of its failure domain (another task in the same domain drew a
// DomainLoss fault). Casualty attempts are retried without consuming the
// task's retry budget, mirroring mpi_jm's free requeue after a lump loss.
var ErrDomainCasualty = errors.New("runtime: failure-domain casualty")

// Task is one schedulable unit of work.
type Task struct {
	// ID identifies the task; it must be unique within a pool and is the
	// namespace of DependsOn.
	ID   int
	Name string
	// Class selects the worker class.
	Class Class
	// Slots is how many workers of the class the task occupies while
	// running (the analogue of a job's GPU count); 0 means 1.
	Slots int
	// Cost is the estimated duration in seconds used for backfill
	// planning only; 0 means Config.DefaultCost. Estimates never affect
	// correctness, only schedule quality.
	Cost float64
	// DependsOn lists task IDs that must complete successfully before
	// this task starts. A failed dependency fails the task.
	DependsOn []int
	// Timeout bounds one execution attempt (0 = Config.Timeout).
	Timeout time.Duration
	// Retries overrides Config.MaxRetries for this task: 0 uses the pool
	// default, a negative value disables retries.
	Retries int
	// Run does the work. It must honour ctx: a cancelled or timed-out
	// task should stop mid-computation (the solver's CGNE loop does).
	Run func(ctx context.Context) (interface{}, error)
}

// Result is a finished task: its return value, final error, and
// lifecycle metrics.
type Result struct {
	Task    Task
	Value   interface{}
	Err     error
	Metrics TaskMetrics
}

// Config shapes a pool. The zero value is usable: worker counts are
// sized from the host CPU count.
type Config struct {
	// SolveWorkers is the solve-class width (default: NumCPU, every
	// hardware thread doubles as one GPU analogue).
	SolveWorkers int
	// ContractWorkers is the contract-class width (default: a quarter of
	// the solve width, the host cores mpi_jm overlays work onto).
	ContractWorkers int
	// QueueDepth bounds the runnable backlog (ready + running tasks):
	// Submit blocks - backpressure - while it is full. Default
	// 4*(SolveWorkers+ContractWorkers).
	QueueDepth int
	// MaxRetries is the default bound on re-executions after a failed
	// attempt (default 0: no retries). Failure-domain casualties do not
	// consume the budget.
	MaxRetries int
	// RetryBackoff is the first retry delay, doubled per failed attempt
	// up to MaxBackoff and jittered deterministically from the task seed
	// (default 2ms).
	RetryBackoff time.Duration
	// MaxBackoff caps the exponential retry backoff
	// (default 64*RetryBackoff).
	MaxBackoff time.Duration
	// Timeout bounds each execution attempt (0 = none). Timeouts are
	// cooperative: the attempt's context expires and Run is expected to
	// return.
	Timeout time.Duration
	// Watchdog is the heartbeat deadline on one attempt's wall time.
	// Unlike Timeout it is not cooperative: when it fires, the attempt's
	// context is cancelled AND the attempt is abandoned immediately - its
	// slots are reclaimed and whatever the stalled Run eventually returns
	// is discarded. 0 disables the watchdog.
	Watchdog time.Duration
	// QuarantineAfter benches a worker after this many consecutive failed
	// attempts ran on it (mpi_jm's bad-node marking): the worker stops
	// receiving tasks and the failing task is re-routed to other workers.
	// 0 disables quarantine. A class never quarantines below the widest
	// submitted task (or its last worker), so progress is always possible.
	QuarantineAfter int
	// DomainSize groups workers of a class into failure domains of this
	// many consecutive worker IDs for DomainLoss faults (default 2).
	DomainSize int
	// DefaultCost is the planning estimate in seconds for tasks with
	// Cost 0 (default 1).
	DefaultCost float64
	// Budget is the allocation budget: with WallClock set, the scheduler
	// refuses to admit tasks whose calibrated duration estimate exceeds
	// the remaining wall-clock, and drains gracefully at expiry (see
	// Budget). The zero budget is unbounded.
	Budget Budget
	// Preempt, when non-nil, lets the caller fire the drain path from
	// outside (a SIGTERM handler, an allocation-manager notice): the
	// first value received drains the pool gracefully with the received
	// string as the reason, a second value hard-cancels immediately.
	Preempt <-chan string
	// Fault is the chaos plan: seeded, typed fault injection keyed by
	// task identity (see internal/fault). The zero plan injects nothing.
	Fault fault.Plan
	// Metrics, when non-nil, receives the pool's scheduling counters,
	// attempt-duration histograms, and end-of-run utilization gauges
	// (names under "runtime."). Nil costs nothing on any path.
	Metrics *obs.Registry
	// Trace, when non-nil, records one span per execution attempt on the
	// lane of its lead worker (pid 1 = solve class, pid 2 = contract
	// class, tid = worker ID) plus scheduler instants (retries,
	// quarantines, watchdog kills, domain losses, drain phases, backfills)
	// on the control lane (pid 0), exportable as Chrome trace JSON. The
	// attempt's context carries the worker-lane obs.Scope, so task bodies
	// (the solvers) land their own spans on the same lane.
	Trace *obs.Tracer
}

func (c Config) withDefaults() Config {
	if c.SolveWorkers <= 0 {
		c.SolveWorkers = goruntime.NumCPU()
	}
	if c.ContractWorkers <= 0 {
		c.ContractWorkers = (c.SolveWorkers + 3) / 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * (c.SolveWorkers + c.ContractWorkers)
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 2 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 64 * c.RetryBackoff
	}
	if c.DomainSize <= 0 {
		c.DomainSize = 2
	}
	if c.DefaultCost <= 0 {
		c.DefaultCost = 1
	}
	if c.Budget.DrainGrace <= 0 {
		c.Budget.DrainGrace = time.Second
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Fault.Validate(); err != nil {
		return fmt.Errorf("runtime: %w", err)
	}
	if err := c.Budget.Validate(); err != nil {
		return err
	}
	if c.Fault.Hang > 0 && c.Watchdog <= 0 && c.Timeout <= 0 {
		return errors.New("runtime: Fault.Hang needs a Watchdog or Timeout to reclaim hung slots")
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("runtime: negative MaxRetries %d", c.MaxRetries)
	}
	if c.QuarantineAfter < 0 {
		return fmt.Errorf("runtime: negative QuarantineAfter %d", c.QuarantineAfter)
	}
	return nil
}

type jobState int

const (
	jobBlocked jobState = iota
	jobReady
	jobRunning
	jobDone
)

type job struct {
	t          Task
	seq        int // submission index
	state      jobState
	depsLeft   int
	dependents []*job

	submitted  time.Time
	started    time.Time     // first execution start
	estEnd     time.Time     // predicted release while running
	estDur     time.Duration // the prediction behind estEnd (estimate-error accounting)
	slots      int
	workers    []int
	attempts   int
	backfilled bool
	runTotal   time.Duration

	// injKey counts fault-draw keys consumed: it advances only when an
	// attempt materializes (success, own failure), never on a casualty,
	// so the injected-fault sequence per task is identical at any worker
	// count.
	injKey int
	// failCount counts non-casualty failed attempts; the retry budget.
	failCount int
	// injected lists the faults that materialized on this task, in order.
	injected []fault.Kind
	// attemptCancel aborts the in-flight attempt (watchdog, domain loss);
	// nil while no attempt is executing.
	attemptCancel context.CancelFunc
	// domainKilled marks the in-flight attempt as a failure-domain
	// casualty: its outcome is discarded and retried for free.
	domainKilled bool

	value interface{}
	err   error
}

// Pool is the executing job manager. Create with New, feed with Submit,
// then Close and Wait for the results and the utilization Report.
type Pool struct {
	cfg      Config
	ctx      context.Context
	cancel   context.CancelFunc
	injector *fault.Injector

	mu   sync.Mutex
	room *sync.Cond // signalled when the runnable backlog shrinks
	idle *sync.Cond // signalled when tasks finish

	jobs    map[int]*job
	order   []*job
	waiters map[int][]*job // dep ID not yet submitted -> dependents

	ready       [numClasses][]*job
	free        [numClasses]int
	freeWorkers [numClasses][]int
	runningSet  map[*job]struct{}

	// Fault-tolerance state: per-worker consecutive failures and the
	// quarantine roster, plus the widest task seen per class (the
	// quarantine floor).
	consecFail  [numClasses][]int
	quarantined [numClasses][]bool
	benched     [numClasses]int
	maxSlots    [numClasses]int

	unfinished int
	closed     bool

	// Allocation-budget state: the allocation clock starts at New; the
	// estimator calibrates admission decisions online; drainLevel walks
	// drainNone -> drainSoft -> drainHard (see budget.go).
	t0          time.Time
	est         estimator
	drainLevel  drainPhase
	drainReason string
	drainedAt   time.Duration
	hardCh      chan struct{} // closed at hard cancel; unblocks retry backoff
	budgetTimer *time.Timer
	graceTimer  *time.Timer

	// Observability: the control-lane trace scope, the metric instruments
	// resolved once at New (all nil-safe no-ops without a registry), and
	// the completed-attempt segments behind the live utilization timeline.
	trace    obs.Scope
	met      poolMetrics
	segments []segment

	firstStart       time.Time
	lastEnd          time.Time
	busy             [numClasses]time.Duration
	failedAttempts   int
	backfills        int
	faults           fault.Counts
	recoveredPanics  int
	watchdogKills    int
	domainCasualties int
	requeues         int
}

// nameTraceLanes labels the trace's process/thread lanes after the
// pid/tid convention: pid 0 scheduler, one pid per worker class, one
// thread per worker. A nil tracer is a no-op.
func nameTraceLanes(tr *obs.Tracer, solveWorkers, contractWorkers int) {
	if tr == nil {
		return
	}
	tr.SetProcessName(controlPID, "scheduler")
	tr.SetProcessName(classPID(Solve), "solve workers")
	tr.SetProcessName(classPID(Contract), "contract workers")
	for w := 0; w < solveWorkers; w++ {
		tr.SetThreadName(classPID(Solve), w, fmt.Sprintf("solve %d", w))
	}
	for w := 0; w < contractWorkers; w++ {
		tr.SetThreadName(classPID(Contract), w, fmt.Sprintf("contract %d", w))
	}
}

// New creates a pool. Cancelling ctx aborts in-flight tasks (their Run
// contexts are children of it) and fails everything not yet finished.
func New(ctx context.Context, cfg Config) (*Pool, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	inj, err := fault.NewInjector(cfg.Fault)
	if err != nil {
		return nil, fmt.Errorf("runtime: %w", err)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	pctx, cancel := context.WithCancel(ctx)
	p := &Pool{
		cfg:        cfg,
		ctx:        pctx,
		cancel:     cancel,
		injector:   inj,
		jobs:       map[int]*job{},
		waiters:    map[int][]*job{},
		runningSet: map[*job]struct{}{},
		t0:         time.Now(),
		hardCh:     make(chan struct{}),
	}
	p.room = sync.NewCond(&p.mu)
	p.idle = sync.NewCond(&p.mu)
	p.trace = obs.NewScope(cfg.Trace, controlPID, 0)
	p.met = newPoolMetrics(cfg.Metrics)
	nameTraceLanes(cfg.Trace, cfg.SolveWorkers, cfg.ContractWorkers)
	p.free[Solve] = cfg.SolveWorkers
	p.free[Contract] = cfg.ContractWorkers
	p.freeWorkers[Solve] = make([]int, cfg.SolveWorkers)
	for i := range p.freeWorkers[Solve] {
		p.freeWorkers[Solve][i] = i
	}
	p.freeWorkers[Contract] = make([]int, cfg.ContractWorkers)
	for i := range p.freeWorkers[Contract] {
		p.freeWorkers[Contract][i] = i
	}
	p.consecFail[Solve] = make([]int, cfg.SolveWorkers)
	p.consecFail[Contract] = make([]int, cfg.ContractWorkers)
	p.quarantined[Solve] = make([]bool, cfg.SolveWorkers)
	p.quarantined[Contract] = make([]bool, cfg.ContractWorkers)
	// Wake blocked Submit/Wait callers when the pool is cancelled.
	go func() {
		<-pctx.Done()
		p.mu.Lock()
		p.room.Broadcast()
		p.idle.Broadcast()
		p.mu.Unlock()
	}()
	// The allocation clock: at WallClock the pool drains itself, exactly
	// as if the batch system had reclaimed the nodes.
	if cfg.Budget.Enabled() {
		p.budgetTimer = time.AfterFunc(cfg.Budget.WallClock, func() { p.Drain("budget expired") })
	}
	// External preemption notices land on the same drain path.
	if cfg.Preempt != nil {
		go func() {
			select {
			case reason, ok := <-cfg.Preempt:
				if !ok {
					return
				}
				if reason == "" {
					reason = "preempted"
				}
				p.Drain(reason)
			case <-pctx.Done():
				return
			}
			select {
			case _, ok := <-cfg.Preempt:
				if ok {
					p.hardCancel()
				}
			case <-pctx.Done():
			}
		}()
	}
	return p, nil
}

func (p *Pool) classWidth(c Class) int {
	if c == Solve {
		return p.cfg.SolveWorkers
	}
	return p.cfg.ContractWorkers
}

// activeWidthLocked is the class width minus quarantined workers.
func (p *Pool) activeWidthLocked(c Class) int {
	return p.classWidth(c) - p.benched[c]
}

func (p *Pool) runnableLocked() int {
	n := len(p.runningSet)
	for c := Class(0); c < numClasses; c++ {
		n += len(p.ready[c])
	}
	return n
}

// Submit enqueues a task. It blocks while the runnable backlog is at
// QueueDepth (backpressure); dependencies may reference tasks submitted
// earlier or - as long as backpressure permits - later.
func (p *Pool) Submit(t Task) error {
	if t.Run == nil {
		return errors.New("runtime: task without Run")
	}
	if t.Class != Solve && t.Class != Contract {
		return fmt.Errorf("runtime: task %d has unknown class %d", t.ID, int(t.Class))
	}
	if t.Slots <= 0 {
		t.Slots = 1
	}
	for _, dep := range t.DependsOn {
		if dep == t.ID {
			return fmt.Errorf("runtime: task %d depends on itself", t.ID)
		}
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	if w := p.activeWidthLocked(t.Class); t.Slots > w {
		return fmt.Errorf("runtime: task %d needs %d slots but class %v has %d active workers",
			t.ID, t.Slots, t.Class, w)
	}
	for !p.closed && p.ctx.Err() == nil && p.runnableLocked() >= p.cfg.QueueDepth {
		p.room.Wait()
	}
	if p.closed {
		return errors.New("runtime: submit on closed pool")
	}
	if err := p.ctx.Err(); err != nil {
		return err
	}
	if _, dup := p.jobs[t.ID]; dup {
		return fmt.Errorf("runtime: duplicate task ID %d", t.ID)
	}
	if t.Slots > p.maxSlots[t.Class] {
		p.maxSlots[t.Class] = t.Slots
	}

	j := &job{t: t, seq: len(p.order), slots: t.Slots, submitted: time.Now()}
	p.jobs[t.ID] = j
	p.order = append(p.order, j)
	p.unfinished++

	var depErr error
	for _, dep := range t.DependsOn {
		if d, ok := p.jobs[dep]; ok {
			if d.state == jobDone {
				if d.err != nil && depErr == nil {
					depErr = fmt.Errorf("runtime: dependency %d (%s) failed: %w", d.t.ID, d.t.Name, d.err)
				}
				continue
			}
			d.dependents = append(d.dependents, j)
			j.depsLeft++
		} else {
			p.waiters[dep] = append(p.waiters[dep], j)
			j.depsLeft++
		}
	}
	// Earlier submissions waiting for this ID.
	if ws := p.waiters[t.ID]; len(ws) > 0 {
		j.dependents = append(j.dependents, ws...)
		delete(p.waiters, t.ID)
	}
	if depErr != nil {
		p.finishLocked(j, nil, depErr, false)
		return nil
	}
	// Admission control at the door: a draining pool starts nothing new,
	// and a budgeted pool refuses outright any task whose calibrated
	// estimate already exceeds the remaining allocation - remaining time
	// only shrinks, so the refusal could never have been reversed.
	if p.drainLevel > drainNone {
		p.finishLocked(j, nil, fmt.Errorf("%w (draining: %s)", ErrRefused, p.drainReason), false)
		return nil
	}
	if p.cfg.Budget.Enabled() {
		if est := p.est.predict(t.Class, p.nominalCost(j)); est > p.remainingLocked(time.Now()) {
			p.finishLocked(j, nil, fmt.Errorf("%w: estimated %v exceeds remaining allocation",
				ErrRefused, est.Round(time.Millisecond)), false)
			return nil
		}
	}
	if j.depsLeft == 0 {
		p.enqueueLocked(j)
	}
	p.dispatchLocked()
	return nil
}

// enqueueLocked inserts a job into its class's ready queue, keeping the
// queue in submission order so head-of-line semantics are deterministic.
func (p *Pool) enqueueLocked(j *job) {
	j.state = jobReady
	q := p.ready[j.t.Class]
	i := sort.Search(len(q), func(k int) bool { return q[k].seq > j.seq })
	q = append(q, nil)
	copy(q[i+1:], q[i:])
	q[i] = j
	p.ready[j.t.Class] = q
}

// Close declares the submission stream complete. Tasks blocked on
// dependencies that were never submitted fail immediately.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	p.failDanglingLocked()
	p.idle.Broadcast()
}

// failDanglingLocked fails every job waiting on a dependency ID that can
// no longer arrive.
func (p *Pool) failDanglingLocked() {
	for id, ws := range p.waiters {
		for _, j := range ws {
			if j.state == jobBlocked && j.err == nil {
				j.err = fmt.Errorf("runtime: task %d depends on task %d, which was never submitted",
					j.t.ID, id)
			}
		}
	}
	p.waiters = map[int][]*job{}
	for _, j := range p.order {
		if j.state == jobBlocked && j.err != nil {
			p.finishLocked(j, nil, j.err, false)
		}
	}
}

// Wait blocks until every submitted task has finished (Close must have
// been called, or the context cancelled) and returns the results in
// submission order, the utilization report, and the first task error in
// submission order, if any. The pool is dead afterwards.
func (p *Pool) Wait() ([]Result, Report, error) {
	p.mu.Lock()
	for {
		if p.ctx.Err() != nil {
			// Cancelled: nothing new starts; fail everything not running.
			p.closed = true
			p.drainCancelledLocked()
			if len(p.runningSet) == 0 && p.unfinished == 0 {
				break
			}
		} else if p.closed {
			if p.unfinished == 0 {
				break
			}
			if len(p.runningSet) == 0 && p.readyEmptyLocked() {
				// The remaining blocked tasks form a dependency cycle.
				for _, j := range p.order {
					if j.state == jobBlocked {
						p.finishLocked(j, nil,
							fmt.Errorf("runtime: task %d blocked by a dependency cycle", j.t.ID), false)
					}
				}
				continue
			}
		}
		p.idle.Wait()
	}
	p.stopTimersLocked()
	results, rep := p.collectLocked()
	p.mu.Unlock()
	p.cancel()

	// Refused and stranded tasks are not failures: the allocation ended
	// before they could run (or finish), which is the drain working as
	// designed - a journaled campaign picks them up next run.
	var firstErr error
	for _, r := range results {
		if r.Err != nil && !errors.Is(r.Err, ErrRefused) && !errors.Is(r.Err, ErrStranded) {
			firstErr = fmt.Errorf("runtime: task %d (%s): %w", r.Task.ID, r.Task.Name, r.Err)
			break
		}
	}
	return results, rep, firstErr
}

func (p *Pool) readyEmptyLocked() bool {
	for c := Class(0); c < numClasses; c++ {
		if len(p.ready[c]) > 0 {
			return false
		}
	}
	return true
}

// drainCancelledLocked fails every ready or blocked job after the pool
// context was cancelled.
func (p *Pool) drainCancelledLocked() {
	err := p.ctx.Err()
	for c := Class(0); c < numClasses; c++ {
		q := p.ready[c]
		p.ready[c] = nil
		for _, j := range q {
			j.state = jobBlocked // finishLocked path for never-started jobs
			p.finishLocked(j, nil, err, false)
		}
	}
	for _, j := range p.order {
		if j.state == jobBlocked {
			p.finishLocked(j, nil, err, false)
		}
	}
}

// Run executes a batch: submit every task in order, close, wait. Task
// dependencies must stay within the batch; like cluster.Run, dangling
// references are rejected up front.
func Run(ctx context.Context, cfg Config, tasks []Task) ([]Result, Report, error) {
	ids := make(map[int]bool, len(tasks))
	for _, t := range tasks {
		if ids[t.ID] {
			return nil, Report{}, fmt.Errorf("runtime: duplicate task ID %d", t.ID)
		}
		ids[t.ID] = true
	}
	for _, t := range tasks {
		for _, dep := range t.DependsOn {
			if !ids[dep] {
				return nil, Report{}, fmt.Errorf("runtime: task %d depends on unknown task %d", t.ID, dep)
			}
		}
	}
	p, err := New(ctx, cfg)
	if err != nil {
		return nil, Report{}, err
	}
	for _, t := range tasks {
		if err := p.Submit(t); err != nil {
			p.Close()
			//femtolint:ignore errdrop Wait only drains in-flight tasks here; the Submit error below is the one the caller must see
			p.Wait()
			return nil, Report{}, err
		}
	}
	p.Close()
	return p.Wait()
}

// costOf is the planning estimate for a job's next attempt. Under a
// budget it is the estimator's calibrated prediction, so both backfill
// planning and admission control sharpen as attempts complete; without a
// budget it is the raw nominal cost, preserving the documented contract
// that estimates steer schedule quality only.
func (p *Pool) costOf(j *job) time.Duration {
	if p.cfg.Budget.Enabled() {
		return p.est.predict(j.t.Class, p.nominalCost(j))
	}
	return time.Duration(p.nominalCost(j) * float64(time.Second))
}

// dispatchLocked starts every task the schedule admits right now.
func (p *Pool) dispatchLocked() {
	if p.ctx.Err() != nil {
		return
	}
	for c := Class(0); c < numClasses; c++ {
		for p.dispatchOneLocked(c) {
		}
	}
}

// dispatchOneLocked starts at most one task of the class: the queue head
// if it fits, otherwise the first admissible backfill candidate. A
// draining pool starts nothing; a budgeted pool first refuses queued
// tasks that can no longer fit the remaining allocation.
func (p *Pool) dispatchOneLocked(cls Class) bool {
	if p.drainLevel > drainNone {
		return false
	}
	now := time.Now()
	if p.cfg.Budget.Enabled() {
		p.admitLocked(cls, now)
	}
	q := p.ready[cls]
	if len(q) == 0 {
		return false
	}
	head := q[0]
	if head.slots <= p.free[cls] {
		p.ready[cls] = q[1:]
		p.startLocked(head, now, false)
		return true
	}
	running := p.releasesLocked(cls)
	for i, j := range q[1:] {
		if j.slots > p.free[cls] {
			continue
		}
		if backfillOK(now, p.free[cls], head.slots, j.slots, p.costOf(j), running) {
			p.ready[cls] = append(q[:i+1:i+1], q[i+2:]...)
			p.startLocked(j, now, true)
			return true
		}
	}
	return false
}

// releasesLocked lists the predicted slot releases of the class's
// running tasks, ordered by (time, width) so that the backfill planner
// never sees the randomized iteration order of the running set.
func (p *Pool) releasesLocked(cls Class) []release {
	var rs []release
	for j := range p.runningSet {
		if j.t.Class == cls {
			rs = append(rs, release{at: j.estEnd, slots: j.slots})
		}
	}
	sort.Slice(rs, func(i, k int) bool {
		if !rs[i].at.Equal(rs[k].at) {
			return rs[i].at.Before(rs[k].at)
		}
		return rs[i].slots < rs[k].slots
	})
	return rs
}

func (p *Pool) startLocked(j *job, now time.Time, backfilled bool) {
	cls := j.t.Class
	p.free[cls] -= j.slots
	j.workers = append([]int(nil), p.freeWorkers[cls][:j.slots]...)
	p.freeWorkers[cls] = p.freeWorkers[cls][j.slots:]
	j.state = jobRunning
	if j.started.IsZero() {
		j.started = now
	}
	j.estDur = p.costOf(j)
	j.estEnd = now.Add(j.estDur)
	j.backfilled = backfilled
	if backfilled {
		p.backfills++
		p.met.backfills.Inc()
		p.trace.Instant("sched", "backfill", map[string]interface{}{
			"task": j.t.ID, "slots": j.slots,
		})
	}
	if p.firstStart.IsZero() || now.Before(p.firstStart) {
		p.firstStart = now
	}
	p.runningSet[j] = struct{}{}
	go p.execute(j)
}

// retryDelay is the backoff before re-running a task after its n-th
// failed attempt: RetryBackoff doubled per failure, capped at MaxBackoff,
// scaled by a deterministic jitter factor in [0.5, 1.5) derived from the
// fault seed and the task identity - so a retry schedule is reproducible
// and pinned by tests, yet distinct tasks do not retry in lockstep.
func (p *Pool) retryDelay(taskID, failCount int) time.Duration {
	return BackoffDelay(p.cfg.RetryBackoff, p.cfg.MaxBackoff, p.cfg.Fault.Seed, int64(taskID), failCount)
}

// BackoffDelay is the repo's one capped-jittered-exponential backoff:
// base doubled per failure, capped at max, scaled by a deterministic
// jitter factor in [0.5, 1.5) derived from (seed, key, failCount). The
// pool's task retries and the wire layer's retransmit/reconnect paths
// share it, so every backoff schedule in the tree is reproducible from
// identity keys alone.
func BackoffDelay(base, max time.Duration, seed, key int64, failCount int) time.Duration {
	d := base
	for i := 1; i < failCount && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	jitter := 0.5 + fault.Uniform(seed^backoffSalt, key, int64(failCount))
	return time.Duration(float64(d) * jitter)
}

// backoffSalt decorrelates backoff jitter from fault draws sharing the
// same seed.
const backoffSalt = 0x6261636b // "back"

// taskLabel names a task in trace spans.
func taskLabel(t Task) string {
	if t.Name != "" {
		return t.Name
	}
	return fmt.Sprintf("task %d", t.ID)
}

// errLabel renders an attempt error for trace args ("" on success).
func errLabel(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// attemptOutcome carries one execution attempt's result from the attempt
// goroutine to the supervising execute loop.
type attemptOutcome struct {
	value    interface{}
	err      error
	panicked bool
}

// runAttempt executes one attempt in its own goroutine - the panic
// isolation boundary - applying the drawn fault: Panic crashes before the
// work, Hang stalls until the attempt context dies, and
// Transient/Corrupt/DomainLoss override the outcome after the work so the
// materialized fault sequence is independent of scheduling.
func (p *Pool) runAttempt(j *job, runCtx context.Context, fk fault.Kind, ch chan<- attemptOutcome) {
	defer func() {
		if r := recover(); r != nil {
			ch <- attemptOutcome{err: fmt.Errorf("%w: %v", ErrPanic, r), panicked: true}
		}
	}()
	switch fk {
	case fault.Panic:
		panic(fault.Error(fault.Panic))
	case fault.Hang:
		// The injected hang never returns on its own; it stops when the
		// watchdog, a timeout, a domain loss or pool shutdown cancels the
		// attempt.
		<-runCtx.Done()
		ch <- attemptOutcome{err: fault.Error(fault.Hang)}
		return
	}
	v, err := j.t.Run(runCtx)
	switch fk {
	case fault.Transient:
		v, err = nil, fault.Error(fault.Transient)
	case fault.Corrupt:
		// The result came back damaged; the runtime detects it (the live
		// analogue of an hio checksum mismatch), discards the value and
		// fails the attempt.
		v, err = nil, fault.Error(fault.Corrupt)
	case fault.DomainLoss:
		v, err = nil, fault.Error(fault.DomainLoss)
	}
	ch <- attemptOutcome{value: v, err: err}
}

// execute supervises a job's attempts outside the lock: fault draws,
// watchdog, quarantine-driven re-routing, and bounded capped-backoff
// retry.
func (p *Pool) execute(j *job) {
	maxRetries := p.cfg.MaxRetries
	if j.t.Retries > 0 {
		maxRetries = j.t.Retries
	} else if j.t.Retries < 0 {
		maxRetries = 0
	}
	for {
		timeout := j.t.Timeout
		if timeout == 0 {
			timeout = p.cfg.Timeout
		}
		var runCtx context.Context
		var cancel context.CancelFunc
		if timeout > 0 {
			runCtx, cancel = context.WithTimeout(p.ctx, timeout)
		} else {
			runCtx, cancel = context.WithCancel(p.ctx)
		}

		p.mu.Lock()
		j.attempts++
		attempt := j.attempts
		j.domainKilled = false
		j.attemptCancel = cancel
		lead := 0
		if len(j.workers) > 0 {
			lead = j.workers[0]
		}
		fk := p.injector.Draw(j.t.ID, j.injKey+1)
		drawn := fk
		if fk == fault.Preempt {
			// The allocation is preempted at this injected instant: the
			// whole pool drains, but the drawing attempt itself is not a
			// failure - it races the grace period like every other
			// in-flight attempt.
			p.drainLocked("preempt fault")
			fk = fault.None
		}
		p.mu.Unlock()

		// The attempt's span lives on its lead worker's lane, and the
		// attempt context carries the same scope so the task body (the
		// solver) lands its spans there too.
		attemptScope := p.trace.With(classPID(j.t.Class), lead)
		span := attemptScope.Begin("attempt", taskLabel(j.t), map[string]interface{}{
			"task": j.t.ID, "attempt": attempt, "slots": j.slots,
		})
		runCtx = obs.WithScope(runCtx, attemptScope)

		t0 := time.Now()
		ch := make(chan attemptOutcome, 1)
		go p.runAttempt(j, runCtx, fk, ch)

		var out attemptOutcome
		watchdogFired := false
		if p.cfg.Watchdog > 0 {
			wd := time.NewTimer(p.cfg.Watchdog)
			select {
			case out = <-ch:
				wd.Stop()
			case <-wd.C:
				// Abandon the attempt: cancel its context so a
				// cooperative (or injected) hang unwinds, reclaim the
				// slots now, and discard whatever the stalled goroutine
				// eventually sends into the buffered channel.
				cancel()
				watchdogFired = true
				out = attemptOutcome{err: fmt.Errorf("%w (deadline %v)", ErrWatchdog, p.cfg.Watchdog)}
			}
		} else {
			out = <-ch
		}
		cancel()
		dt := time.Since(t0)
		span.EndWith(map[string]interface{}{"err": errLabel(out.err)})
		p.met.attempts.Inc()
		p.met.attemptSeconds.Observe(dt.Seconds())

		p.mu.Lock()
		j.attemptCancel = nil
		j.runTotal += dt
		p.busy[j.t.Class] += time.Duration(j.slots) * dt
		p.segments = append(p.segments, segment{
			class:      j.t.Class,
			start:      t0.Sub(p.t0),
			end:        t0.Add(dt).Sub(p.t0),
			slots:      j.slots,
			backfilled: j.backfilled,
		})

		casualty := j.domainKilled
		value, err := out.value, out.err
		if casualty {
			// The attempt died with its failure domain: discard its
			// outcome (even a success - the domain took the result with
			// it) and retry without consuming the budget or the fault key.
			value, err = nil, ErrDomainCasualty
			p.domainCasualties++
			p.failedAttempts++
			p.met.domainCasualties.Inc()
			p.met.failures.Inc()
		} else {
			j.injKey++
			if drawn != fault.None {
				p.faults.Add(drawn)
				j.injected = append(j.injected, drawn)
			}
			if out.panicked {
				p.recoveredPanics++
				p.met.recoveredPanics.Inc()
			}
			if watchdogFired {
				p.watchdogKills++
				p.met.watchdogKills.Inc()
				p.trace.Instant("sched", "watchdog-kill", map[string]interface{}{
					"task": j.t.ID, "attempt": attempt,
				})
			}
			if err != nil {
				j.failCount++
				p.failedAttempts++
				p.met.failures.Inc()
			} else {
				// A clean completion calibrates the class's cost
				// estimates for admission control and backfill planning.
				p.est.observe(j.t.Class, p.nominalCost(j), j.estDur, dt)
			}
			if fk == fault.DomainLoss {
				p.killDomainLocked(j)
			}
		}

		// Past the grace period, a failed in-flight attempt is stranded:
		// the allocation is over, nothing retries.
		stranded := p.drainLevel >= drainHard && err != nil

		benched := false
		if !casualty {
			// Casualties are not attributed to workers: the worker did
			// nothing wrong, its domain died around it.
			benched = p.noteAttemptWorkersLocked(j, err != nil)
		}
		retry := !stranded && err != nil && p.ctx.Err() == nil &&
			(casualty || j.failCount <= maxRetries)
		requeue := retry && benched
		if requeue {
			// A worker of this job was just quarantined: release the
			// remaining healthy workers and - unless the pool is
			// draining, in which case the freed slots must not pick up
			// new work - send the job back to the ready queue so it is
			// re-routed, mpi_jm-style. During a drain the job is refused
			// instead, with its slots released first so drain accounting
			// never counts a benched worker as busy.
			p.requeues++
			p.met.requeues.Inc()
			p.releaseWorkersLocked(j)
			if p.drainLevel > drainNone {
				p.finishLocked(j, nil, fmt.Errorf("%w (draining: %s)", ErrRefused, p.drainReason), false)
			} else {
				j.state = jobReady
				p.enqueueLocked(j)
			}
			p.dispatchLocked()
			p.mu.Unlock()
			return
		}
		p.mu.Unlock()

		if !retry {
			if stranded {
				err = fmt.Errorf("%w: %v", ErrStranded, err)
				value = nil
			}
			p.mu.Lock()
			p.finishLocked(j, value, err, true)
			p.dispatchLocked()
			p.mu.Unlock()
			return
		}
		if !casualty {
			p.met.retries.Inc()
			p.trace.Instant("sched", "retry", map[string]interface{}{
				"task": j.t.ID, "failures": j.failCount,
			})
			select {
			case <-time.After(p.retryDelay(j.t.ID, j.failCount)):
			case <-p.hardCh:
			case <-p.ctx.Done():
			}
		}
		if p.ctx.Err() != nil {
			p.mu.Lock()
			p.finishLocked(j, nil, p.ctx.Err(), true)
			p.dispatchLocked()
			p.mu.Unlock()
			return
		}
		p.mu.Lock()
		if p.drainLevel >= drainHard {
			// Hard cancel arrived while this task waited out its retry
			// backoff: its slots are still held, the allocation is over.
			p.finishLocked(j, nil, fmt.Errorf("%w: %v", ErrStranded, err), true)
			p.dispatchLocked()
			p.mu.Unlock()
			return
		}
		p.mu.Unlock()
	}
}

// killDomainLocked kills the in-flight attempts of every running task
// sharing a failure domain with j: the paper's MPI_Abort-takes-down-the-
// lump blast radius. Victims retry for free (see ErrDomainCasualty).
func (p *Pool) killDomainLocked(j *job) {
	cls := j.t.Class
	domains := map[int]bool{}
	for _, w := range j.workers {
		domains[w/p.cfg.DomainSize] = true
	}
	for r := range p.runningSet {
		if r == j || r.t.Class != cls || r.attemptCancel == nil || r.domainKilled {
			continue
		}
		hit := false
		for _, w := range r.workers {
			if domains[w/p.cfg.DomainSize] {
				hit = true
				break
			}
		}
		if hit {
			r.domainKilled = true
			r.attemptCancel()
			p.trace.Instant("sched", "domain-loss", map[string]interface{}{
				"task": j.t.ID, "victim": r.t.ID,
			})
		}
	}
}

// noteAttemptWorkersLocked updates the per-worker consecutive-failure
// counters after an attempt and quarantines workers that crossed the
// threshold. It reports whether any of j's workers was benched just now
// (the signal to re-route j).
func (p *Pool) noteAttemptWorkersLocked(j *job, failed bool) bool {
	cls := j.t.Class
	if !failed {
		for _, w := range j.workers {
			p.consecFail[cls][w] = 0
		}
		return false
	}
	if p.cfg.QuarantineAfter <= 0 {
		return false
	}
	benched := false
	for _, w := range j.workers {
		p.consecFail[cls][w]++
		if p.consecFail[cls][w] >= p.cfg.QuarantineAfter &&
			!p.quarantined[cls][w] && p.canBenchLocked(cls) {
			p.quarantined[cls][w] = true
			p.benched[cls]++
			benched = true
			p.met.quarantines.Inc()
			p.trace.Instant("sched", "quarantine", map[string]interface{}{
				"class": cls.String(), "worker": w,
			})
		}
	}
	return benched
}

// canBenchLocked reports whether the class can lose one more worker and
// still run its widest submitted task (and keep at least one worker).
func (p *Pool) canBenchLocked(cls Class) bool {
	floor := p.maxSlots[cls]
	if floor < 1 {
		floor = 1
	}
	return p.activeWidthLocked(cls)-1 >= floor
}

// releaseWorkersLocked returns a running job's healthy workers to the
// free pool; quarantined workers are withheld (benched). The job leaves
// the running set.
func (p *Pool) releaseWorkersLocked(j *job) {
	cls := j.t.Class
	for _, w := range j.workers {
		if p.quarantined[cls][w] {
			continue
		}
		p.free[cls]++
		p.freeWorkers[cls] = append(p.freeWorkers[cls], w)
	}
	j.workers = nil
	delete(p.runningSet, j)
}

// finishLocked retires a job: releases its slots, records the result,
// unblocks (or, on error, cascades failure to) its dependents.
func (p *Pool) finishLocked(j *job, value interface{}, err error, wasRunning bool) {
	if j.state == jobDone {
		return
	}
	now := time.Now()
	if wasRunning {
		workers := append([]int(nil), j.workers...)
		p.releaseWorkersLocked(j)
		j.workers = workers // keep the record for TaskMetrics
		if now.After(p.lastEnd) {
			p.lastEnd = now
		}
	}
	j.state = jobDone
	j.value = value
	j.err = err
	p.unfinished--
	for _, d := range j.dependents {
		if d.state != jobBlocked {
			continue
		}
		if err != nil {
			if d.err == nil {
				d.err = fmt.Errorf("runtime: dependency %d (%s) failed: %w", j.t.ID, j.t.Name, err)
			}
			p.finishLocked(d, nil, d.err, false)
			continue
		}
		d.depsLeft--
		if d.depsLeft == 0 {
			p.enqueueLocked(d)
		}
	}
	p.room.Broadcast()
	p.idle.Broadcast()
}

// collectLocked assembles the submission-ordered results and the report.
func (p *Pool) collectLocked() ([]Result, Report) {
	rep := Report{
		SolveWorkers:     p.cfg.SolveWorkers,
		ContractWorkers:  p.cfg.ContractWorkers,
		Tasks:            len(p.order),
		FailedAttempts:   p.failedAttempts,
		Backfills:        p.backfills,
		SolveBusy:        p.busy[Solve],
		ContractBusy:     p.busy[Contract],
		Faults:           p.faults,
		RecoveredPanics:  p.recoveredPanics,
		WatchdogKills:    p.watchdogKills,
		DomainCasualties: p.domainCasualties,
		Requeues:         p.requeues,
	}
	for cls := Class(0); cls < numClasses; cls++ {
		var ids []int
		for w, q := range p.quarantined[cls] {
			if q {
				ids = append(ids, w)
			}
		}
		if cls == Solve {
			rep.QuarantinedSolve = ids
		} else {
			rep.QuarantinedContract = ids
		}
	}
	results := make([]Result, len(p.order))
	started := 0
	var waitSum time.Duration
	for i, j := range p.order {
		m := TaskMetrics{
			ID:         j.t.ID,
			Name:       j.t.Name,
			Class:      j.t.Class,
			Slots:      j.slots,
			Attempts:   j.attempts,
			Run:        j.runTotal,
			Workers:    j.workers,
			Backfilled: j.backfilled,
			Injected:   j.injected,
		}
		if !j.started.IsZero() {
			m.QueueWait = j.started.Sub(j.submitted)
			started++
			waitSum += m.QueueWait
			if m.QueueWait > rep.MaxQueueWait {
				rep.MaxQueueWait = m.QueueWait
			}
			p.met.queueWaitSeconds.Observe(m.QueueWait.Seconds())
		}
		switch {
		case j.err == nil:
			rep.Succeeded++
		case errors.Is(j.err, ErrRefused):
			rep.Refused++
		case errors.Is(j.err, ErrStranded):
			rep.Stranded++
		default:
			rep.Failed++
		}
		results[i] = Result{Task: j.t, Value: j.value, Err: j.err, Metrics: m}
		rep.PerTask = append(rep.PerTask, m)
	}
	rep.Admitted = started
	if started > 0 {
		rep.MeanQueueWait = waitSum / time.Duration(started)
	}
	if !p.firstStart.IsZero() && p.lastEnd.After(p.firstStart) {
		rep.Wall = p.lastEnd.Sub(p.firstStart)
		rep.SolveUtil = float64(p.busy[Solve]) / (float64(p.cfg.SolveWorkers) * float64(rep.Wall))
		rep.ContractUtil = float64(p.busy[Contract]) / (float64(p.cfg.ContractWorkers) * float64(rep.Wall))
		rep.Timeline = buildTimeline(p.segments,
			p.firstStart.Sub(p.t0), p.lastEnd.Sub(p.t0),
			p.cfg.SolveWorkers, p.cfg.ContractWorkers)
	}
	rep.Drained = p.drainLevel > drainNone
	rep.DrainReason = p.drainReason
	rep.DrainedAt = p.drainedAt
	rep.EstimateErr = p.est.meanErr()
	if p.cfg.Budget.Enabled() {
		rep.BudgetWall = p.cfg.Budget.WallClock
		used := time.Since(p.t0)
		if !p.lastEnd.IsZero() {
			used = p.lastEnd.Sub(p.t0)
		}
		rep.BudgetUsed = used
		rep.BudgetUtil = float64(used) / float64(p.cfg.Budget.WallClock)
	}
	// End-of-run aggregates into the registry (all no-ops without one).
	reg := p.cfg.Metrics
	reg.Gauge("runtime.solve_util").Set(rep.SolveUtil)
	reg.Gauge("runtime.contract_util").Set(rep.ContractUtil)
	reg.Gauge("runtime.wall_seconds").Set(rep.Wall.Seconds())
	reg.Counter("runtime.tasks").Add(int64(rep.Tasks))
	reg.Counter("runtime.tasks_succeeded").Add(int64(rep.Succeeded))
	reg.Counter("runtime.tasks_failed").Add(int64(rep.Failed))
	p.met.refused.Add(int64(rep.Refused))
	return results, rep
}
