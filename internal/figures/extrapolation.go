package figures

import (
	"fmt"
	"math/rand"
	"strings"

	"femtoverse/internal/physics"
)

func init() {
	register("extrapolation", genExtrapolation)
}

// Extrapolation reproduces the analysis context of Section VI: gA is
// determined on a grid of ensembles (three lattice spacings, pion masses
// from 400 MeV down to physical) and extrapolated to the continuum and
// physical pion mass, yielding the per-cent-level determination and the
// neutron lifetime. The per-ensemble values here are synthetic draws
// around a known chiral-continuum surface, so the generator's truth
// checks the whole chain.
type Extrapolation struct {
	Points []physics.EnsemblePoint
	Result physics.ExtrapolationResult
	Truth  float64
	Tau    float64
	TauErr float64
}

// Name implements Result.
func (Extrapolation) Name() string { return "extrapolation" }

// Title implements Result.
func (Extrapolation) Title() string {
	return "Chiral-continuum extrapolation of gA over the ensemble grid"
}

// Render implements Result.
func (e Extrapolation) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# ensemble   eps_pi^2   (a/w0)^2   gA        +-\n")
	for _, p := range e.Points {
		fmt.Fprintf(&b, "%-10s  %8.4f  %8.4f  %7.4f  %7.4f\n",
			p.Label, p.EpsPi2, p.A2, p.GA, p.Err)
	}
	r := e.Result
	fmt.Fprintf(&b, "# fit: gA = %.4f%+.4f*eps_pi^2%+.4f*a^2   chi2/dof = %.2f\n",
		r.Params[0], r.Params[1], r.Params[2], r.Chi2PerDOF())
	fmt.Fprintf(&b, "# physical point: gA = %.4f +- %.4f  (truth %.4f)\n", r.GA, r.Err, e.Truth)
	fmt.Fprintf(&b, "# neutron lifetime: tau_n = %.1f +- %.1f s\n", e.Tau, e.TauErr)
	return b.String()
}

func genExtrapolation(bool) (Result, error) {
	const truth = 1.271
	c1, c2 := -0.9, 0.2
	c0 := truth - c1*physics.EpsPi2Physical
	rng := rand.New(rand.NewSource(29))
	pts := physics.CalLatEnsembleGrid()
	for i := range pts {
		// Coarser, heavier ensembles are cheaper and more precise; the
		// near-physical points carry larger errors, as in production.
		pts[i].Err = 0.006 + 0.02*physics.EpsPi2Physical/(pts[i].EpsPi2+physics.EpsPi2Physical)
		mean := c0 + c1*pts[i].EpsPi2 + c2*pts[i].A2
		pts[i].GA = mean + pts[i].Err*rng.NormFloat64()
	}
	res, err := physics.ExtrapolateGA(pts, physics.EpsPi2Physical)
	if err != nil {
		return nil, err
	}
	tau, tauErr := physics.NeutronLifetime(res.GA, res.Err)
	return Extrapolation{Points: pts, Result: res, Truth: truth, Tau: tau, TauErr: tauErr}, nil
}
