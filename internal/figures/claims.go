package figures

import (
	"fmt"
	"math/rand"
	"strings"

	"femtoverse/internal/cluster"
	"femtoverse/internal/machine"
	"femtoverse/internal/metaq"
	"femtoverse/internal/mpijm"
	"femtoverse/internal/perfmodel"
)

func init() {
	register("backfill", genBackfill)
	register("startup", genStartup)
	register("sustained", genSustained)
}

// Backfill reproduces Section V's bundling numbers: naive bundling wastes
// 20-25% of the allocation; METAQ's backfilling recovers it; mpi_jm does
// the same without fragmentation and with per-spawn (not per-mpirun)
// launch costs.
type Backfill struct {
	Naive, METAQ, MpiJM cluster.Report
	METAQSpeedup        float64
	MpiJMSpeedup        float64
	METAQScattered      int
	MpiJMScattered      int
}

// Name implements Result.
func (Backfill) Name() string { return "backfill" }

// Title implements Result.
func (Backfill) Title() string {
	return "Task bundling: naive vs METAQ backfill vs mpi_jm blocks"
}

// Render implements Result.
func (b Backfill) Render() string {
	var s strings.Builder
	row := func(name string, r cluster.Report, scattered int, speedup float64) {
		fmt.Fprintf(&s, "%-14s makespan %8.0f s  gpu-util %5.1f%%  idle %5.1f%%  scattered %3d  speedup x%.2f\n",
			name, r.Makespan-r.StartupSeconds, 100*r.GPUUtil, 100*r.IdleFraction(), scattered, speedup)
	}
	row("naive-bundle", b.Naive, 0, 1.0)
	row("metaq", b.METAQ, b.METAQScattered, b.METAQSpeedup)
	row("mpi_jm", b.MpiJM, b.MpiJMScattered, b.MpiJMSpeedup)
	fmt.Fprintf(&s, "# paper: naive bundling idles 20-25%%; METAQ recovery ~= 25%% speed-up\n")
	return s.String()
}

func backfillWorkload(seed int64) []cluster.Task {
	rng := rand.New(rand.NewSource(seed))
	var tasks []cluster.Task
	for i := 0; i < 72; i++ {
		gpus := 16
		if i%6 == 0 {
			gpus = 24
		}
		tasks = append(tasks, cluster.Task{
			ID: i, Name: "prop", Kind: cluster.GPUTask, GPUs: gpus,
			Seconds: 2000 * (1 + 0.3*(2*rng.Float64()-1)),
		})
	}
	return tasks
}

func genBackfill(bool) (Result, error) {
	cfg := cluster.Config{
		Nodes: 64, GPUsPerNode: 4, CPUSlotsPerNode: 40,
		JitterSigma: 0.05, Seed: 3,
	}
	tasks := backfillWorkload(4)
	naive, err := cluster.Run(cfg, tasks, cluster.NaiveBundle{LaunchOverhead: 10})
	if err != nil {
		return nil, err
	}
	mq, err := cluster.Run(cfg, tasks, metaq.Policy{})
	if err != nil {
		return nil, err
	}
	jm, err := cluster.Run(cfg, tasks, mpijm.New(mpijm.Params{LumpNodes: 32, BlockNodes: 8}))
	if err != nil {
		return nil, err
	}
	count := func(r cluster.Report) int {
		n := 0
		for _, st := range r.PerTask {
			if st.Scattered {
				n++
			}
		}
		return n
	}
	win := func(r cluster.Report) float64 { return r.Makespan - r.StartupSeconds }
	return Backfill{
		Naive: naive, METAQ: mq, MpiJM: jm,
		METAQSpeedup:   win(naive) / win(mq),
		MpiJMSpeedup:   win(naive) / win(jm),
		METAQScattered: count(mq),
		MpiJMScattered: count(jm),
	}, nil
}

// Startup reproduces the launch-time claims: lumps bring 4224 Sierra
// nodes to work in 3-5 minutes, connection takes under a minute, and the
// monolithic alternative pays a non-linear cost.
type Startup struct {
	Rows []StartupRow
}

// StartupRow is one node-count comparison.
type StartupRow struct {
	Nodes      int
	Monolithic float64
	Lump32     float64
	Lump128    float64
}

// Name implements Result.
func (Startup) Name() string { return "startup" }

// Title implements Result.
func (Startup) Title() string { return "Job startup: monolithic mpirun vs mpi_jm lumps" }

// Render implements Result.
func (s Startup) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# nodes   monolithic_s   lump32_s   lump128_s\n")
	for _, r := range s.Rows {
		fmt.Fprintf(&b, "%7d  %12.0f  %9.0f  %10.0f\n", r.Nodes, r.Monolithic, r.Lump32, r.Lump128)
	}
	fmt.Fprintf(&b, "# lump connection: %.0f s (< 1 minute); paper: 4224 nodes working in 3-5 min\n",
		mpijm.ConnectSeconds())
	return b.String()
}

func genStartup(bool) (Result, error) {
	var rows []StartupRow
	for _, n := range []int{16, 128, 512, 1024, 2048, 4224} {
		rows = append(rows, StartupRow{
			Nodes:      n,
			Monolithic: cluster.MonolithicStartupSeconds(n),
			Lump32:     mpijm.LumpStartupSeconds(n, 32),
			Lump128:    mpijm.LumpStartupSeconds(n, 128),
		})
	}
	return Startup{Rows: rows}, nil
}

// Sustained reproduces Section VII's headline performance accounting:
// ~20% of peak on minimal nodes, ~15% (nearly 20 PFlops) across 3388
// Sierra nodes under MVAPICH2, and the anticipated recovery to 20% once
// MVAPICH2 is tuned. The machine-to-machine throughput ratios over Titan
// are reported alongside the paper's quoted 12x / 15x.
type Sustained struct {
	SmallJobPct     float64
	AtScalePFlops   float64
	AtScalePct      float64
	AnticipatedPct  float64
	SierraOverTitan float64
	SummitOverTitan float64
}

// Name implements Result.
func (Sustained) Name() string { return "sustained" }

// Title implements Result.
func (Sustained) Title() string { return "Sustained whole-application performance accounting" }

// Render implements Result.
func (s Sustained) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "small-job sustained           : %5.1f%% of peak   (paper: 20%%)\n", s.SmallJobPct)
	fmt.Fprintf(&b, "at scale (3388 Sierra nodes)  : %5.1f PFlops = %.1f%% of peak (paper: ~20 PF, 15%%)\n",
		s.AtScalePFlops, s.AtScalePct)
	fmt.Fprintf(&b, "anticipated with tuned MPI    : %5.1f%% of peak   (paper: 20%%)\n", s.AnticipatedPct)
	fmt.Fprintf(&b, "per-node solver speedup vs Titan: Sierra x%.1f, Summit x%.1f\n",
		s.SierraOverTitan, s.SummitOverTitan)
	fmt.Fprintf(&b, "# paper quotes program-level machine-to-machine speedups of ~12x and ~15x,\n")
	fmt.Fprintf(&b, "# which fold in allocation size; see EXPERIMENTS.md.\n")
	return b.String()
}

func genSustained(bool) (Result, error) {
	m := machine.Sierra()
	pm := perfmodel.New(m)
	problem := perfmodel.Problem{Global: [4]int{48, 48, 48, 64}, Ls: 20}
	small, err := pm.Solve(problem, 4)
	if err != nil {
		return nil, err
	}
	perJob, err := pm.JobPerformance(problem, 16)
	if err != nil {
		return nil, err
	}
	// 3388 nodes = 847 16-GPU jobs at the MVAPICH2 efficiency.
	jobs := 3388 / 4
	atScaleTF := float64(jobs) * perJob * 0.75
	atScalePct := pm.SustainedPctPeak(atScaleTF, 3388)
	anticipated := pm.SustainedPctPeak(float64(jobs)*perJob, 3388)

	ti := machine.Titan()
	sierraPerNode := float64(m.GPUsPerNode) * m.EffectiveBWPerGPUGB()
	titanPerNode := float64(ti.GPUsPerNode) * ti.EffectiveBWPerGPUGB()
	su := machine.Summit()
	summitPerNode := float64(su.GPUsPerNode) * su.EffectiveBWPerGPUGB()

	return Sustained{
		SmallJobPct:     small.PctPeak,
		AtScalePFlops:   atScaleTF / 1e3,
		AtScalePct:      atScalePct,
		AnticipatedPct:  anticipated,
		SierraOverTitan: sierraPerNode / titanPerNode,
		SummitOverTitan: summitPerNode / titanPerNode,
	}, nil
}
