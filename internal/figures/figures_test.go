package figures

import (
	"math"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"amortize", "backfill", "budget", "cachewarm", "commpolicy", "distributed", "extrapolation", "fig1", "fig2",
		"fig3", "fig4", "fig5", "fig6", "fig7", "gdr", "lscost", "overlap", "pipeline", "precision", "resilience",
		"startup", "sustained", "table1", "table2", "table3",
	}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("experiments: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("experiments: %v", got)
		}
	}
	if _, err := Run("nope", true); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestAllExperimentsRenderQuickly(t *testing.T) {
	for _, name := range Names() {
		res, err := Run(name, true)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Name() != name {
			t.Fatalf("%s: result named %q", name, res.Name())
		}
		if res.Title() == "" {
			t.Fatalf("%s: empty title", name)
		}
		body := res.Render()
		if len(body) < 40 {
			t.Fatalf("%s: implausibly short render:\n%s", name, body)
		}
	}
}

func TestTable2ContainsAllFourMachines(t *testing.T) {
	res, err := Run("table2", true)
	if err != nil {
		t.Fatal(err)
	}
	body := res.Render()
	for _, m := range []string{"Titan", "Ray", "Sierra", "Summit", "V100", "K20X"} {
		if !strings.Contains(body, m) {
			t.Fatalf("table2 missing %q:\n%s", m, body)
		}
	}
}

func TestFig1ShapeClaims(t *testing.T) {
	res, err := Run("fig1", true)
	if err != nil {
		t.Fatal(err)
	}
	f := res.(Fig1)
	// FH on N beats traditional on factor x N.
	if f.R.FH.Err >= f.R.Trad.Err {
		t.Fatalf("FH err %v !< trad err %v", f.R.FH.Err, f.R.Trad.Err)
	}
	// The raw effective coupling rises towards the plateau (negative
	// excited-state contamination at early times).
	geff := f.R.FH.Geff
	if geff[1] >= f.R.FH.GA {
		t.Fatalf("early-time g_eff %v should sit below the plateau %v", geff[1], f.R.FH.GA)
	}
}

func TestFig3OrderingClaims(t *testing.T) {
	res, err := Run("fig3", true)
	if err != nil {
		t.Fatal(err)
	}
	f := res.(Fig3)
	// At every common GPU count Sierra > Ray > Titan in TFlops.
	for i := range f.Series["Titan"] {
		ti := f.Series["Titan"][i]
		ra := f.Series["Ray"][i]
		si := f.Series["Sierra"][i]
		if !(si.TFlops > ra.TFlops && ra.TFlops > ti.TFlops) {
			t.Fatalf("ordering broken at %d GPUs", ti.GPUs)
		}
	}
	// Fig 3c's best-point bandwidths.
	if bw := f.Series["Sierra"][0].BWPerGPU; bw < 880 || bw > 1000 {
		t.Fatalf("Sierra best-point bandwidth %v", bw)
	}
}

func TestFig4RolloverClaim(t *testing.T) {
	res, err := Run("fig4", true)
	if err != nil {
		t.Fatal(err)
	}
	f := res.(Fig4)
	first := f.Points[0]
	last := f.Points[len(f.Points)-1]
	effFirst := first.TFlops / float64(first.GPUs)
	effLast := last.TFlops / float64(last.GPUs)
	if effLast > 0.5*effFirst {
		t.Fatalf("no Fig. 4 efficiency collapse: %v -> %v TF/GPU", effFirst, effLast)
	}
	// Aggregate rate lands in the paper's PFLOPS ballpark.
	if last.TFlops < 500 || last.TFlops > 3000 {
		t.Fatalf("large-scale rate %v TF", last.TFlops)
	}
}

func TestFig5WeakScalingNearlyPerfect(t *testing.T) {
	res, err := Run("fig5", true)
	if err != nil {
		t.Fatal(err)
	}
	f := res.(Fig5)
	for _, name := range f.Order {
		pts := f.Series[name]
		if len(pts) < 2 {
			t.Fatalf("%s: %d points", name, len(pts))
		}
		// Per-GPU sustained rate roughly constant across the sweep.
		r0 := pts[0].SustainedPFlops / float64(pts[0].GPUs)
		r1 := pts[len(pts)-1].SustainedPFlops / float64(pts[len(pts)-1].GPUs)
		if r1 < 0.9*r0 {
			t.Fatalf("%s: weak scaling degraded %v -> %v", name, r0, r1)
		}
	}
	// The MVAPICH2 series runs below SpectrumMPI per GPU (the 15% vs 20%).
	sp := f.Series["SpectrumMPI"][0]
	mv := f.Series["MVAPICH2: mpi_jm"][0]
	if mv.SustainedPFlops/float64(mv.GPUs) >= sp.SustainedPFlops/float64(sp.GPUs) {
		t.Fatal("MVAPICH2 penalty missing")
	}
}

func TestFig6LinearMETAQScaling(t *testing.T) {
	res, err := Run("fig6", true)
	if err != nil {
		t.Fatal(err)
	}
	f := res.(Fig6)
	r0 := f.Points[0].SustainedPFlops / float64(f.Points[0].GPUs)
	r1 := f.Points[len(f.Points)-1].SustainedPFlops / float64(f.Points[len(f.Points)-1].GPUs)
	if r1 < 0.85*r0 {
		t.Fatalf("METAQ weak scaling not near-perfect: %v -> %v", r0, r1)
	}
}

func TestFig7HistogramShape(t *testing.T) {
	res, err := Run("fig7", true)
	if err != nil {
		t.Fatal(err)
	}
	f := res.(Fig7)
	if f.Hist.NSamples != f.NJobs {
		t.Fatalf("histogram holds %d of %d jobs", f.Hist.NSamples, f.NJobs)
	}
	// Peaked distribution: the mode bin is well above the median bin count.
	total := 0
	for _, c := range f.Hist.Counts {
		total += c
	}
	if f.P90 <= f.P10 {
		t.Fatal("degenerate spread")
	}
	// Left tail from slow placements: mean below the nominal rate.
	if f.Mean >= f.PerJob {
		t.Fatalf("mean %v should sit below nominal %v", f.Mean, f.PerJob)
	}
}

func TestBackfillClaims(t *testing.T) {
	res, err := Run("backfill", true)
	if err != nil {
		t.Fatal(err)
	}
	b := res.(Backfill)
	if idle := b.Naive.IdleFraction(); idle < 0.15 || idle > 0.35 {
		t.Fatalf("naive idle %v", idle)
	}
	if b.METAQSpeedup < 1.1 {
		t.Fatalf("METAQ speedup %v", b.METAQSpeedup)
	}
	if b.MpiJMSpeedup < b.METAQSpeedup*0.95 {
		t.Fatalf("mpi_jm speedup %v should be at least METAQ's %v", b.MpiJMSpeedup, b.METAQSpeedup)
	}
	if b.MpiJMScattered != 0 {
		t.Fatalf("mpi_jm scattered %d placements", b.MpiJMScattered)
	}
}

func TestStartupClaims(t *testing.T) {
	res, err := Run("startup", true)
	if err != nil {
		t.Fatal(err)
	}
	s := res.(Startup)
	last := s.Rows[len(s.Rows)-1]
	if last.Nodes != 4224 {
		t.Fatalf("last row %d nodes", last.Nodes)
	}
	if last.Lump32 < 120 || last.Lump32 > 300 || last.Lump128 < 120 || last.Lump128 > 300 {
		t.Fatalf("lump startup outside 3-5 min window: %v / %v", last.Lump32, last.Lump128)
	}
	if last.Monolithic < last.Lump128 {
		t.Fatal("monolithic should lose at scale")
	}
}

func TestSustainedClaims(t *testing.T) {
	res, err := Run("sustained", true)
	if err != nil {
		t.Fatal(err)
	}
	s := res.(Sustained)
	if s.SmallJobPct < 19 || s.SmallJobPct > 22 {
		t.Fatalf("small-job %v%%", s.SmallJobPct)
	}
	if s.AtScalePct < 13 || s.AtScalePct > 17 {
		t.Fatalf("at-scale %v%%, paper says ~15%%", s.AtScalePct)
	}
	if s.AtScalePFlops < 15 || s.AtScalePFlops > 25 {
		t.Fatalf("at-scale %v PFlops, paper says ~20", s.AtScalePFlops)
	}
	if s.AnticipatedPct <= s.AtScalePct {
		t.Fatal("tuned-MPI anticipation missing")
	}
}

func TestResilienceLumpSizeTradeoff(t *testing.T) {
	res, err := Run("resilience", true)
	if err != nil {
		t.Fatal(err)
	}
	r := res.(Resilience)
	if len(r.Rows) != 3 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	// Bigger lumps waste strictly more.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].WastedPct <= r.Rows[i-1].WastedPct {
			t.Fatalf("waste not increasing with lump size: %+v", r.Rows)
		}
	}
}

func TestGDRAblationHelpsAtScale(t *testing.T) {
	res, err := Run("gdr", true)
	if err != nil {
		t.Fatal(err)
	}
	g := res.(GDR)
	last := len(g.Without) - 1
	gainSmall := g.With[0].TFlops / g.Without[0].TFlops
	gainLarge := g.With[last].TFlops / g.Without[last].TFlops
	if gainLarge <= 1.001 {
		t.Fatalf("GDR gives no gain at %d GPUs", g.With[last].GPUs)
	}
	if gainLarge <= gainSmall {
		t.Fatalf("GDR gain should grow with scale: %v -> %v", gainSmall, gainLarge)
	}
}

func TestPipelineDependenciesHonoured(t *testing.T) {
	res, err := Run("pipeline", true)
	if err != nil {
		t.Fatal(err)
	}
	p := res.(Pipeline)
	// Dependencies: every contraction starts after both its propagators.
	ends := map[int]float64{}
	for _, st := range p.CoScheduled.PerTask {
		if st.Task.Kind == 0 { // GPUTask
			ends[st.Task.ID] = st.End
		}
	}
	for _, st := range p.CoScheduled.PerTask {
		for _, dep := range st.Task.DependsOn {
			if st.Start < ends[dep] {
				t.Fatalf("task %d started before dependency %d finished", st.Task.ID, dep)
			}
		}
	}
	// Co-scheduling must not be slower than exclusive placement.
	if p.CoScheduled.Makespan > p.Exclusive.Makespan {
		t.Fatal("co-scheduling lost to exclusive placement")
	}
}

func TestExtrapolationExperimentRecoversTruth(t *testing.T) {
	res, err := Run("extrapolation", true)
	if err != nil {
		t.Fatal(err)
	}
	e := res.(Extrapolation)
	if d := e.Result.GA - e.Truth; d*d > 9*e.Result.Err*e.Result.Err {
		t.Fatalf("physical point %v +- %v vs truth %v", e.Result.GA, e.Result.Err, e.Truth)
	}
	if e.Tau < 820 || e.Tau > 950 {
		t.Fatalf("tau %v", e.Tau)
	}
	if len(e.Points) != 11 {
		t.Fatalf("%d ensembles", len(e.Points))
	}
}

func TestPrecisionAblationRatios(t *testing.T) {
	res, err := Run("precision", true)
	if err != nil {
		t.Fatal(err)
	}
	p := res.(Precision)
	if len(p.Rows) != 3 {
		t.Fatalf("%d rows", len(p.Rows))
	}
	// half = 4x double, single = 2x double on a bandwidth-bound solver.
	var half, double float64
	for _, r := range p.Rows {
		switch r.Name {
		case "half":
			half = r.Speedup
		case "double":
			double = r.Speedup
		}
	}
	if double != 1 || half < 3.9 || half > 4.1 {
		t.Fatalf("speedups: half %v double %v", half, double)
	}
}

func TestLsCostTradeoff(t *testing.T) {
	res, err := Run("lscost", true)
	if err != nil {
		t.Fatal(err)
	}
	l := res.(LsCost)
	if len(l.Rows) < 2 {
		t.Fatalf("%d rows", len(l.Rows))
	}
	first, last := l.Rows[0], l.Rows[len(l.Rows)-1]
	// Cost grows roughly linearly with Ls (within a factor of 2 of the
	// Ls ratio: iteration counts also shift a little).
	lsRatio := float64(last.Ls) / float64(first.Ls)
	if last.RelCost < lsRatio/2 || last.RelCost > 2.5*lsRatio {
		t.Fatalf("cost ratio %v for Ls ratio %v", last.RelCost, lsRatio)
	}
	// m_res falls much faster than the cost grows.
	if last.RelMRes > 0.25 {
		t.Fatalf("m_res only fell to %v of the Ls=%d value", last.RelMRes, first.Ls)
	}
}

func TestBudgetImprovesWithStatistics(t *testing.T) {
	res, err := Run("budget", true)
	if err != nil {
		t.Fatal(err)
	}
	b := res.(BudgetExp)
	if len(b.Rows) < 2 {
		t.Fatalf("%d rows", len(b.Rows))
	}
	first, last := b.Rows[0], b.Rows[len(b.Rows)-1]
	if last.TotalErr >= first.TotalErr {
		t.Fatalf("total error did not fall: %v -> %v", first.TotalErr, last.TotalErr)
	}
	// The statistical component scales roughly like 1/sqrt(N).
	nRatio := float64(last.Samples) / float64(first.Samples)
	want := math.Sqrt(nRatio)
	ratio := first.StatErr / last.StatErr
	if ratio < want*0.55 || ratio > want*1.8 {
		t.Fatalf("stat error ratio %v for %vx samples (expect ~%v)", ratio, nRatio, want)
	}
}

func TestOverlapBudgetShapes(t *testing.T) {
	res, err := Run("overlap", true)
	if err != nil {
		t.Fatal(err)
	}
	o := res.(Overlap)
	if len(o.Rows) < 3 {
		t.Fatalf("%d rows", len(o.Rows))
	}
	for i := 1; i < len(o.Rows); i++ {
		if o.Rows[i].InteriorFrac > o.Rows[i-1].InteriorFrac {
			t.Fatal("interior fraction not monotone")
		}
	}
}
