package figures

import (
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"time"

	"femtoverse/internal/dirac"
	"femtoverse/internal/gauge"
	"femtoverse/internal/lattice"
	"femtoverse/internal/obs"
	"femtoverse/internal/solver"
	"femtoverse/internal/wire"
)

func init() {
	register("distributed", genDistributed)
}

// Distributed measures the real multi-process halo exchange: one CGNE
// solve through wire.Session at 1..N ranks under every halo policy, each
// checked bit-for-bit against the single-process solve. The interesting
// numbers at this scale are the wire costs - frames, bytes, per-rank
// traffic - not the wall clock (localhost TCP on a femtoscale lattice is
// pure overhead; the policy sweep shows what coarse batching saves).
type Distributed struct {
	BaselineSeconds float64
	BaselineIters   int
	Rows            []DistributedRow
}

// DistributedRow is one (ranks, policy) measurement.
type DistributedRow struct {
	Ranks         int
	Policy        string
	Seconds       float64
	Iters         int
	HaloFrames    int64
	HaloWireBytes int64
	BitDiffs      int
}

// Name implements Result.
func (Distributed) Name() string { return "distributed" }

// Title implements Result.
func (Distributed) Title() string {
	return "Distributed halo exchange over TCP: rank and policy sweep vs single process"
}

// Render implements Result.
func (d Distributed) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "baseline: 1 rank (in-process)  %8.3f s  %d iters\n", d.BaselineSeconds, d.BaselineIters)
	fmt.Fprintf(&b, "# ranks  policy         seconds  iters  halo_frames  halo_wire_bytes  bit_diffs\n")
	for _, r := range d.Rows {
		fmt.Fprintf(&b, "%7d  %-13s %8.3f  %5d  %11d  %15d  %9d\n",
			r.Ranks, r.Policy, r.Seconds, r.Iters, r.HaloFrames, r.HaloWireBytes, r.BitDiffs)
	}
	fmt.Fprintf(&b, "# every row bit-for-bit the single-process solve (bit_diffs must be 0)\n")
	return b.String()
}

// Data implements DataResult.
func (d Distributed) Data() map[string]interface{} {
	out := map[string]interface{}{
		"baseline_seconds": d.BaselineSeconds,
		"baseline_iters":   d.BaselineIters,
	}
	for _, r := range d.Rows {
		k := fmt.Sprintf("ranks%d_%s", r.Ranks, strings.ReplaceAll(r.Policy, "-", "_"))
		out[k+"_seconds"] = r.Seconds
		out[k+"_halo_frames"] = r.HaloFrames
		out[k+"_halo_wire_bytes"] = r.HaloWireBytes
		out[k+"_bit_diffs"] = r.BitDiffs
	}
	return out
}

func genDistributed(quick bool) (Result, error) {
	dims := [lattice.NDim]int{4, 4, 4, 8}
	rankGrids := [][lattice.NDim]int{{1, 1, 1, 2}, {1, 1, 1, 4}}
	if quick {
		dims = [lattice.NDim]int{4, 4, 4, 4}
		rankGrids = rankGrids[:1]
	}
	g, err := lattice.New(dims)
	if err != nil {
		return nil, err
	}
	u := gauge.NewWeak(g, 11, 0.3)
	const mass, tol = 0.1, 1e-8
	b := make([]complex128, g.Vol*12)
	b[0] = 1

	w := dirac.NewWilson(u, mass)
	t0 := time.Now()
	xRef, stRef, err := solver.CGNE(context.Background(), w, b, solver.Params{Tol: tol})
	if err != nil {
		return nil, fmt.Errorf("figures: baseline solve: %w", err)
	}
	out := Distributed{BaselineSeconds: time.Since(t0).Seconds(), BaselineIters: stRef.Iterations}

	ckptDir, err := os.MkdirTemp("", "femtoverse-distributed")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(ckptDir)

	policies := []struct {
		name           string
		coarse, staged bool
	}{
		{"eager-fine", false, false},
		{"eager-coarse", true, false},
		{"staged-fine", false, true},
		{"staged-coarse", true, true},
	}
	for gi, grid := range rankGrids {
		ranks := grid[0] * grid[1] * grid[2] * grid[3]
		for pi, pol := range policies {
			reg := obs.NewRegistry()
			s, err := wire.NewSession(u, wire.Options{
				Grid: grid, Mass: mass,
				Coarse: pol.coarse, Staged: pol.staged,
				CheckpointPath: filepath.Join(ckptDir, fmt.Sprintf("subs-%d-%d.fhio", gi, pi)),
				Metrics:        reg,
				Spawn:          goroutineSpawn,
			})
			if err != nil {
				return nil, fmt.Errorf("figures: %d-rank %s session: %w", ranks, pol.name, err)
			}
			t0 := time.Now()
			x, st, err := solver.CGNE(context.Background(), s, b, solver.Params{Tol: tol})
			secs := time.Since(t0).Seconds()
			s.Close()
			if err != nil {
				return nil, fmt.Errorf("figures: %d-rank %s solve: %w", ranks, pol.name, err)
			}
			diffs := 0
			for i := range x {
				if math.Float64bits(real(x[i])) != math.Float64bits(real(xRef[i])) ||
					math.Float64bits(imag(x[i])) != math.Float64bits(imag(xRef[i])) {
					diffs++
				}
			}
			if diffs != 0 {
				return nil, fmt.Errorf("figures: %d-rank %s solve diverges from single process in %d components", ranks, pol.name, diffs)
			}
			out.Rows = append(out.Rows, DistributedRow{
				Ranks: ranks, Policy: pol.name,
				Seconds: secs, Iters: st.Iterations,
				HaloFrames:    reg.Counter("wire.halo_frames").Value(),
				HaloWireBytes: reg.Counter("wire.halo_wire_bytes").Value(),
				BitDiffs:      diffs,
			})
		}
	}
	return out, nil
}

// goroutineSpawn hosts each worker as a goroutine running the same Serve
// loop the garank binary runs. A worker's exit error is meaningful only
// mid-solve, where it surfaces as a declared death and recovery on the
// coordinator; at session close it is the normal teardown, so the spawn
// path deliberately lets exits pass silently.
func goroutineSpawn(addr string) error {
	go func() {
		err := wire.Serve(addr, wire.WorkerOptions{})
		workerExit(err)
	}()
	return nil
}

// workerExit receives every goroutine worker's exit status. Teardown
// errors are expected (the coordinator hangs up first); anything else is
// already handled by the coordinator's death-and-recovery machinery, so
// there is nothing left to report here.
func workerExit(error) {}
