package figures

import (
	"fmt"
	"strings"

	"femtoverse/internal/domain"
	"femtoverse/internal/gauge"
	"femtoverse/internal/lattice"
	"femtoverse/internal/machine"
	"femtoverse/internal/perfmodel"
)

func init() {
	register("overlap", genOverlap)
}

// Overlap ties the real halo pipeline to the performance model: for a
// sweep of process grids, the *measured* interior fraction and halo bytes
// of the distributed dslash (package domain, which really packs faces,
// sends them over channels, and overlaps the interior compute) sit next
// to the modeled exposed-communication fraction at the corresponding
// Sierra scale. As the local volume shrinks the interior fraction - the
// paper's overlap budget for "in an ideal world the communication can be
// completely overlapped" - collapses, which is exactly where the modeled
// strong scaling rolls over.
type Overlap struct {
	Rows []OverlapRow
}

// OverlapRow is one decomposition.
type OverlapRow struct {
	Grid         [4]int
	Ranks        int
	InteriorFrac float64 // measured: sites computable before any halo
	HaloKB       float64 // measured: bytes exchanged per application
	ModelExposed float64 // modeled: exposed comm fraction of the iteration
}

// Name implements Result.
func (Overlap) Name() string { return "overlap" }

// Title implements Result.
func (Overlap) Title() string {
	return "Halo-overlap budget: measured interior fraction vs modeled exposure"
}

// Render implements Result.
func (o Overlap) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# grid      ranks  interior_frac  halo_KB  model_exposed_frac\n")
	for _, r := range o.Rows {
		grid := fmt.Sprintf("%dx%dx%dx%d", r.Grid[0], r.Grid[1], r.Grid[2], r.Grid[3])
		fmt.Fprintf(&b, "%-9s %6d  %12.2f  %7.0f  %17.2f\n",
			grid, r.Ranks, r.InteriorFrac, r.HaloKB, r.ModelExposed)
	}
	fmt.Fprintf(&b, "# shrinking local volumes destroy the overlap budget (measured) just as\n")
	fmt.Fprintf(&b, "# the modeled exposed communication grows - the Fig. 4 rollover mechanism\n")
	return b.String()
}

func genOverlap(bool) (Result, error) {
	g := lattice.MustNew(8, 8, 8, 16)
	cfg := gauge.NewUnit(g)
	grids := [][4]int{
		{1, 1, 1, 2},
		{1, 1, 2, 2},
		{2, 2, 2, 2},
		{2, 2, 2, 4},
	}
	// Model the same surface-to-volume trajectory on Sierra with the
	// production problem: GPU counts chosen so local volumes shrink by
	// the same factors.
	model := perfmodel.New(machine.Sierra())
	problem := perfmodel.Problem{Global: [4]int{48, 48, 48, 64}, Ls: 20}
	modelGPUs := []int{2, 4, 16, 32}

	var out Overlap
	for i, grid := range grids {
		d, err := domain.NewDist(cfg, grid, 0.1)
		if err != nil {
			return nil, err
		}
		pt, err := model.Solve(problem, modelGPUs[i])
		if err != nil {
			return nil, err
		}
		exposed := 1 - pt.IterSeconds*0 // placeholder replaced below
		// Exposed fraction = (iter - pure-compute) / iter; recompute the
		// pure-compute time from the model constants.
		bytesPerIter := float64(problem.Sites5D()) / float64(modelGPUs[i]) *
			perfmodel.FlopsPerSite5D / perfmodel.AI
		tComp := bytesPerIter / (machine.Sierra().EffectiveBWPerGPUGB() * 1e9)
		exposed = (pt.IterSeconds - tComp) / pt.IterSeconds
		if exposed < 0 {
			exposed = 0
		}
		out.Rows = append(out.Rows, OverlapRow{
			Grid:         grid,
			Ranks:        d.Ranks(),
			InteriorFrac: d.InteriorFraction(),
			HaloKB:       float64(d.HaloBytesPerApply()) / 1024,
			ModelExposed: exposed,
		})
	}
	// The shapes must move in opposite directions.
	first, last := out.Rows[0], out.Rows[len(out.Rows)-1]
	if last.InteriorFrac >= first.InteriorFrac {
		return nil, fmt.Errorf("figures: interior fraction did not shrink")
	}
	if last.ModelExposed <= first.ModelExposed {
		return nil, fmt.Errorf("figures: modeled exposure did not grow")
	}
	return out, nil
}
