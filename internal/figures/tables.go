package figures

import (
	"fmt"
	"strings"

	"femtoverse/internal/machine"
)

func init() {
	register("table1", genTable1)
	register("table2", genTable2)
	register("table3", genTable3)
}

// genTable1 reproduces Table I, the performance-attribute declaration.
func genTable1(bool) (Result, error) {
	rows := [][2]string{
		{"Category of achievement", "time to solution"},
		{"method", "explicit"},
		{"reporting", "whole application including I/O"},
		{"precision", "mixed-precision"},
		{"system scale", "full-scale system"},
		{"measurement method", "FLOP count"},
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %s\n", "Attribute", "Value")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s %s\n", r[0], r[1])
	}
	return text{"table1", "Performance attributes", b.String()}, nil
}

// genTable2 reproduces Table II from the encoded machine models.
func genTable2(bool) (Result, error) {
	ms := machine.All()
	var b strings.Builder
	row := func(label string, f func(m machine.Machine) string) {
		fmt.Fprintf(&b, "%-18s", label)
		for _, m := range ms {
			fmt.Fprintf(&b, " %14s", f(m))
		}
		b.WriteString("\n")
	}
	row("Attribute", func(m machine.Machine) string { return m.Name })
	row("nodes", func(m machine.Machine) string { return fmt.Sprintf("%d", m.Nodes) })
	row("GPUs / node", func(m machine.Machine) string { return fmt.Sprintf("%d", m.GPUsPerNode) })
	row("CPU", func(m machine.Machine) string { return m.CPU })
	row("GPU", func(m machine.Machine) string { return "NVIDIA " + m.GPU.String() })
	row("FP32 TF / node", func(m machine.Machine) string { return fmt.Sprintf("%.0f", m.FP32PerNodeTF) })
	row("GPU bw GB/s", func(m machine.Machine) string { return fmt.Sprintf("%.0f", m.GPUBWPerNodeGB) })
	row("CPU-GPU GB/s", func(m machine.Machine) string { return fmt.Sprintf("%.0f", m.CPUGPUBWGB) })
	row("NIC GB/s", func(m machine.Machine) string { return fmt.Sprintf("%.0f", m.InterconnectGB) })
	row("GCC", func(m machine.Machine) string { return m.GCC })
	row("MPI", func(m machine.Machine) string { return m.MPI })
	row("CUDA", func(m machine.Machine) string { return m.CUDA })
	row("eff GB/s / GPU", func(m machine.Machine) string {
		return fmt.Sprintf("%.0f", m.EffectiveBWPerGPUGB())
	})
	return text{"table2", "Comparison of the systems used in this study", b.String()}, nil
}

// genTable3 reproduces Table III: the application software inventory,
// mapped to the packages of this repository that stand in for each.
func genTable3(bool) (Result, error) {
	rows := [][3]string{
		{"Lalibe", "physics measurement driver", "internal/core + internal/physics"},
		{"Chroma", "application framework", "internal/workflow + internal/prop"},
		{"QUDA", "GPU solver library", "internal/solver + internal/dirac + internal/autotune"},
		{"QDP++", "data-parallel field layer", "internal/linalg + internal/lattice"},
		{"QMP", "communications layer", "internal/comms"},
		{"mpi_jm", "job manager", "internal/mpijm (baseline: internal/metaq)"},
		{"HDF5", "parallel I/O", "internal/hio"},
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-32s %s\n", "Name", "Role", "This repository")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-32s %s\n", r[0], r[1], r[2])
	}
	return text{"table3", "Application software used in this study", b.String()}, nil
}
