package figures

import (
	"fmt"
	"strings"

	"femtoverse/internal/dirac"
	"femtoverse/internal/gauge"
	"femtoverse/internal/lattice"
	"femtoverse/internal/prop"
	"femtoverse/internal/solver"
)

func init() {
	register("lscost", genLsCost)
}

// LsCost quantifies the domain-wall trade at the heart of the action
// choice: solve cost grows linearly with the fifth dimension while the
// residual chiral symmetry breaking falls exponentially - "chirality is
// exponentially cheap". The m_res column comes from real solves (the
// midpoint pseudoscalar measurement) on a small lattice; the cost column
// is the measured CG work.
type LsCost struct {
	Rows []LsCostRow
}

// LsCostRow is one fifth-dimension extent.
type LsCostRow struct {
	Ls      int
	MRes    float64
	RelCost float64 // CG flops relative to the smallest Ls
	RelMRes float64 // m_res relative to the smallest Ls
}

// Name implements Result.
func (LsCost) Name() string { return "lscost" }

// Title implements Result.
func (LsCost) Title() string {
	return "Fifth-dimension cost vs residual chiral symmetry breaking (real solves)"
}

// Render implements Result.
func (l LsCost) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Ls   m_res        rel_cost   rel_mres\n")
	for _, r := range l.Rows {
		fmt.Fprintf(&b, "%4d   %10.3e  %8.2f   %8.4f\n", r.Ls, r.MRes, r.RelCost, r.RelMRes)
	}
	fmt.Fprintf(&b, "# cost grows ~linearly in Ls; m_res falls exponentially - the paper's\n")
	fmt.Fprintf(&b, "# production runs buy chiral symmetry at Ls = 12-20 for this reason\n")
	return b.String()
}

func genLsCost(quick bool) (Result, error) {
	lss := []int{4, 6, 8, 12}
	if quick {
		lss = []int{4, 8}
	}
	g := lattice.MustNew(4, 4, 4, 8)
	cfg := gauge.NewWeak(g, 61, 0.3)
	cfg.FlipTimeBoundary()

	var out LsCost
	var baseCost, baseMres float64
	for i, ls := range lss {
		m, err := dirac.NewMobius(cfg, dirac.MobiusParams{Ls: ls, M5: 1.4, B5: 1.25, C5: 0.25, M: 0.05})
		if err != nil {
			return nil, err
		}
		eo, err := dirac.NewMobiusEO(m)
		if err != nil {
			return nil, err
		}
		qs := prop.NewQuarkSolver(eo, solver.Params{Tol: 1e-9, Precision: solver.Single})
		mres, err := qs.ResidualMass([4]int{0, 0, 0, 0})
		if err != nil {
			return nil, err
		}
		cost := float64(qs.TotalFlops)
		if i == 0 {
			baseCost, baseMres = cost, mres
		}
		out.Rows = append(out.Rows, LsCostRow{
			Ls:      ls,
			MRes:    mres,
			RelCost: cost / baseCost,
			RelMRes: mres / baseMres,
		})
	}
	return out, nil
}
