// Package figures regenerates every table and figure of the paper's
// evaluation, printing the same rows and series the paper reports. Each
// experiment is a named generator returning a renderable result; the
// cmd/latbench CLI and the repository-level benchmarks drive them. The
// absolute numbers come from the calibrated models documented in
// DESIGN.md; the shapes - who wins, by what factor, where crossovers and
// rollovers fall - are the reproduction targets.
package figures

import (
	"fmt"
	"sort"
)

// Result is a rendered experiment.
type Result interface {
	// Name is the experiment identifier (e.g. "fig3", "table2").
	Name() string
	// Title is the human-readable caption.
	Title() string
	// Render returns the textual rows/series of the experiment.
	Render() string
}

// DataResult is a Result that additionally exposes its headline values
// in structured form, for machine-readable output (latbench -json). The
// keys are stable identifiers; renderings may change freely, data keys
// may not.
type DataResult interface {
	Result
	Data() map[string]interface{}
}

// Generator produces a Result; Quick trades statistics for speed and is
// what the unit tests use.
type Generator func(quick bool) (Result, error)

var registry = map[string]Generator{}

func register(name string, g Generator) {
	if _, dup := registry[name]; dup {
		panic("figures: duplicate experiment " + name)
	}
	registry[name] = g
}

// Names lists the registered experiments, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Run generates one experiment by name.
func Run(name string, quick bool) (Result, error) {
	g, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("figures: unknown experiment %q (have %v)", name, Names())
	}
	return g(quick)
}

// text is a simple Result implementation.
type text struct {
	name, title, body string
}

func (t text) Name() string   { return t.name }
func (t text) Title() string  { return t.title }
func (t text) Render() string { return t.body }
