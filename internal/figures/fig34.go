package figures

import (
	"fmt"
	"strings"

	"femtoverse/internal/machine"
	"femtoverse/internal/perfmodel"
)

func init() {
	register("fig3", genFig3)
	register("fig4", genFig4)
}

// Fig3 is the strong-scaling comparison of QUDA's CG across three GPU
// generations on the 48^3 x 64 lattice: aggregate TFLOPS (a), percent of
// peak (b), and sustained effective bandwidth per GPU (c).
type Fig3 struct {
	Problem perfmodel.Problem
	Series  map[string][]perfmodel.Point
	Order   []string
}

// Name implements Result.
func (Fig3) Name() string { return "fig3" }

// Title implements Result.
func (Fig3) Title() string {
	return "Strong scaling of the CG solver on Titan / Ray / Sierra (48^3 x 64)"
}

// Render implements Result.
func (f Fig3) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# machine  GPUs  TFlops  pct_peak  GBs_per_GPU  policy\n")
	for _, name := range f.Order {
		for _, p := range f.Series[name] {
			fmt.Fprintf(&b, "%-8s %5d  %7.1f  %7.1f  %9.0f  %s\n",
				name, p.GPUs, p.TFlops, p.PctPeak, p.BWPerGPU, p.Choice)
		}
	}
	return b.String()
}

func genFig3(bool) (Result, error) {
	problem := perfmodel.Problem{Global: [4]int{48, 48, 48, 64}, Ls: 20}
	counts := []int{4, 8, 16, 32, 64, 96, 128, 160}
	f := Fig3{
		Problem: problem,
		Series:  map[string][]perfmodel.Point{},
		Order:   []string{"Titan", "Ray", "Sierra"},
	}
	for _, m := range []machine.Machine{machine.Titan(), machine.Ray(), machine.Sierra()} {
		f.Series[m.Name] = perfmodel.New(m).StrongScaling(problem, counts)
		if len(f.Series[m.Name]) == 0 {
			return nil, fmt.Errorf("figures: no admissible points for %s", m.Name)
		}
	}
	return f, nil
}

// Fig4 is the Summit strong scaling of a single 96^3 x 144 solve to a
// significant fraction of the machine, showing the efficiency collapse
// past ~2000 GPUs.
type Fig4 struct {
	Points []perfmodel.Point
}

// Name implements Result.
func (Fig4) Name() string { return "fig4" }

// Title implements Result.
func (Fig4) Title() string {
	return "Strong scaling on Summit, single 96^3 x 144 lattice"
}

// Render implements Result.
func (f Fig4) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# GPUs   TFlops   TFlops_per_GPU  policy\n")
	for _, p := range f.Points {
		fmt.Fprintf(&b, "%6d  %8.1f  %8.3f  %s\n",
			p.GPUs, p.TFlops, p.TFlops/float64(p.GPUs), p.Choice)
	}
	return b.String()
}

func genFig4(bool) (Result, error) {
	problem := perfmodel.Problem{Global: [4]int{96, 96, 96, 144}, Ls: 20}
	counts := []int{96, 192, 384, 768, 1536, 2592, 3456, 5184, 6912, 10368}
	pts := perfmodel.New(machine.Summit()).StrongScaling(problem, counts)
	if len(pts) < 5 {
		return nil, fmt.Errorf("figures: only %d Summit points", len(pts))
	}
	return Fig4{Points: pts}, nil
}
