package figures

import (
	"fmt"
	"math/rand"
	"strings"

	"femtoverse/internal/cluster"
	"femtoverse/internal/machine"
	"femtoverse/internal/metaq"
	"femtoverse/internal/mpijm"
	"femtoverse/internal/perfmodel"
)

func init() {
	register("fig5", genFig5)
	register("fig6", genFig6)
}

// WeakPoint is one weak-scaling measurement: sustained aggregate rate
// when nJobs independent solves run under a job-management strategy.
type WeakPoint struct {
	GPUs            int
	Jobs            int
	SustainedPFlops float64
	GPUUtil         float64
}

// weakScale runs nJobs identical jobs under the policy and returns the
// sustained aggregate performance: total solver work divided by the time
// the allocation took to complete it.
func weakScale(m machine.Machine, nJobs, gpusPerJob int, perJobTF float64,
	pol cluster.Policy, seed int64) (WeakPoint, error) {
	nodesPerJob := gpusPerJob / m.GPUsPerNode
	cfg := cluster.Config{
		Nodes:           nJobs * nodesPerJob,
		GPUsPerNode:     m.GPUsPerNode,
		CPUSlotsPerNode: m.CPUSlotsPerNode,
		JitterSigma:     0.02,
		Seed:            seed,
	}
	rng := rand.New(rand.NewSource(seed + 1))
	const jobSeconds = 3600.0
	tasks := make([]cluster.Task, nJobs)
	for i := range tasks {
		tasks[i] = cluster.Task{
			ID: i, Name: "prop", Kind: cluster.GPUTask, GPUs: gpusPerJob,
			Seconds: jobSeconds * (1 + 0.05*(2*rng.Float64()-1)),
		}
	}
	rep, err := cluster.Run(cfg, tasks, pol)
	if err != nil {
		return WeakPoint{}, err
	}
	totalWork := 0.0
	for _, t := range tasks {
		totalWork += perJobTF * t.Seconds // TF x seconds of solver work
	}
	window := rep.Makespan - rep.StartupSeconds
	return WeakPoint{
		GPUs:            nJobs * gpusPerJob,
		Jobs:            nJobs,
		SustainedPFlops: totalWork / window / 1e3,
		GPUUtil:         rep.GPUUtil,
	}, nil
}

// Fig5 is the Sierra weak scaling: 4-node (16-GPU) 48^3 x 64 solves under
// SpectrumMPI individual submissions, openMPI mpi_jm blocks, and a single
// MVAPICH2 mpi_jm job spanning the allocation.
type Fig5 struct {
	Series map[string][]WeakPoint
	Order  []string
}

// Name implements Result.
func (Fig5) Name() string { return "fig5" }

// Title implements Result.
func (Fig5) Title() string {
	return "Weak scaling of 16-GPU propagator solves on Sierra (48^3 x 64)"
}

// Render implements Result.
func (f Fig5) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# series              GPUs   jobs   PFlops   util\n")
	for _, name := range f.Order {
		for _, p := range f.Series[name] {
			fmt.Fprintf(&b, "%-20s %6d  %5d  %7.2f  %5.2f\n",
				name, p.GPUs, p.Jobs, p.SustainedPFlops, p.GPUUtil)
		}
	}
	return b.String()
}

func genFig5(quick bool) (Result, error) {
	m := machine.Sierra()
	problem := perfmodel.Problem{Global: [4]int{48, 48, 48, 64}, Ls: 20}
	perJob, err := perfmodel.New(m).JobPerformance(problem, 16)
	if err != nil {
		return nil, err
	}
	f := Fig5{
		Series: map[string][]WeakPoint{},
		Order:  []string{"SpectrumMPI", "openMPI: mpi_jm", "MVAPICH2: mpi_jm"},
	}
	spectrum := []int{25, 50, 100, 200, 400} // 400-job submission ceiling
	openmpi := []int{25, 50, 100, 175}       // 7 blocks of 100 nodes
	mvapich := []int{64, 128, 256, 512, 844, 1056}
	if quick {
		spectrum, openmpi, mvapich = []int{25, 100}, []int{25, 100}, []int{64, 256}
	}
	for _, n := range spectrum {
		// Individually scheduled jobs: each allocation holds exactly one
		// job, so there is no bundling idle at all; model as perfectly
		// packed naive bundles of identical jobs with no launch coupling.
		pt, err := weakScale(m, n, 16, perJob, exactFit{}, 100+int64(n))
		if err != nil {
			return nil, err
		}
		f.Series["SpectrumMPI"] = append(f.Series["SpectrumMPI"], pt)
	}
	for _, n := range openmpi {
		pol := mpijm.New(mpijm.Params{LumpNodes: 100, BlockNodes: 4, SolveEfficiency: 0.97})
		pt, err := weakScale(m, n, 16, perJob, pol, 200+int64(n))
		if err != nil {
			return nil, err
		}
		f.Series["openMPI: mpi_jm"] = append(f.Series["openMPI: mpi_jm"], pt)
	}
	for _, n := range mvapich {
		pol := mpijm.New(mpijm.Params{LumpNodes: 128, BlockNodes: 4, SolveEfficiency: 0.75})
		pt, err := weakScale(m, n, 16, perJob, pol, 300+int64(n))
		if err != nil {
			return nil, err
		}
		f.Series["MVAPICH2: mpi_jm"] = append(f.Series["MVAPICH2: mpi_jm"], pt)
	}
	return f, nil
}

// exactFit models individually scheduled jobs: every pending task starts
// immediately on its own nodes (the batch system gave each job a
// dedicated allocation).
type exactFit struct{}

// Name implements cluster.Policy.
func (exactFit) Name() string { return "individual-jobs" }

// Startup implements cluster.Policy.
func (exactFit) Startup(cluster.Config) float64 { return 0 }

// Dispatch implements cluster.Policy.
func (exactFit) Dispatch(s *cluster.Sim) []cluster.Start {
	free := s.FreeWholeNodes()
	per := s.Config().GPUsPerNode
	var out []cluster.Start
	for _, id := range s.PendingIDs() {
		t, _ := s.PendingTask(id)
		need := (t.GPUs + per - 1) / per
		if need > len(free) {
			break
		}
		out = append(out, cluster.Start{
			TaskID: id, Nodes: free[:need], SpeedPenalty: 1,
		})
		free = free[need:]
	}
	return out
}

// Fig6 is the Summit weak scaling with METAQ: 4-node (24-GPU) 64^3 x 96
// solves dispatched by a single METAQ instance using jsrun.
type Fig6 struct {
	Points []WeakPoint
}

// Name implements Result.
func (Fig6) Name() string { return "fig6" }

// Title implements Result.
func (Fig6) Title() string {
	return "Weak scaling of 24-GPU propagator solves on Summit under METAQ (64^3 x 96)"
}

// Render implements Result.
func (f Fig6) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# GPUs   jobs   PFlops   util\n")
	for _, p := range f.Points {
		fmt.Fprintf(&b, "%6d  %5d  %7.2f  %5.2f\n", p.GPUs, p.Jobs, p.SustainedPFlops, p.GPUUtil)
	}
	return b.String()
}

func genFig6(quick bool) (Result, error) {
	m := machine.Summit()
	problem := perfmodel.Problem{Global: [4]int{64, 64, 64, 96}, Ls: 12}
	perJob, err := perfmodel.New(m).JobPerformance(problem, 24)
	if err != nil {
		return nil, err
	}
	counts := []int{16, 32, 64, 128, 200, 280}
	if quick {
		counts = []int{16, 64}
	}
	f := Fig6{}
	for _, n := range counts {
		pt, err := weakScale(m, n, 24, perJob, metaq.Policy{LaunchOverhead: 20}, 400+int64(n))
		if err != nil {
			return nil, err
		}
		f.Points = append(f.Points, pt)
	}
	return f, nil
}
