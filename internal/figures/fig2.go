package figures

import (
	"fmt"
	"strings"

	"femtoverse/internal/workflow"
)

func init() {
	register("fig2", genFig2)
	register("amortize", genAmortize)
}

// Fig2 reports the application workflow budget: the modeled
// production-scale split (the paper's 96.5 / 3 / 0.5) plus, optionally, a
// real laptop-scale execution of the identical pipeline.
type Fig2 struct {
	Model *workflow.ModelResult
	Real  *workflow.RealResult
}

// Name implements Result.
func (Fig2) Name() string { return "fig2" }

// Title implements Result.
func (Fig2) Title() string {
	return "Application workflow budget: propagators / contractions / I/O"
}

// Render implements Result.
func (f Fig2) Render() string {
	var b strings.Builder
	p, c, io := f.Model.Budget.Fractions()
	fmt.Fprintf(&b, "# production-scale model (Sierra, 48^3x64x20, 16-GPU jobs)\n")
	fmt.Fprintf(&b, "propagators   %6.2f %%   (paper: 96.5%%)\n", p)
	fmt.Fprintf(&b, "contractions  %6.2f %%   (paper: 3%%)\n", c)
	fmt.Fprintf(&b, "i/o           %6.2f %%   (paper: 0.5%%)\n", io)
	fmt.Fprintf(&b, "one 12-component propagator: %.0f s on a %.1f TFLOPS job\n",
		12*f.Model.SolveSeconds, f.Model.JobTFlops)
	if f.Real != nil {
		rp, rc, rio := f.Real.Budget.Fractions()
		fmt.Fprintf(&b, "# real laptop-scale pipeline (actual solves, hio, contractions)\n")
		fmt.Fprintf(&b, "propagators   %6.2f %%\ncontractions  %6.2f %%\ni/o           %6.2f %%\n", rp, rc, rio)
		fmt.Fprintf(&b, "solves=%d iterations=%d io=%d bytes\n",
			f.Real.Solves, f.Real.Iterations, f.Real.IOBytes)
	}
	return b.String()
}

func genFig2(quick bool) (Result, error) {
	model, err := workflow.Model(workflow.DefaultModelConfig())
	if err != nil {
		return nil, err
	}
	out := Fig2{Model: model}
	if !quick {
		cfg := workflow.DefaultRealConfig()
		real, err := workflow.RunReal(cfg)
		if err != nil {
			return nil, err
		}
		out.Real = real
	}
	return out, nil
}

// Amortize reports the co-scheduling experiment: the whole-application
// budget with and without mpi_jm's CPU/GPU overlay.
type Amortize struct {
	Before, After workflow.Budget
	SustainedPct  float64
}

// Name implements Result.
func (Amortize) Name() string { return "amortize" }

// Title implements Result.
func (Amortize) Title() string {
	return "CPU/GPU co-scheduling: contraction cost amortized to zero"
}

// Render implements Result.
func (a Amortize) Render() string {
	var b strings.Builder
	p0, c0, i0 := a.Before.Fractions()
	p1, c1, i1 := a.After.Fractions()
	fmt.Fprintf(&b, "serial     : prop %.2f%%  contract %.2f%%  io %.2f%%\n", p0, c0, i0)
	fmt.Fprintf(&b, "co-scheduled: prop %.2f%%  contract %.2f%%  io %.2f%%\n", p1, c1, i1)
	fmt.Fprintf(&b, "wall-clock saved: %.2f%%\n", 100*(a.Before.Total()-a.After.Total())/a.Before.Total())
	fmt.Fprintf(&b, "whole-application sustained: %.1f%% of peak\n", a.SustainedPct)
	return b.String()
}

func genAmortize(bool) (Result, error) {
	model, err := workflow.Model(workflow.DefaultModelConfig())
	if err != nil {
		return nil, err
	}
	return Amortize{
		Before:       model.Budget,
		After:        model.Budget.Amortized(),
		SustainedPct: model.AppSustainedPct,
	}, nil
}
