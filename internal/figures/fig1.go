package figures

import (
	"fmt"
	"strings"

	"femtoverse/internal/core"
)

func init() {
	register("fig1", genFig1)
}

// Fig1 holds the Fig. 1 reproduction: the effective axial coupling from
// the Feynman-Hellmann method (raw and excited-state-subtracted curves
// with errors), the traditional large-t points from an order of magnitude
// more statistics, and the two final bands.
type Fig1 struct {
	R *core.SyntheticResult
}

// Name implements Result.
func (Fig1) Name() string { return "fig1" }

// Title implements Result.
func (Fig1) Title() string {
	return "Effective gA: FH method (grey/black) vs traditional (colored) with 10x statistics"
}

// Render implements Result.
func (f Fig1) Render() string {
	var b strings.Builder
	r := f.R
	fmt.Fprintf(&b, "# FH samples: %d   traditional samples: %d (x%d)\n",
		r.FH.NSamples, r.Trad.NSamples, r.TradFactor)
	fmt.Fprintf(&b, "# t   geff_raw   err        geff_subtracted\n")
	for i, t := range r.FH.Times {
		if t < 1 || t > 12 {
			continue
		}
		fmt.Fprintf(&b, "%4.0f  %9.4f  %9.4f  %9.4f\n",
			t, r.FH.Geff[i], r.FH.GeffErr[i], r.FH.Subtracted[i])
	}
	fmt.Fprintf(&b, "# traditional fixed-sink midpoints (exponentially noisier with t_sep):\n")
	for _, p := range r.TradPoints {
		fmt.Fprintf(&b, "# tsep=%2d  R(mid) = %7.4f +- %7.4f\n", p.TSep, p.Midpoint, p.Err)
	}
	fmt.Fprintf(&b, "# FH band   : gA = %.4f +- %.4f  (%.2f%% precision, chi2/dof %.2f)\n",
		r.FH.GA, r.FH.Err, r.FH.Precision(), r.FH.Chi2PerDOF)
	fmt.Fprintf(&b, "# trad band : gA = %.4f +- %.4f  (%.2f%% precision)\n",
		r.Trad.GA, r.Trad.Err, r.Trad.Precision())
	fmt.Fprintf(&b, "# effective statistical speed-up of the FH method: x%.0f\n", r.SpeedupFactor())
	fmt.Fprintf(&b, "# neutron lifetime, Eq.(1): tau_n = %.1f +- %.1f s\n", r.TauSeconds, r.TauErr)
	return b.String()
}

func genFig1(quick bool) (Result, error) {
	n, factor, seed := 784, 10, int64(21)
	if quick {
		n, factor = 150, 4
	}
	r, err := core.RunSynthetic(n, factor, seed)
	if err != nil {
		return nil, err
	}
	return Fig1{R: r}, nil
}
