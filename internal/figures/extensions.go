package figures

import (
	"fmt"
	"math/rand"
	"strings"

	"femtoverse/internal/cluster"
	"femtoverse/internal/machine"
	"femtoverse/internal/mpijm"
	"femtoverse/internal/perfmodel"
)

func init() {
	register("resilience", genResilience)
	register("gdr", genGDR)
	register("pipeline", genPipeline)
}

// Resilience quantifies the paper's lump-size trade-off: MPI_Abort in any
// spawned job brings down its whole lump, so larger lumps amplify every
// task failure into more lost work - the reason the paper "used
// relatively small lump sizes on new systems that may be suffering from
// pre-acceptance issues".
type Resilience struct {
	Rows []ResilienceRow
}

// ResilienceRow is one lump-size measurement.
type ResilienceRow struct {
	LumpNodes int
	Failures  int
	WastedPct float64 // wasted GPU-seconds / useful GPU-seconds
	MakespanS float64
}

// Name implements Result.
func (Resilience) Name() string { return "resilience" }

// Title implements Result.
func (Resilience) Title() string {
	return "Lump size vs failure blast radius (MPI_Abort brings the lump down)"
}

// Render implements Result.
func (r Resilience) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# lump_nodes  failures  wasted_pct  makespan_s\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%11d  %8d  %9.1f%%  %10.0f\n",
			row.LumpNodes, row.Failures, row.WastedPct, row.MakespanS)
	}
	fmt.Fprintf(&b, "# paper: failures take down the whole lump; small lumps bound the damage\n")
	return b.String()
}

func genResilience(quick bool) (Result, error) {
	nTasks := 96
	if quick {
		nTasks = 48
	}
	rng := rand.New(rand.NewSource(11))
	var tasks []cluster.Task
	for i := 0; i < nTasks; i++ {
		tasks = append(tasks, cluster.Task{
			ID: i, Name: "prop", Kind: cluster.GPUTask, GPUs: 16,
			Seconds: 1500 * (1 + 0.2*(2*rng.Float64()-1)),
		})
	}
	var out Resilience
	for _, lump := range []int{8, 32, 128} {
		cfg := cluster.Config{
			Nodes: 128, GPUsPerNode: 4, CPUSlotsPerNode: 40,
			JitterSigma: 0.03, Seed: 13,
			FailureRate: 0.04, MaxRetries: 100,
		}
		pol := mpijm.New(mpijm.Params{LumpNodes: lump, BlockNodes: 4})
		rep, err := cluster.Run(cfg, tasks, pol)
		if err != nil {
			return nil, err
		}
		useful := rep.GPUBusy - rep.WastedGPUSeconds
		out.Rows = append(out.Rows, ResilienceRow{
			LumpNodes: lump,
			Failures:  rep.Failures,
			WastedPct: 100 * rep.WastedGPUSeconds / useful,
			MakespanS: rep.Makespan - rep.StartupSeconds,
		})
	}
	return out, nil
}

// GDR is the GPUDirect-RDMA ablation: the paper notes Sierra and Summit
// did not support it at submission time, "limiting our multi-node
// capability and scaling". This experiment re-runs the Fig. 3 Sierra
// strong scaling with GDR hypothetically enabled.
type GDR struct {
	Without []perfmodel.Point
	With    []perfmodel.Point
}

// Name implements Result.
func (GDR) Name() string { return "gdr" }

// Title implements Result.
func (GDR) Title() string {
	return "GPUDirect RDMA ablation on Sierra strong scaling (48^3 x 64)"
}

// Render implements Result.
func (g GDR) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# GPUs   no-GDR_TFlops  policy            GDR_TFlops  policy           gain\n")
	for i := range g.Without {
		wo, wi := g.Without[i], g.With[i]
		fmt.Fprintf(&b, "%6d  %11.1f  %-18s %9.1f  %-18s %5.1f%%\n",
			wo.GPUs, wo.TFlops, wo.Choice.String(), wi.TFlops, wi.Choice.String(),
			100*(wi.TFlops/wo.TFlops-1))
	}
	fmt.Fprintf(&b, "# paper: missing GDR support 'limited our multi-node capability and scaling'\n")
	return b.String()
}

func genGDR(bool) (Result, error) {
	problem := perfmodel.Problem{Global: [4]int{48, 48, 48, 64}, Ls: 20}
	counts := []int{4, 16, 64, 128, 256}
	without := perfmodel.New(machine.Sierra()).StrongScaling(problem, counts)
	hypo := machine.Sierra()
	hypo.GPUDirectRDMA = true
	with := perfmodel.New(hypo).StrongScaling(problem, counts)
	if len(without) != len(with) || len(without) == 0 {
		return nil, fmt.Errorf("figures: GDR sweep mismatch")
	}
	return GDR{Without: without, With: with}, nil
}

// Pipeline runs the Fig. 2 workflow as a *scheduled campaign with real
// dependencies*: every contraction depends on the propagators it
// consumes, and mpi_jm's co-scheduling hides the dependent CPU work under
// the remaining GPU solves.
type Pipeline struct {
	CoScheduled cluster.Report
	Exclusive   cluster.Report
}

// Name implements Result.
func (Pipeline) Name() string { return "pipeline" }

// Title implements Result.
func (Pipeline) Title() string {
	return "Dependency-aware campaign: contractions gated on their propagators"
}

// Render implements Result.
func (p Pipeline) Render() string {
	var b strings.Builder
	w := func(r cluster.Report) float64 { return r.Makespan - r.StartupSeconds }
	fmt.Fprintf(&b, "co-scheduled : makespan %7.0f s  gpu-util %5.1f%%\n", w(p.CoScheduled), 100*p.CoScheduled.GPUUtil)
	fmt.Fprintf(&b, "exclusive    : makespan %7.0f s  gpu-util %5.1f%%\n", w(p.Exclusive), 100*p.Exclusive.GPUUtil)
	fmt.Fprintf(&b, "co-scheduling saves %.1f%% wall clock with dependencies honoured\n",
		100*(1-w(p.CoScheduled)/w(p.Exclusive)))
	return b.String()
}

func genPipeline(quick bool) (Result, error) {
	nProps := 48
	if quick {
		nProps = 24
	}
	rng := rand.New(rand.NewSource(17))
	var tasks []cluster.Task
	for i := 0; i < nProps; i++ {
		tasks = append(tasks, cluster.Task{
			ID: i, Name: "prop", Kind: cluster.GPUTask, GPUs: 16,
			Seconds: 1800 * (1 + 0.2*(2*rng.Float64()-1)),
		})
	}
	// Three contractions per pair of consecutive propagators (different
	// operators/momenta), a realistically CPU-heavy analysis load.
	for i := 0; i+1 < nProps; i++ {
		for k := 0; k < 3; k++ {
			tasks = append(tasks, cluster.Task{
				ID: 10000 + 3*i + k, Name: "contraction", Kind: cluster.CPUTask, CPUs: 8,
				Seconds:   600,
				DependsOn: []int{i, i + 1},
			})
		}
	}
	cfg := cluster.Config{
		Nodes: 32, GPUsPerNode: 4, CPUSlotsPerNode: 40,
		JitterSigma: 0.03, Seed: 19,
	}
	co, err := cluster.Run(cfg, tasks, mpijm.New(mpijm.Params{LumpNodes: 32, BlockNodes: 4, CoSchedule: true}))
	if err != nil {
		return nil, err
	}
	ex, err := cluster.Run(cfg, tasks, mpijm.New(mpijm.Params{LumpNodes: 32, BlockNodes: 4, CoSchedule: false}))
	if err != nil {
		return nil, err
	}
	return Pipeline{CoScheduled: co, Exclusive: ex}, nil
}
