package figures

import (
	"fmt"
	"strings"

	"femtoverse/internal/machine"
	"femtoverse/internal/perfmodel"
)

func init() {
	register("precision", genPrecision)
}

// Precision quantifies Table I's "mixed-precision" attribute: on a
// bandwidth-bound solver, the storage precision sets the bytes streamed
// per flop, so 16-bit fixed point doubles the arithmetic intensity of
// single precision and quadruples that of double - which is (almost
// exactly) the sustained-rate ratio. The extra CGNE iterations the sloppy
// precisions need are repaid many times over; reliable updates make the
// answer exact.
type Precision struct {
	Rows []PrecisionRow
}

// PrecisionRow is one storage-precision operating point.
type PrecisionRow struct {
	Name         string
	BytesPerReal float64
	AI           float64
	TFlopsPerGPU float64
	Speedup      float64 // vs double
}

// Name implements Result.
func (Precision) Name() string { return "precision" }

// Title implements Result.
func (Precision) Title() string {
	return "Storage precision vs sustained solver rate (Sierra, bandwidth-bound)"
}

// Render implements Result.
func (p Precision) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# precision  bytes/real  arith_intensity  TFlops/GPU  speedup\n")
	for _, r := range p.Rows {
		fmt.Fprintf(&b, "%-10s  %10.0f  %15.3f  %10.2f  x%.2f\n",
			r.Name, r.BytesPerReal, r.AI, r.TFlopsPerGPU, r.Speedup)
	}
	fmt.Fprintf(&b, "# the paper's double-half reliable-update CG banks the 4x while staying exact\n")
	return b.String()
}

func genPrecision(bool) (Result, error) {
	m := machine.Sierra()
	bwEff := m.EffectiveBWPerGPUGB() // GB/s at the best operating point
	out := Precision{}
	base := 0.0
	for _, c := range []struct {
		name  string
		bytes float64
	}{
		{"half", 2}, {"single", 4}, {"double", 8},
	} {
		// AI scales inversely with bytes per real; the paper quotes 1.9
		// for half precision.
		ai := perfmodel.AI * 2 / c.bytes
		tflops := bwEff * ai / 1e3
		out.Rows = append(out.Rows, PrecisionRow{
			Name: c.name, BytesPerReal: c.bytes, AI: ai, TFlopsPerGPU: tflops,
		})
		if c.name == "double" {
			base = tflops
		}
	}
	for i := range out.Rows {
		out.Rows[i].Speedup = out.Rows[i].TFlopsPerGPU / base
	}
	return out, nil
}
