package figures

import (
	"context"
	"fmt"
	"time"

	"femtoverse/internal/cache"
	"femtoverse/internal/core"
	"femtoverse/internal/obs"
)

func init() {
	register("cachewarm", genCacheWarm)
}

// dataText is a text Result that also carries structured values for the
// -json output mode of cmd/latbench.
type dataText struct {
	text
	data map[string]interface{}
}

func (d dataText) Data() map[string]interface{} { return d.data }

// genCacheWarm measures the content-addressed result cache end to end: a
// cold campaign (every configuration solved, every result stored) versus
// a warm rerun of identical physics over the same store. The warm run's
// correlators are bit-for-bit the cold run's - that is enforced by the
// core tests - so the experiment reports the economics: wall-clock
// speedup and the solver iterations eliminated.
func genCacheWarm(quick bool) (Result, error) {
	spec := core.DefaultRealConfig()
	spec.Dims = [4]int{2, 2, 2, 6}
	spec.NConfigs = 2
	spec.ThermSweeps = 3
	spec.GapSweeps = 1
	if !quick {
		spec.NConfigs = 4
	}
	store, err := cache.New(cache.Config{})
	if err != nil {
		return nil, err
	}

	run := func() (sec float64, iters int64, err error) {
		reg := obs.NewRegistry()
		camp := core.NewCampaign(spec)
		camp.Cache = store
		camp.Obs = core.ObsConfig{Metrics: reg}
		t0 := time.Now()
		n, _, err := camp.RunBatchConcurrent(context.Background(), spec.NConfigs, 2)
		if err != nil {
			return 0, 0, err
		}
		if n != spec.NConfigs {
			return 0, 0, fmt.Errorf("cachewarm: %d of %d configurations completed", n, spec.NConfigs)
		}
		return time.Since(t0).Seconds(), reg.Counter("core.solver_iterations").Value(), nil
	}

	coldSec, coldIters, err := run()
	if err != nil {
		return nil, err
	}
	warmSec, warmIters, err := run()
	if err != nil {
		return nil, err
	}
	st := store.Stats()
	speedup := 0.0
	if warmSec > 0 {
		speedup = coldSec / warmSec
	}

	body := fmt.Sprintf(
		"run    configs  seconds    solver-iters\n"+
			"cold   %-7d  %-9.3f  %d\n"+
			"warm   %-7d  %-9.3f  %d\n"+
			"speedup %.1fx   cache: %d computes, %d hits, %d misses\n",
		spec.NConfigs, coldSec, coldIters,
		spec.NConfigs, warmSec, warmIters,
		speedup, st.Computes, st.Hits, st.Misses)

	return dataText{
		text: text{
			name:  "cachewarm",
			title: "Content-addressed cache: cold vs warm campaign",
			body:  body,
		},
		data: map[string]interface{}{
			"configs":           spec.NConfigs,
			"cold_seconds":      coldSec,
			"warm_seconds":      warmSec,
			"speedup":           speedup,
			"cold_solver_iters": coldIters,
			"warm_solver_iters": warmIters,
			"cache_computes":    st.Computes,
			"cache_hits":        st.Hits,
			"cache_misses":      st.Misses,
		},
	}, nil
}
