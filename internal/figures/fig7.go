package figures

import (
	"fmt"
	"strings"

	"femtoverse/internal/cluster"
	"femtoverse/internal/machine"
	"femtoverse/internal/mpijm"
	"femtoverse/internal/perfmodel"
	"femtoverse/internal/stats"
)

func init() {
	register("fig7", genFig7)
}

// Fig7 is the histogram of per-job solver performance from the largest
// run: 13,500 GPUs on Sierra under mpi_jm with MVAPICH2. The spread comes
// from per-node performance jitter and a tail of slower placements.
type Fig7 struct {
	Hist   *stats.Histogram
	Mean   float64
	P10    float64
	P90    float64
	NJobs  int
	PerJob float64 // nominal per-job TFLOPS at full efficiency
}

// Name implements Result.
func (Fig7) Name() string { return "fig7" }

// Title implements Result.
func (Fig7) Title() string {
	return "Histogram of per-job solver performance, 13500-GPU mpi_jm run on Sierra"
}

// Render implements Result.
func (f Fig7) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %d jobs of 16 GPUs, nominal %.1f TFLOPS per job\n", f.NJobs, f.PerJob)
	fmt.Fprintf(&b, "# TFlops_bin_center  count\n")
	maxCount := 0
	for _, c := range f.Hist.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	for i, c := range f.Hist.Counts {
		bar := ""
		if maxCount > 0 {
			bar = strings.Repeat("*", c*50/maxCount)
		}
		fmt.Fprintf(&b, "%8.2f  %5d  %s\n", f.Hist.BinCenter(i), c, bar)
	}
	fmt.Fprintf(&b, "# mean %.2f TF, p10 %.2f, p90 %.2f, mode %.2f\n",
		f.Mean, f.P10, f.P90, f.Hist.Mode())
	return b.String()
}

func genFig7(quick bool) (Result, error) {
	m := machine.Sierra()
	problem := perfmodel.Problem{Global: [4]int{48, 48, 48, 64}, Ls: 20}
	perJob, err := perfmodel.New(m).JobPerformance(problem, 16)
	if err != nil {
		return nil, err
	}
	nJobs := 844 // 13504 GPUs
	if quick {
		nJobs = 200
	}
	cfg := cluster.Config{
		Nodes:           nJobs * 4,
		GPUsPerNode:     m.GPUsPerNode,
		CPUSlotsPerNode: m.CPUSlotsPerNode,
		JitterSigma:     0.035,
		SlowNodeFrac:    0.06,
		SlowFactor:      0.85,
		Seed:            77,
	}
	tasks := make([]cluster.Task, nJobs)
	for i := range tasks {
		tasks[i] = cluster.Task{
			ID: i, Name: "prop", Kind: cluster.GPUTask, GPUs: 16, Seconds: 3600,
		}
	}
	pol := mpijm.New(mpijm.Params{LumpNodes: 128, BlockNodes: 4, SolveEfficiency: 0.75})
	rep, err := cluster.Run(cfg, tasks, pol)
	if err != nil {
		return nil, err
	}
	perf := make([]float64, 0, nJobs)
	for _, st := range rep.PerTask {
		perf = append(perf, perJob*st.Speed)
	}
	lo, hi := stats.Percentile(perf, 0), stats.Percentile(perf, 1)
	h, err := stats.NewHistogram(lo*0.98, hi*1.02, 30)
	if err != nil {
		return nil, err
	}
	for _, p := range perf {
		h.Add(p)
	}
	return Fig7{
		Hist:   h,
		Mean:   stats.Mean(perf),
		P10:    stats.Percentile(perf, 0.1),
		P90:    stats.Percentile(perf, 0.9),
		NJobs:  nJobs,
		PerJob: perJob,
	}, nil
}
