package figures

import (
	"fmt"
	"strings"

	"femtoverse/internal/comms"
	"femtoverse/internal/machine"
)

func init() {
	register("commpolicy", genCommPolicy)
}

// CommPolicy tabulates which halo-exchange strategy wins across the
// message-size / concurrency plane - the multi-dimensional parameter
// space of Section V whose machine-specificity is the whole argument for
// autotuning the communication policy rather than hard-coding it.
type CommPolicy struct {
	Machine string
	Rows    []CommPolicyRow
}

// CommPolicyRow is one operating point.
type CommPolicyRow struct {
	MessageKB  float64
	GPUsPerNIC int
	Compute    float64 // overlappable compute seconds
	Best       comms.Choice
	ExposedUS  float64
}

// Name implements Result.
func (CommPolicy) Name() string { return "commpolicy" }

// Title implements Result.
func (c CommPolicy) Title() string {
	return "Communication-policy winners across message size and NIC sharing (" + c.Machine + ")"
}

// Render implements Result.
func (c CommPolicy) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# msg_KB  gpus_per_nic  compute_ms  winner                 exposed_us\n")
	for _, r := range c.Rows {
		fmt.Fprintf(&b, "%7.0f  %12d  %10.2f  %-22s %9.1f\n",
			r.MessageKB, r.GPUsPerNIC, r.Compute*1e3, r.Best.String(), r.ExposedUS)
	}
	fmt.Fprintf(&b, "# distinct winners prove no single policy dominates -> autotune it (paper V)\n")
	return b.String()
}

func genCommPolicy(bool) (Result, error) {
	// Titan offers all three policies (it has GPUDirect).
	m := comms.Model{M: machine.Titan()}
	out := CommPolicy{Machine: "Titan"}
	for _, msgKB := range []float64{4, 64, 1024, 16384} {
		for _, share := range []int{1, 4} {
			for _, compute := range []float64{0, 5e-3} {
				ex := comms.Exchange{
					InterBytes:     msgKB * 1024,
					IntraBytes:     0,
					Dims:           4,
					GPUsPerNIC:     share,
					Nodes:          16,
					ComputeSeconds: compute,
				}
				best, t := m.BestFixed(ex)
				out.Rows = append(out.Rows, CommPolicyRow{
					MessageKB:  msgKB,
					GPUsPerNIC: share,
					Compute:    compute,
					Best:       best,
					ExposedUS:  t * 1e6,
				})
			}
		}
	}
	// The table is only interesting if the winner actually changes.
	winners := map[string]bool{}
	for _, r := range out.Rows {
		winners[r.Best.String()] = true
	}
	if len(winners) < 2 {
		return nil, fmt.Errorf("figures: commpolicy degenerate (single winner %v)", winners)
	}
	return out, nil
}
