package figures

import (
	"fmt"
	"math/rand"
	"strings"

	"femtoverse/internal/ensemble"
	"femtoverse/internal/physics"
)

func init() {
	register("budget", genBudget)
}

// Budget reproduces the paper's Section III claim: "we have critically
// identified how increased calculation time can systematically and
// simultaneously improve the three dominant sources of uncertainty in
// the calculation of gA" - the statistical error, the excited-state
// systematic, and the chiral-continuum extrapolation error. Each row
// scales the sample count and reports all three components.
type BudgetExp struct {
	Rows []BudgetRow
}

// BudgetRow is one compute-budget operating point.
type BudgetRow struct {
	Samples  int
	StatErr  float64 // within-window statistical error
	ModelErr float64 // excited-state / fit-window systematic
	ExtrErr  float64 // chiral-continuum extrapolation error
	TotalErr float64
}

// Name implements Result.
func (BudgetExp) Name() string { return "budget" }

// Title implements Result.
func (BudgetExp) Title() string {
	return "Error budget vs compute: statistics, excited states, extrapolation"
}

// Render implements Result.
func (b BudgetExp) Render() string {
	var s strings.Builder
	fmt.Fprintf(&s, "# samples   stat_err   excited_sys   extrap_err   total\n")
	for _, r := range b.Rows {
		fmt.Fprintf(&s, "%9d  %9.4f  %11.4f  %11.4f  %8.4f\n",
			r.Samples, r.StatErr, r.ModelErr, r.ExtrErr, r.TotalErr)
	}
	fmt.Fprintf(&s, "# statistical and extrapolation errors fall like 1/sqrt(N); the window-\n")
	fmt.Fprintf(&s, "# spread systematic is noisier but shrinks once statistics resolve the\n")
	fmt.Fprintf(&s, "# windows - Section III's claim about how added compute is spent\n")
	return s.String()
}

func genBudget(quick bool) (Result, error) {
	counts := []int{200, 800, 3200}
	if quick {
		counts = []int{150, 600}
	}
	var out BudgetExp
	rng := rand.New(rand.NewSource(41))
	for _, n := range counts {
		// Statistical + excited-state systematic from the window-averaged
		// FH analysis at this sample count.
		p := ensemble.A09M310(n, 51)
		c2, cfh, err := ensemble.GenerateFH(p)
		if err != nil {
			return nil, err
		}
		fixed, err := physics.ExtractFH(c2, cfh, 1, 10)
		if err != nil {
			return nil, err
		}
		_, avg, err := physics.ExtractFHWindowAverage(c2, cfh, []int{1, 2, 3}, 10)
		if err != nil {
			return nil, err
		}
		// Extrapolation error when every ensemble in the grid carries an
		// error of this size (per-ensemble errors shrink with statistics
		// in the same campaign).
		pts := physics.CalLatEnsembleGrid()
		perEns := fixed.Err * 1.5 // coarser ensembles are cheaper; net similar
		truthC0 := 1.271 + 0.9*physics.EpsPi2Physical
		for i := range pts {
			pts[i].Err = perEns
			pts[i].GA = truthC0 - 0.9*pts[i].EpsPi2 + 0.2*pts[i].A2 + perEns*rng.NormFloat64()
		}
		ext, err := physics.ExtrapolateGA(pts, physics.EpsPi2Physical)
		if err != nil {
			return nil, err
		}
		row := BudgetRow{
			Samples:  n,
			StatErr:  fixed.Err,
			ModelErr: avg.ModelErr,
			ExtrErr:  ext.Err,
		}
		row.TotalErr = row.StatErr + row.ModelErr + row.ExtrErr // conservative linear sum
		out.Rows = append(out.Rows, row)
	}
	// The claim: every component falls as samples grow.
	for i := 1; i < len(out.Rows); i++ {
		if out.Rows[i].StatErr >= out.Rows[i-1].StatErr ||
			out.Rows[i].ExtrErr >= out.Rows[i-1].ExtrErr {
			return nil, fmt.Errorf("figures: error budget did not improve with statistics: %+v", out.Rows)
		}
	}
	return out, nil
}
