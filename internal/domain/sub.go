// Subdomain kernel: the per-rank half of the four-step halo pipeline,
// factored out of the in-process Dist so a rank can live anywhere - a
// goroutine sharing the address space (Dist) or a worker process on the
// far end of a TCP connection (internal/wire). The split is exact: Dist
// is now a thin orchestration shell over []*Sub, and the wire workers
// run the same Sub methods, which is what makes the distributed operator
// bit-for-bit identical to the shared-memory one by construction.
package domain

import (
	"fmt"

	"femtoverse/internal/gauge"
	"femtoverse/internal/lattice"
	"femtoverse/internal/linalg"
)

// SubSpec is the serializable description of one rank's subdomain: the
// decomposition geometry plus the rank's slice of the gauge field and the
// one-time gauge-link halo. It is everything a worker process needs to
// reconstruct its Sub, and what the coordinator checkpoints so a lost
// rank can be restored onto a respawned process.
type SubSpec struct {
	Rank   int
	Coords [lattice.NDim]int
	Grid   [lattice.NDim]int
	Global [lattice.NDim]int
	Local  [lattice.NDim]int
	Mass   float64
	// U is the rank's local gauge links, [mu][localSite].
	U [lattice.NDim][]linalg.SU3
	// GhostLink[mu] holds U_mu on the lower neighbor's upper face (the
	// link entering our lower-boundary sites from behind), indexed by
	// lower-face position. Empty when mu is not partitioned.
	GhostLink [lattice.NDim][]linalg.SU3
}

// RankOf folds grid coordinates (periodically wrapped) into a rank id.
func RankOf(grid, coords [lattice.NDim]int) int {
	id := 0
	stride := 1
	for mu := 0; mu < lattice.NDim; mu++ {
		id += ((coords[mu] + grid[mu]) % grid[mu]) * stride
		stride *= grid[mu]
	}
	return id
}

// CoordsOf inverts RankOf.
func CoordsOf(grid [lattice.NDim]int, rank int) [lattice.NDim]int {
	var c [lattice.NDim]int
	for mu := 0; mu < lattice.NDim; mu++ {
		c[mu] = rank % grid[mu]
		rank /= grid[mu]
	}
	return c
}

// NeighborRank returns the rank one step along mu (dir 0 = lower, 1 =
// upper), with periodic wrap.
func (sp *SubSpec) NeighborRank(mu, dir int) int {
	c := sp.Coords
	if dir == 0 {
		c[mu]--
	} else {
		c[mu]++
	}
	return RankOf(sp.Grid, c)
}

// Partitioned reports whether direction mu is split across ranks.
func (sp *SubSpec) Partitioned(mu int) bool { return sp.Grid[mu] > 1 }

// FaceSites returns the number of sites on one face of dimension mu.
func (sp *SubSpec) FaceSites(mu int) int {
	n := 1
	for nu := 0; nu < lattice.NDim; nu++ {
		if nu != mu {
			n *= sp.Local[nu]
		}
	}
	return n
}

// LocalVol returns the subdomain's site count.
func (sp *SubSpec) LocalVol() int {
	n := 1
	for mu := 0; mu < lattice.NDim; mu++ {
		n *= sp.Local[mu]
	}
	return n
}

// BuildSpecs decomposes the gauge field over the grid into one spec per
// rank - the coordinator-side half of NewDist, exported so the wire
// layer can ship subdomains to worker processes and checkpoint them.
func BuildSpecs(u *gauge.Field, grid [lattice.NDim]int, mass float64) ([]SubSpec, error) {
	dec, err := lattice.Decompose(u.G.Dims, grid, 1)
	if err != nil {
		return nil, err
	}
	nRanks := dec.Ranks()
	specs := make([]SubSpec, nRanks)
	for r := 0; r < nRanks; r++ {
		sp := &specs[r]
		sp.Rank = r
		sp.Coords = CoordsOf(grid, r)
		sp.Grid = grid
		sp.Global = u.G.Dims
		sp.Local = dec.Local
		sp.Mass = mass
		lg, err := lattice.New(dec.Local)
		if err != nil {
			return nil, err
		}
		for mu := 0; mu < lattice.NDim; mu++ {
			sp.U[mu] = make([]linalg.SU3, lg.Vol)
			for s := 0; s < lg.Vol; s++ {
				lc := lg.Coords(s)
				var gc [lattice.NDim]int
				for nu := 0; nu < lattice.NDim; nu++ {
					gc[nu] = sp.Coords[nu]*dec.Local[nu] + lc[nu]
				}
				sp.U[mu][s] = u.U[mu][u.G.Index(gc)]
			}
		}
	}
	// One-time gauge-link halo: our lower-boundary backward hop needs
	// U_mu(x - mu), which lives on the lower neighbor's upper face.
	for r := range specs {
		sp := &specs[r]
		lg, err := lattice.New(dec.Local)
		if err != nil {
			return nil, err
		}
		for mu := 0; mu < lattice.NDim; mu++ {
			if !dec.Partitioned(mu) {
				continue
			}
			nb := &specs[sp.NeighborRank(mu, 0)]
			sp.GhostLink[mu] = make([]linalg.SU3, 0, sp.FaceSites(mu))
			for s := 0; s < lg.Vol; s++ {
				lc := lg.Coords(s)
				if lc[mu] != 0 {
					continue
				}
				lc[mu] = dec.Local[mu] - 1
				sp.GhostLink[mu] = append(sp.GhostLink[mu], nb.U[mu][lg.Index(lc)])
			}
		}
	}
	return specs, nil
}

// Sub is one rank's live subdomain state: geometry bookkeeping, gauge
// links, ghost buffers, and field scratch. Methods are not safe for
// concurrent use on one Sub; the orchestrator (Dist or a wire worker)
// serializes applications.
type Sub struct {
	Spec  SubSpec
	local *lattice.Geometry
	// Global lexicographic index of each local site (for scatter/gather).
	globalOf []int

	// Ghost faces: ghostSpin[mu][dir] holds the neighbor face needed for
	// hops in direction mu (dir 0 = from the lower neighbor, 1 = upper).
	ghostSpin [lattice.NDim][2][]complex128

	// faceSites[mu][dir] lists local sites on the dir-face of dim mu.
	faceSites [lattice.NDim][2][]int
	// faceIndex[mu][dir] maps a local site to its position within the
	// face (or -1).
	faceIndex [lattice.NDim][2][]int

	interior []int // sites with no ghost dependence
	boundary []int // sites touching at least one partitioned face

	src, dst []complex128 // local field storage
}

// NewSub reconstructs the live subdomain from its spec.
func NewSub(spec SubSpec) (*Sub, error) {
	lg, err := lattice.New(spec.Local)
	if err != nil {
		return nil, err
	}
	gg, err := lattice.New(spec.Global)
	if err != nil {
		return nil, err
	}
	for mu := 0; mu < lattice.NDim; mu++ {
		if len(spec.U[mu]) != lg.Vol {
			return nil, fmt.Errorf("domain: spec rank %d has %d U[%d] links, want %d",
				spec.Rank, len(spec.U[mu]), mu, lg.Vol)
		}
		if spec.Partitioned(mu) && len(spec.GhostLink[mu]) != spec.FaceSites(mu) {
			return nil, fmt.Errorf("domain: spec rank %d has %d ghost links in %d, want %d",
				spec.Rank, len(spec.GhostLink[mu]), mu, spec.FaceSites(mu))
		}
	}
	sub := &Sub{Spec: spec, local: lg}
	sub.globalOf = make([]int, lg.Vol)
	for s := 0; s < lg.Vol; s++ {
		lc := lg.Coords(s)
		var gc [lattice.NDim]int
		for mu := 0; mu < lattice.NDim; mu++ {
			gc[mu] = spec.Coords[mu]*spec.Local[mu] + lc[mu]
		}
		sub.globalOf[s] = gg.Index(gc)
	}
	touched := make([]bool, lg.Vol)
	for mu := 0; mu < lattice.NDim; mu++ {
		if !spec.Partitioned(mu) {
			continue
		}
		for dir := 0; dir < 2; dir++ {
			sub.faceIndex[mu][dir] = make([]int, lg.Vol)
			for i := range sub.faceIndex[mu][dir] {
				sub.faceIndex[mu][dir][i] = -1
			}
		}
		for s := 0; s < lg.Vol; s++ {
			lc := lg.Coords(s)
			if lc[mu] == 0 {
				sub.faceIndex[mu][0][s] = len(sub.faceSites[mu][0])
				sub.faceSites[mu][0] = append(sub.faceSites[mu][0], s)
				touched[s] = true
			}
			if lc[mu] == spec.Local[mu]-1 {
				sub.faceIndex[mu][1][s] = len(sub.faceSites[mu][1])
				sub.faceSites[mu][1] = append(sub.faceSites[mu][1], s)
				touched[s] = true
			}
		}
		n := len(sub.faceSites[mu][0])
		sub.ghostSpin[mu][0] = make([]complex128, n*spinorLen)
		sub.ghostSpin[mu][1] = make([]complex128, n*spinorLen)
	}
	for s := 0; s < lg.Vol; s++ {
		if touched[s] {
			sub.boundary = append(sub.boundary, s)
		} else {
			sub.interior = append(sub.interior, s)
		}
	}
	sub.src = make([]complex128, lg.Vol*spinorLen)
	sub.dst = make([]complex128, lg.Vol*spinorLen)
	return sub, nil
}

// LocalLen returns the length of the local field vectors.
func (sub *Sub) LocalLen() int { return sub.local.Vol * spinorLen }

// FaceLen returns the complex length of one spinor face in dimension mu.
func (sub *Sub) FaceLen(mu int) int { return len(sub.faceSites[mu][0]) * spinorLen }

// SetSrc installs the local source field (length LocalLen).
func (sub *Sub) SetSrc(src []complex128) {
	copy(sub.src, src)
}

// Src returns the local source storage (for in-place scatter).
func (sub *Sub) Src() []complex128 { return sub.src }

// Dst returns the local result field after the stencil completes.
func (sub *Sub) Dst() []complex128 { return sub.dst }

// ScatterFrom fills the local source from a global field.
func (sub *Sub) ScatterFrom(global []complex128) {
	for s := 0; s < sub.local.Vol; s++ {
		copy(sub.src[s*spinorLen:(s+1)*spinorLen],
			global[sub.globalOf[s]*spinorLen:(sub.globalOf[s]+1)*spinorLen])
	}
}

// GatherTo writes the local result into a global field.
func (sub *Sub) GatherTo(global []complex128) {
	for s := 0; s < sub.local.Vol; s++ {
		copy(global[sub.globalOf[s]*spinorLen:(sub.globalOf[s]+1)*spinorLen],
			sub.dst[s*spinorLen:(s+1)*spinorLen])
	}
}

// PackFace copies the dir-face of dimension mu from the local source into
// buf (length FaceLen(mu)) - step 1 of the pipeline.
func (sub *Sub) PackFace(mu, dir int, buf []complex128) {
	for i, s := range sub.faceSites[mu][dir] {
		copy(buf[i*spinorLen:(i+1)*spinorLen], sub.src[s*spinorLen:(s+1)*spinorLen])
	}
}

// SetGhost installs a received neighbor face (dir 0 = from the lower
// neighbor, 1 = upper).
func (sub *Sub) SetGhost(mu, dir int, data []complex128) {
	copy(sub.ghostSpin[mu][dir], data)
}

// StencilInterior applies the operator on every site with no ghost
// dependence - step 3, overlappable with communication.
func (sub *Sub) StencilInterior() {
	for _, s := range sub.interior {
		sub.siteStencil(s)
	}
}

// StencilBoundary completes the halo sites once every ghost face has been
// installed - step 4.
func (sub *Sub) StencilBoundary() {
	for _, s := range sub.boundary {
		sub.siteStencil(s)
	}
}

// neighborSpinor returns psi at the neighbor of local site s in direction
// (mu, fwd), reading the ghost face when the hop crosses the rank edge.
func (sub *Sub) neighborSpinor(s, mu int, fwd bool) []complex128 {
	lc := sub.local.Coords(s)
	if sub.Spec.Partitioned(mu) {
		if fwd && lc[mu] == sub.local.Dims[mu]-1 {
			i := sub.faceIndex[mu][1][s]
			return sub.ghostSpin[mu][1][i*spinorLen : (i+1)*spinorLen]
		}
		if !fwd && lc[mu] == 0 {
			i := sub.faceIndex[mu][0][s]
			return sub.ghostSpin[mu][0][i*spinorLen : (i+1)*spinorLen]
		}
	}
	var nb int
	if fwd {
		nb = sub.local.Fwd(s, mu)
	} else {
		nb = sub.local.Bwd(s, mu)
	}
	return sub.src[nb*spinorLen : (nb+1)*spinorLen]
}

// siteStencil applies the Wilson stencil at one local site.
func (sub *Sub) siteStencil(s int) {
	out := sub.dst[s*spinorLen : (s+1)*spinorLen]
	in := sub.src[s*spinorLen : (s+1)*spinorLen]
	diag := complex(4+sub.Spec.Mass, 0)
	for i := 0; i < spinorLen; i++ {
		out[i] = diag * in[i]
	}
	lc := sub.local.Coords(s)
	for mu := 0; mu < lattice.NDim; mu++ {
		// Forward hop: (1-gamma) U_mu(x) psi(x+mu).
		hopAccumLocal(out, sub.neighborSpinor(s, mu, true), &sub.Spec.U[mu][s], mu, -1, false)
		// Backward hop: (1+gamma) U_mu(x-mu)^dag psi(x-mu).
		var link *linalg.SU3
		if sub.Spec.Partitioned(mu) && lc[mu] == 0 {
			link = &sub.Spec.GhostLink[mu][sub.faceIndex[mu][0][s]]
		} else {
			link = &sub.Spec.U[mu][sub.local.Bwd(s, mu)]
		}
		hopAccumLocal(out, sub.neighborSpinor(s, mu, false), link, mu, +1, true)
	}
}

// hopAccumLocal mirrors the shared-memory kernel's hopping term.
func hopAccumLocal(out, in []complex128, u *linalg.SU3, mu, projSign int, adjoint bool) {
	p0 := linalg.GammaPerm[mu][0]
	p1 := linalg.GammaPerm[mu][1]
	ph0 := linalg.GammaPhase[mu][0]
	ph1 := linalg.GammaPhase[mu][1]
	sgn := complex(float64(projSign), 0)
	var h0, h1 [3]complex128
	for c := 0; c < 3; c++ {
		h0[c] = in[0*3+c] + sgn*ph0*in[p0*3+c]
		h1[c] = in[1*3+c] + sgn*ph1*in[p1*3+c]
	}
	var uh0, uh1 [3]complex128
	if adjoint {
		uh0 = u.AdjMulVec(&h0)
		uh1 = u.AdjMulVec(&h1)
	} else {
		uh0 = u.MulVec(&h0)
		uh1 = u.MulVec(&h1)
	}
	r0 := sgn * complex(real(ph0), -imag(ph0))
	r1 := sgn * complex(real(ph1), -imag(ph1))
	for c := 0; c < 3; c++ {
		out[0*3+c] -= 0.5 * uh0[c]
		out[1*3+c] -= 0.5 * uh1[c]
		out[p0*3+c] -= 0.5 * r0 * uh0[c]
		out[p1*3+c] -= 0.5 * r1 * uh1[c]
	}
}
