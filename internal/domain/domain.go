// Package domain executes the Wilson stencil the way the paper's Section
// IV describes it: the lattice is decomposed over ranks, each owning a
// local sub-volume, and every operator application follows the four-step
// prescription verbatim -
//
//  1. pack the halo into contiguous buffers,
//  2. communicate halos to neighbors,
//  3. compute the interior stencil application,
//  4. once halos have arrived, complete the halo stencil computation -
//
// with step 3 genuinely overlapping step 2 (ranks are goroutines, the
// messages travel over buffered channels, and the interior loop runs
// while the faces are in flight). The distributed result is verified
// bit-compatible with the shared-memory operator, and the distributed
// operator satisfies solver.Linear, so the production CGNE runs on top
// unchanged.
package domain

import (
	"fmt"
	"sync"

	"femtoverse/internal/gauge"
	"femtoverse/internal/lattice"
	"femtoverse/internal/linalg"
)

const spinorLen = 12

// message is one halo face in flight: the spinor values of a boundary
// face, ordered by the receiver's face indexing.
type message struct {
	data []complex128
}

// rank is one simulated process.
type rank struct {
	coords [lattice.NDim]int
	local  *lattice.Geometry
	// Global lexicographic index of each local site (for scatter/gather).
	globalOf []int

	u [lattice.NDim][]linalg.SU3

	// Ghost faces: ghostSpin[mu][dir] holds the neighbor face needed for
	// hops in direction mu (dir 0 = from the lower neighbor, 1 = upper).
	ghostSpin [lattice.NDim][2][]complex128
	// ghostLink[mu] holds U_mu on the lower neighbor's upper face (the
	// link entering our lower-boundary sites from behind).
	ghostLink [lattice.NDim][]linalg.SU3

	// faceSites[mu][dir] lists local sites on the dir-face of dim mu.
	faceSites [lattice.NDim][2][]int
	// faceIndex[mu][dir] maps a local site to its position within the
	// face (or -1).
	faceIndex [lattice.NDim][2][]int

	// send[mu][dir] delivers to the neighbor in that direction; recv is
	// the matching inbound channel.
	send [lattice.NDim][2]chan message
	recv [lattice.NDim][2]chan message

	interior []int // sites with no ghost dependence
	boundary []int // sites touching at least one partitioned face

	src, dst []complex128 // local field storage
}

// Dist is a distributed Wilson operator over a process grid.
type Dist struct {
	G     *lattice.Geometry
	Grid  [lattice.NDim]int
	Mass  float64
	ranks []*rank
	dec   *lattice.Decomposition
	// sem (capacity 1) makes Apply non-reentrant: the rank scratch
	// buffers are shared. A semaphore rather than a mutex because the
	// critical section spans a WaitGroup.Wait for the per-rank workers,
	// and parking while holding a sync.Mutex is against the lockhold
	// contract.
	sem chan struct{}
}

// NewDist decomposes the gauge field over the grid. Every partitioned
// direction must split evenly with even local extents.
func NewDist(u *gauge.Field, grid [lattice.NDim]int, mass float64) (*Dist, error) {
	dec, err := lattice.Decompose(u.G.Dims, grid, 1)
	if err != nil {
		return nil, err
	}
	d := &Dist{G: u.G, Grid: grid, Mass: mass, dec: dec, sem: make(chan struct{}, 1)}
	nRanks := dec.Ranks()

	// Build ranks.
	coords := func(r int) [lattice.NDim]int {
		var c [lattice.NDim]int
		for mu := 0; mu < lattice.NDim; mu++ {
			c[mu] = r % grid[mu]
			r /= grid[mu]
		}
		return c
	}
	rankID := func(c [lattice.NDim]int) int {
		id := 0
		stride := 1
		for mu := 0; mu < lattice.NDim; mu++ {
			id += ((c[mu] + grid[mu]) % grid[mu]) * stride
			stride *= grid[mu]
		}
		return id
	}

	for r := 0; r < nRanks; r++ {
		rc := coords(r)
		lg, err := lattice.New(dec.Local)
		if err != nil {
			return nil, err
		}
		rk := &rank{coords: rc, local: lg}
		rk.globalOf = make([]int, lg.Vol)
		for s := 0; s < lg.Vol; s++ {
			lc := lg.Coords(s)
			var gc [lattice.NDim]int
			for mu := 0; mu < lattice.NDim; mu++ {
				gc[mu] = rc[mu]*dec.Local[mu] + lc[mu]
			}
			rk.globalOf[s] = u.G.Index(gc)
		}
		for mu := 0; mu < lattice.NDim; mu++ {
			rk.u[mu] = make([]linalg.SU3, lg.Vol)
			for s := 0; s < lg.Vol; s++ {
				rk.u[mu][s] = u.U[mu][rk.globalOf[s]]
			}
		}
		// Face bookkeeping.
		touched := make([]bool, lg.Vol)
		for mu := 0; mu < lattice.NDim; mu++ {
			if !dec.Partitioned(mu) {
				continue
			}
			for dir := 0; dir < 2; dir++ {
				rk.faceIndex[mu][dir] = make([]int, lg.Vol)
				for i := range rk.faceIndex[mu][dir] {
					rk.faceIndex[mu][dir][i] = -1
				}
			}
			for s := 0; s < lg.Vol; s++ {
				lc := lg.Coords(s)
				if lc[mu] == 0 {
					rk.faceIndex[mu][0][s] = len(rk.faceSites[mu][0])
					rk.faceSites[mu][0] = append(rk.faceSites[mu][0], s)
					touched[s] = true
				}
				if lc[mu] == dec.Local[mu]-1 {
					rk.faceIndex[mu][1][s] = len(rk.faceSites[mu][1])
					rk.faceSites[mu][1] = append(rk.faceSites[mu][1], s)
					touched[s] = true
				}
			}
			n := len(rk.faceSites[mu][0])
			rk.ghostSpin[mu][0] = make([]complex128, n*spinorLen)
			rk.ghostSpin[mu][1] = make([]complex128, n*spinorLen)
			rk.ghostLink[mu] = make([]linalg.SU3, n)
		}
		for s := 0; s < lg.Vol; s++ {
			if touched[s] {
				rk.boundary = append(rk.boundary, s)
			} else {
				rk.interior = append(rk.interior, s)
			}
		}
		rk.src = make([]complex128, lg.Vol*spinorLen)
		rk.dst = make([]complex128, lg.Vol*spinorLen)
		d.ranks = append(d.ranks, rk)
	}

	// Wire channels: rank r's send[mu][1] goes to upper neighbor's
	// recv[mu][0] (a message traveling up arrives from below).
	for r, rk := range d.ranks {
		_ = r
		for mu := 0; mu < lattice.NDim; mu++ {
			if !dec.Partitioned(mu) {
				continue
			}
			for dir := 0; dir < 2; dir++ {
				rk.send[mu][dir] = make(chan message, 1)
			}
		}
	}
	for _, rk := range d.ranks {
		for mu := 0; mu < lattice.NDim; mu++ {
			if !dec.Partitioned(mu) {
				continue
			}
			up := rk.coords
			up[mu]++
			down := rk.coords
			down[mu]--
			// What the upper neighbor sent downward arrives as our
			// upper ghost, and vice versa.
			rk.recv[mu][1] = d.ranks[rankID(up)].send[mu][0]
			rk.recv[mu][0] = d.ranks[rankID(down)].send[mu][1]
		}
	}

	// One-time gauge-link halo: our lower-boundary backward hop needs
	// U_mu(x - mu), which lives on the lower neighbor's upper face.
	for _, rk := range d.ranks {
		for mu := 0; mu < lattice.NDim; mu++ {
			if !dec.Partitioned(mu) {
				continue
			}
			down := rk.coords
			down[mu]--
			nb := d.ranks[rankID(down)]
			for i, s := range rk.faceSites[mu][0] {
				// The matching site on the neighbor's upper face shares
				// all coordinates except mu.
				lc := rk.local.Coords(s)
				lc[mu] = dec.Local[mu] - 1
				rk.ghostLink[mu][i] = nb.u[mu][nb.local.Index(lc)]
			}
		}
	}
	return d, nil
}

// Size implements solver.Linear.
func (d *Dist) Size() int { return d.G.Vol * spinorLen }

// Ranks returns the process count.
func (d *Dist) Ranks() int { return len(d.ranks) }

// Apply computes dst = D src with the four-step halo pipeline on every
// rank concurrently.
func (d *Dist) Apply(dst, src []complex128) {
	if len(dst) != d.Size() || len(src) != d.Size() {
		panic("domain: Apply size mismatch")
	}
	d.sem <- struct{}{}
	defer func() { <-d.sem }()

	// Scatter the global field.
	for _, rk := range d.ranks {
		for s := 0; s < rk.local.Vol; s++ {
			copy(rk.src[s*spinorLen:(s+1)*spinorLen],
				src[rk.globalOf[s]*spinorLen:(rk.globalOf[s]+1)*spinorLen])
		}
	}

	var wg sync.WaitGroup
	wg.Add(len(d.ranks))
	for _, rk := range d.ranks {
		go func(rk *rank) {
			defer wg.Done()
			d.applyRank(rk)
		}(rk)
	}
	wg.Wait()

	// Gather.
	for _, rk := range d.ranks {
		for s := 0; s < rk.local.Vol; s++ {
			copy(dst[rk.globalOf[s]*spinorLen:(rk.globalOf[s]+1)*spinorLen],
				rk.dst[s*spinorLen:(s+1)*spinorLen])
		}
	}
}

// ApplyDagger implements solver.Linear via gamma_5 hermiticity.
func (d *Dist) ApplyDagger(dst, src []complex128) {
	tmp := make([]complex128, len(src))
	gamma5(tmp, src)
	d.Apply(dst, tmp)
	gamma5(dst, dst)
}

func gamma5(dst, src []complex128) {
	n := len(src) / spinorLen
	for s := 0; s < n; s++ {
		base := s * spinorLen
		for i := 0; i < 6; i++ {
			dst[base+i] = src[base+i]
		}
		for i := 6; i < 12; i++ {
			dst[base+i] = -src[base+i]
		}
	}
}

// applyRank runs the paper's four steps on one rank.
func (d *Dist) applyRank(rk *rank) {
	// Step 1: pack the halo faces.
	// Step 2: post the sends (buffered channels: non-blocking here).
	for mu := 0; mu < lattice.NDim; mu++ {
		if !d.dec.Partitioned(mu) {
			continue
		}
		for dir := 0; dir < 2; dir++ {
			face := rk.faceSites[mu][dir]
			buf := make([]complex128, len(face)*spinorLen)
			for i, s := range face {
				copy(buf[i*spinorLen:(i+1)*spinorLen], rk.src[s*spinorLen:(s+1)*spinorLen])
			}
			rk.send[mu][dir] <- message{data: buf}
		}
	}

	// Step 3: interior stencil, overlapping the communication.
	for _, s := range rk.interior {
		d.siteStencil(rk, s)
	}

	// Step 4: receive halos, then complete the boundary sites.
	for mu := 0; mu < lattice.NDim; mu++ {
		if !d.dec.Partitioned(mu) {
			continue
		}
		for dir := 0; dir < 2; dir++ {
			m := <-rk.recv[mu][dir]
			copy(rk.ghostSpin[mu][dir], m.data)
		}
	}
	for _, s := range rk.boundary {
		d.siteStencil(rk, s)
	}
}

// neighborSpinor returns psi at the neighbor of local site s in direction
// (mu, fwd), reading the ghost face when the hop crosses the rank edge.
func (rk *rank) neighborSpinor(d *Dist, s, mu int, fwd bool) []complex128 {
	lc := rk.local.Coords(s)
	if d.dec.Partitioned(mu) {
		if fwd && lc[mu] == rk.local.Dims[mu]-1 {
			i := rk.faceIndex[mu][1][s]
			return rk.ghostSpin[mu][1][i*spinorLen : (i+1)*spinorLen]
		}
		if !fwd && lc[mu] == 0 {
			i := rk.faceIndex[mu][0][s]
			return rk.ghostSpin[mu][0][i*spinorLen : (i+1)*spinorLen]
		}
	}
	var nb int
	if fwd {
		nb = rk.local.Fwd(s, mu)
	} else {
		nb = rk.local.Bwd(s, mu)
	}
	return rk.src[nb*spinorLen : (nb+1)*spinorLen]
}

// siteStencil applies the Wilson stencil at one local site.
func (d *Dist) siteStencil(rk *rank, s int) {
	out := rk.dst[s*spinorLen : (s+1)*spinorLen]
	in := rk.src[s*spinorLen : (s+1)*spinorLen]
	diag := complex(4+d.Mass, 0)
	for i := 0; i < spinorLen; i++ {
		out[i] = diag * in[i]
	}
	lc := rk.local.Coords(s)
	for mu := 0; mu < lattice.NDim; mu++ {
		// Forward hop: (1-gamma) U_mu(x) psi(x+mu).
		hopAccumLocal(out, rk.neighborSpinor(d, s, mu, true), &rk.u[mu][s], mu, -1, false)
		// Backward hop: (1+gamma) U_mu(x-mu)^dag psi(x-mu).
		var link *linalg.SU3
		if d.dec.Partitioned(mu) && lc[mu] == 0 {
			link = &rk.ghostLink[mu][rk.faceIndex[mu][0][s]]
		} else {
			link = &rk.u[mu][rk.local.Bwd(s, mu)]
		}
		hopAccumLocal(out, rk.neighborSpinor(d, s, mu, false), link, mu, +1, true)
	}
}

// hopAccumLocal mirrors the shared-memory kernel's hopping term.
func hopAccumLocal(out, in []complex128, u *linalg.SU3, mu, projSign int, adjoint bool) {
	p0 := linalg.GammaPerm[mu][0]
	p1 := linalg.GammaPerm[mu][1]
	ph0 := linalg.GammaPhase[mu][0]
	ph1 := linalg.GammaPhase[mu][1]
	sgn := complex(float64(projSign), 0)
	var h0, h1 [3]complex128
	for c := 0; c < 3; c++ {
		h0[c] = in[0*3+c] + sgn*ph0*in[p0*3+c]
		h1[c] = in[1*3+c] + sgn*ph1*in[p1*3+c]
	}
	var uh0, uh1 [3]complex128
	if adjoint {
		uh0 = u.AdjMulVec(&h0)
		uh1 = u.AdjMulVec(&h1)
	} else {
		uh0 = u.MulVec(&h0)
		uh1 = u.MulVec(&h1)
	}
	r0 := sgn * complex(real(ph0), -imag(ph0))
	r1 := sgn * complex(real(ph1), -imag(ph1))
	for c := 0; c < 3; c++ {
		out[0*3+c] -= 0.5 * uh0[c]
		out[1*3+c] -= 0.5 * uh1[c]
		out[p0*3+c] -= 0.5 * r0 * uh0[c]
		out[p1*3+c] -= 0.5 * r1 * uh1[c]
	}
}

// HaloBytesPerApply returns the spinor bytes each rank exchanges per
// application, the quantity the communication model prices.
func (d *Dist) HaloBytesPerApply() int {
	total := 0
	for mu := 0; mu < lattice.NDim; mu++ {
		if !d.dec.Partitioned(mu) {
			continue
		}
		total += 2 * d.dec.SurfaceSites4D(mu) * spinorLen * 16
	}
	return total
}

// InteriorFraction reports the fraction of sites computable before any
// halo arrives - the overlap budget of step 3.
func (d *Dist) InteriorFraction() float64 {
	if len(d.ranks) == 0 {
		return 0
	}
	rk := d.ranks[0]
	return float64(len(rk.interior)) / float64(rk.local.Vol)
}

// String describes the decomposition.
func (d *Dist) String() string {
	return fmt.Sprintf("domain: %v over %v (%d ranks, %.0f%% interior)",
		d.G.Dims, d.Grid, d.Ranks(), 100*d.InteriorFraction())
}
