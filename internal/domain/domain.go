// Package domain executes the Wilson stencil the way the paper's Section
// IV describes it: the lattice is decomposed over ranks, each owning a
// local sub-volume, and every operator application follows the four-step
// prescription verbatim -
//
//  1. pack the halo into contiguous buffers,
//  2. communicate halos to neighbors,
//  3. compute the interior stencil application,
//  4. once halos have arrived, complete the halo stencil computation -
//
// with step 3 genuinely overlapping step 2 (ranks are goroutines, the
// messages travel over buffered channels, and the interior loop runs
// while the faces are in flight). The distributed result is verified
// bit-compatible with the shared-memory operator, and the distributed
// operator satisfies solver.Linear, so the production CGNE runs on top
// unchanged. The per-rank kernel lives in Sub (sub.go), which is shared
// with the real multi-process runtime in internal/wire.
package domain

import (
	"context"
	"fmt"

	"femtoverse/internal/gauge"
	"femtoverse/internal/lattice"
)

const spinorLen = 12

// message is one halo face in flight: the spinor values of a boundary
// face, ordered by the receiver's face indexing.
type message struct {
	data []complex128
}

// rank is one simulated process: a subdomain kernel plus its channel
// endpoints.
type rank struct {
	sub *Sub
	// send[mu][dir] delivers to the neighbor in that direction; recv is
	// the matching inbound channel.
	send [lattice.NDim][2]chan message
	recv [lattice.NDim][2]chan message
}

// Dist is a distributed Wilson operator over a process grid.
type Dist struct {
	G     *lattice.Geometry
	Grid  [lattice.NDim]int
	Mass  float64
	ranks []*rank
	dec   *lattice.Decomposition
	// sem (capacity 1) makes Apply non-reentrant: the rank scratch
	// buffers are shared. A semaphore rather than a mutex because the
	// critical section spans a wait for the per-rank workers, and
	// parking while holding a sync.Mutex is against the lockhold
	// contract.
	sem chan struct{}
}

// NewDist decomposes the gauge field over the grid. Every partitioned
// direction must split evenly with even local extents.
func NewDist(u *gauge.Field, grid [lattice.NDim]int, mass float64) (*Dist, error) {
	dec, err := lattice.Decompose(u.G.Dims, grid, 1)
	if err != nil {
		return nil, err
	}
	specs, err := BuildSpecs(u, grid, mass)
	if err != nil {
		return nil, err
	}
	d := &Dist{G: u.G, Grid: grid, Mass: mass, dec: dec, sem: make(chan struct{}, 1)}
	for r := range specs {
		sub, err := NewSub(specs[r])
		if err != nil {
			return nil, err
		}
		rk := &rank{sub: sub}
		for mu := 0; mu < lattice.NDim; mu++ {
			if !dec.Partitioned(mu) {
				continue
			}
			for dir := 0; dir < 2; dir++ {
				rk.send[mu][dir] = make(chan message, 1)
			}
		}
		d.ranks = append(d.ranks, rk)
	}

	// Wire channels: what the upper neighbor sent downward arrives as our
	// upper ghost, and vice versa.
	for _, rk := range d.ranks {
		for mu := 0; mu < lattice.NDim; mu++ {
			if !dec.Partitioned(mu) {
				continue
			}
			rk.recv[mu][1] = d.ranks[rk.sub.Spec.NeighborRank(mu, 1)].send[mu][0]
			rk.recv[mu][0] = d.ranks[rk.sub.Spec.NeighborRank(mu, 0)].send[mu][1]
		}
	}
	return d, nil
}

// Size implements solver.Linear.
func (d *Dist) Size() int { return d.G.Vol * spinorLen }

// Ranks returns the process count.
func (d *Dist) Ranks() int { return len(d.ranks) }

// Specs returns a copy of the per-rank subdomain specs (for checkpointing
// and for shipping subdomains to worker processes).
func (d *Dist) Specs() []SubSpec {
	out := make([]SubSpec, len(d.ranks))
	for i, rk := range d.ranks {
		out[i] = rk.sub.Spec
	}
	return out
}

// Apply computes dst = D src with the four-step halo pipeline on every
// rank concurrently.
func (d *Dist) Apply(dst, src []complex128) {
	if err := d.ApplyCtx(context.Background(), dst, src); err != nil {
		// Unreachable: the background context cannot be canceled, and
		// ApplyCtx has no other failure mode.
		panic(err)
	}
}

// ApplyCtx is Apply with cooperative cancellation: a halo wait aborts
// promptly when ctx is canceled (drain, deadline, lost neighbor) instead
// of blocking until the operator completes. On cancellation the contents
// of dst are unspecified and ctx.Err() is returned.
func (d *Dist) ApplyCtx(ctx context.Context, dst, src []complex128) error {
	if len(dst) != d.Size() || len(src) != d.Size() {
		panic("domain: Apply size mismatch")
	}
	select {
	case d.sem <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	defer func() { <-d.sem }()

	// Scatter the global field.
	for _, rk := range d.ranks {
		rk.sub.ScatterFrom(src)
	}

	errs := make(chan error, len(d.ranks))
	for _, rk := range d.ranks {
		go func(rk *rank) {
			errs <- d.applyRank(ctx, rk)
		}(rk)
	}
	var firstErr error
	for range d.ranks {
		if err := <-errs; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		// Drain any halo messages a canceled rank left in flight so the
		// buffered channels are clean for the next application.
		for _, rk := range d.ranks {
			for mu := range rk.send {
				for dir := range rk.send[mu] {
					if rk.send[mu][dir] == nil {
						continue
					}
					select {
					case <-rk.send[mu][dir]:
					default:
					}
				}
			}
		}
		return firstErr
	}

	// Gather.
	for _, rk := range d.ranks {
		rk.sub.GatherTo(dst)
	}
	return nil
}

// ApplyDagger implements solver.Linear via gamma_5 hermiticity.
func (d *Dist) ApplyDagger(dst, src []complex128) {
	tmp := make([]complex128, len(src))
	Gamma5(tmp, src)
	d.Apply(dst, tmp)
	Gamma5(dst, dst)
}

// Gamma5 applies the chirality operator sitewise (dst may alias src);
// with it any Apply-only operator gains ApplyDagger by gamma_5
// hermiticity, which is how both Dist and the wire Session satisfy
// solver.Linear.
func Gamma5(dst, src []complex128) {
	n := len(src) / spinorLen
	for s := 0; s < n; s++ {
		base := s * spinorLen
		for i := 0; i < 6; i++ {
			dst[base+i] = src[base+i]
		}
		for i := 6; i < 12; i++ {
			dst[base+i] = -src[base+i]
		}
	}
}

// applyRank runs the paper's four steps on one rank, consulting ctx at
// every halo wait so cancellation interrupts the exchange.
func (d *Dist) applyRank(ctx context.Context, rk *rank) error {
	// Step 1: pack the halo faces.
	// Step 2: post the sends (buffered channels: non-blocking here).
	for mu := range rk.send {
		if !d.dec.Partitioned(mu) {
			continue
		}
		for dir := range rk.send[mu] {
			buf := make([]complex128, rk.sub.FaceLen(mu))
			rk.sub.PackFace(mu, dir, buf)
			select {
			case rk.send[mu][dir] <- message{data: buf}:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}

	// Step 3: interior stencil, overlapping the communication.
	rk.sub.StencilInterior()

	// Step 4: receive halos, then complete the boundary sites.
	for mu := range rk.recv {
		if !d.dec.Partitioned(mu) {
			continue
		}
		for dir := range rk.recv[mu] {
			select {
			case m := <-rk.recv[mu][dir]:
				rk.sub.SetGhost(mu, dir, m.data)
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
	rk.sub.StencilBoundary()
	return nil
}

// HaloBytesPerApply returns the spinor bytes each rank exchanges per
// application, the quantity the communication model prices.
func (d *Dist) HaloBytesPerApply() int {
	total := 0
	for _, b := range d.HaloMessageBytes(true) {
		total += b
	}
	return total
}

// HaloMessageBytes returns the payload bytes of each halo message one
// rank sends per operator application. Under fine-grained exchange every
// (dimension, direction) face travels as its own message; under coarse
// exchange all faces bound for the same neighbor rank are batched into
// one. The per-message breakdown is what lets the communication model
// price wire framing honestly (internal/comms) and is crosschecked
// against bytes measured on live sockets by internal/wire.
func (d *Dist) HaloMessageBytes(fine bool) []int {
	if len(d.ranks) == 0 {
		return nil
	}
	sub := d.ranks[0].sub
	if fine {
		var out []int
		for mu := 0; mu < lattice.NDim; mu++ {
			if !d.dec.Partitioned(mu) {
				continue
			}
			face := sub.FaceLen(mu) * 16
			out = append(out, face, face)
		}
		return out
	}
	// Coarse: batch by destination rank, in (mu, dir) order - the same
	// grouping the wire layer uses.
	perPeer := map[int]int{}
	var order []int
	for mu := 0; mu < lattice.NDim; mu++ {
		if !d.dec.Partitioned(mu) {
			continue
		}
		for dir := 0; dir < 2; dir++ {
			peer := sub.Spec.NeighborRank(mu, dir)
			if _, seen := perPeer[peer]; !seen {
				order = append(order, peer)
			}
			perPeer[peer] += sub.FaceLen(mu) * 16
		}
	}
	out := make([]int, 0, len(order))
	for _, peer := range order {
		out = append(out, perPeer[peer])
	}
	return out
}

// HaloMessageSections returns, message-for-message with HaloMessageBytes,
// how many face sections each message batches: always 1 under fine
// exchange, the destination rank's face count under coarse. Together the
// two let a model price framed wire traffic exactly (payload plus
// per-frame and per-section headers).
func (d *Dist) HaloMessageSections(fine bool) []int {
	if len(d.ranks) == 0 {
		return nil
	}
	sub := d.ranks[0].sub
	if fine {
		var out []int
		for mu := 0; mu < lattice.NDim; mu++ {
			if !d.dec.Partitioned(mu) {
				continue
			}
			out = append(out, 1, 1)
		}
		return out
	}
	perPeer := map[int]int{}
	var order []int
	for mu := 0; mu < lattice.NDim; mu++ {
		if !d.dec.Partitioned(mu) {
			continue
		}
		for dir := 0; dir < 2; dir++ {
			peer := sub.Spec.NeighborRank(mu, dir)
			if _, seen := perPeer[peer]; !seen {
				order = append(order, peer)
			}
			perPeer[peer]++
		}
	}
	out := make([]int, 0, len(order))
	for _, peer := range order {
		out = append(out, perPeer[peer])
	}
	return out
}

// InteriorFraction reports the fraction of sites computable before any
// halo arrives - the overlap budget of step 3.
func (d *Dist) InteriorFraction() float64 {
	if len(d.ranks) == 0 {
		return 0
	}
	sub := d.ranks[0].sub
	return float64(len(sub.interior)) / float64(sub.local.Vol)
}

// String describes the decomposition.
func (d *Dist) String() string {
	return fmt.Sprintf("domain: %v over %v (%d ranks, %.0f%% interior)",
		d.G.Dims, d.Grid, d.Ranks(), 100*d.InteriorFraction())
}
