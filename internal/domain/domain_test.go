package domain

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"femtoverse/internal/dirac"
	"femtoverse/internal/gauge"
	"femtoverse/internal/lattice"
	"femtoverse/internal/linalg"
	"femtoverse/internal/solver"
)

func randField(rng *rand.Rand, n int) []complex128 {
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return v
}

func dist2(a, b []complex128) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += real(d)*real(d) + imag(d)*imag(d)
	}
	return math.Sqrt(s)
}

// TestDistributedMatchesSharedMemory is the headline check: the four-step
// halo pipeline reproduces the shared-memory operator exactly, for every
// partitioning pattern.
func TestDistributedMatchesSharedMemory(t *testing.T) {
	g := lattice.MustNew(4, 4, 4, 8)
	cfg := gauge.NewRandom(g, 201)
	w := dirac.NewWilson(cfg, 0.1)
	rng := rand.New(rand.NewSource(1))
	src := randField(rng, w.Size())
	want := make([]complex128, w.Size())
	w.Apply(want, src)

	grids := [][4]int{
		{2, 1, 1, 1},
		{1, 1, 1, 2},
		{2, 2, 1, 1},
		{1, 2, 2, 2},
		{2, 2, 2, 2},
		{1, 1, 1, 4},
	}
	for _, grid := range grids {
		d, err := NewDist(cfg, grid, 0.1)
		if err != nil {
			t.Fatalf("grid %v: %v", grid, err)
		}
		got := make([]complex128, w.Size())
		d.Apply(got, src)
		if dd := dist2(want, got); dd > 1e-11 {
			t.Fatalf("grid %v differs from shared memory by %g", grid, dd)
		}
	}
}

func TestDistributedDaggerAdjoint(t *testing.T) {
	g := lattice.MustNew(4, 2, 2, 4)
	cfg := gauge.NewRandom(g, 203)
	d, err := NewDist(cfg, [4]int{2, 1, 1, 2}, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	x := randField(rng, d.Size())
	y := randField(rng, d.Size())
	dy := make([]complex128, d.Size())
	d.Apply(dy, y)
	ddx := make([]complex128, d.Size())
	d.ApplyDagger(ddx, x)
	lhs := linalg.Dot(x, dy, 0)
	rhs := linalg.Dot(ddx, y, 0)
	if del := lhs - rhs; real(del)*real(del)+imag(del)*imag(del) > 1e-18*(1+real(lhs)*real(lhs)) {
		t.Fatalf("adjoint mismatch: %v vs %v", lhs, rhs)
	}
}

// TestSolverRunsOnDistributedOperator: the production CGNE drives the
// distributed operator through the solver.Linear interface unchanged.
func TestSolverRunsOnDistributedOperator(t *testing.T) {
	g := lattice.MustNew(4, 2, 2, 4)
	cfg := gauge.NewWeak(g, 205, 0.3)
	d, err := NewDist(cfg, [4]int{2, 1, 1, 2}, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	b := randField(rng, d.Size())
	x, st, err := solver.CGNE(context.Background(), d, b, solver.Params{Tol: 1e-9})
	if err != nil || !st.Converged {
		t.Fatalf("distributed solve: %v %+v", err, st)
	}
	// Cross-check the solution against the shared-memory operator.
	w := dirac.NewWilson(cfg, 0.3)
	check := make([]complex128, d.Size())
	w.Apply(check, x)
	num, den := 0.0, 0.0
	for i := range b {
		e := check[i] - b[i]
		num += real(e)*real(e) + imag(e)*imag(e)
		den += real(b[i])*real(b[i]) + imag(b[i])*imag(b[i])
	}
	if res := math.Sqrt(num / den); res > 1e-8 {
		t.Fatalf("distributed solution fails shared-memory residual: %g", res)
	}
}

func TestDecompositionBookkeeping(t *testing.T) {
	g := lattice.MustNew(8, 8, 4, 8)
	cfg := gauge.NewUnit(g)
	d, err := NewDist(cfg, [4]int{2, 2, 1, 2}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Ranks() != 8 {
		t.Fatalf("ranks %d", d.Ranks())
	}
	// Local 4x4x4x4: interior (away from 3 partitioned dims' faces) is
	// 2x2x4x2 = 32 of 256 sites.
	if f := d.InteriorFraction(); math.Abs(f-32.0/256.0) > 1e-12 {
		t.Fatalf("interior fraction %v", f)
	}
	// Halo bytes: 2 faces per partitioned dim.
	want := 2 * (4 * 4 * 4 * 3) * 12 * 16
	if hb := d.HaloBytesPerApply(); hb != want {
		t.Fatalf("halo bytes %d, want %d", hb, want)
	}
	if d.String() == "" {
		t.Fatal("empty description")
	}
}

func TestRejectsBadGrid(t *testing.T) {
	g := lattice.MustNew(4, 4, 4, 4)
	cfg := gauge.NewUnit(g)
	if _, err := NewDist(cfg, [4]int{3, 1, 1, 1}, 0.1); err == nil {
		t.Fatal("non-dividing grid accepted")
	}
	if _, err := NewDist(cfg, [4]int{4, 1, 1, 1}, 0.1); err == nil {
		t.Fatal("1-site local extent accepted")
	}
}

func TestRepeatedAppliesAreConsistent(t *testing.T) {
	// The channel plumbing must be re-usable: many applications in a row
	// (as a solver performs) stay consistent.
	g := lattice.MustNew(4, 4, 2, 4)
	cfg := gauge.NewRandom(g, 207)
	d, err := NewDist(cfg, [4]int{2, 2, 1, 1}, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	w := dirac.NewWilson(cfg, 0.15)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 5; trial++ {
		src := randField(rng, d.Size())
		want := make([]complex128, d.Size())
		w.Apply(want, src)
		got := make([]complex128, d.Size())
		d.Apply(got, src)
		if dd := dist2(want, got); dd > 1e-11 {
			t.Fatalf("trial %d differs by %g", trial, dd)
		}
	}
}

// TestApplyCtxCancellation checks the cooperative-cancellation contract:
// a canceled context aborts the halo pipeline with ctx.Err, and the
// operator remains usable for clean applications afterwards (no halo
// message left stranded in the channels).
func TestApplyCtxCancellation(t *testing.T) {
	g := lattice.MustNew(4, 4, 4, 4)
	cfg := gauge.NewRandom(g, 31)
	d, err := NewDist(cfg, [4]int{1, 1, 1, 2}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	src := randField(rng, d.Size())
	dst := make([]complex128, d.Size())

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := d.ApplyCtx(ctx, dst, src); err != context.Canceled {
		t.Fatalf("canceled ApplyCtx returned %v, want context.Canceled", err)
	}

	// The operator must recover fully: a clean application afterwards
	// matches the reference exactly.
	w := dirac.NewWilson(cfg, 0.1)
	want := make([]complex128, d.Size())
	w.Apply(want, src)
	if err := d.ApplyCtx(context.Background(), dst, src); err != nil {
		t.Fatalf("post-cancel apply: %v", err)
	}
	if dd := dist2(want, dst); dd > 1e-11 {
		t.Fatalf("post-cancel apply differs by %g", dd)
	}
}

// TestHaloMessageModel pins the per-message accounting the communication
// model and the wire crosscheck consume: fine messages are one face
// each; coarse batches per destination; totals agree with
// HaloBytesPerApply.
func TestHaloMessageModel(t *testing.T) {
	g := lattice.MustNew(4, 4, 4, 8)
	cfg := gauge.NewUnit(g)

	// Two ranks on the time axis: both faces go to the same peer, so
	// coarse must fold them into a single two-section message.
	d2, err := NewDist(cfg, [4]int{1, 1, 1, 2}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	fineB, fineS := d2.HaloMessageBytes(true), d2.HaloMessageSections(true)
	if len(fineB) != 2 || len(fineS) != 2 || fineS[0] != 1 || fineS[1] != 1 {
		t.Fatalf("fine shape: bytes %v sections %v", fineB, fineS)
	}
	coarseB, coarseS := d2.HaloMessageBytes(false), d2.HaloMessageSections(false)
	if len(coarseB) != 1 || len(coarseS) != 1 || coarseS[0] != 2 {
		t.Fatalf("coarse shape: bytes %v sections %v", coarseB, coarseS)
	}
	if coarseB[0] != fineB[0]+fineB[1] {
		t.Fatalf("coarse payload %d != folded fine payloads %d", coarseB[0], fineB[0]+fineB[1])
	}
	total := 0
	for _, b := range fineB {
		total += b
	}
	if got := d2.HaloBytesPerApply(); got != total {
		t.Fatalf("HaloBytesPerApply %d != summed messages %d", got, total)
	}

	// Four ranks: two distinct neighbors, coarse cannot batch across
	// destinations.
	d4, err := NewDist(cfg, [4]int{1, 1, 1, 4}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if s := d4.HaloMessageSections(false); len(s) != 2 || s[0] != 1 || s[1] != 1 {
		t.Fatalf("4-rank coarse sections %v, want [1 1]", s)
	}
}
