package tmpspan

import "time"

// time.Now stored into an any-typed map value: absolute timestamp
// reaches encoded output, should be tainted.
func Payload() map[string]any {
	return map[string]any{"ts": time.Now()}
}
