package tmpspan

import obs "fixture/internal/obs"

// Every path ends the span inside the switch; no diagnostic expected.
func SwitchEnd(sc obs.Scope, x int) int {
	sp := sc.Begin("work")
	switch x {
	case 1:
		sp.End()
		return 1
	default:
		sp.End()
		return 2
	}
}
