// Fixture for lockhold's file-I/O scoping: the same package is loaded
// once as "fixture/internal/autotune" (where a file write under a mutex
// is the convoy bug) and once as "fixture/journalish" (where the
// single-writer-under-mutex design is legitimate and the analyzer must
// stay silent — RunExpectNone disregards the want below).
package fixture

import (
	"os"
	"sync"
)

type store struct {
	mu   sync.Mutex
	path string
}

func (s *store) persist(data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return os.WriteFile(s.path, data, 0o644) // want "file I/O .os.WriteFile. while holding s.mu"
}
