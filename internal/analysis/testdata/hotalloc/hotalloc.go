// Fixture for the hotalloc analyzer. The loader presents this package
// under an import path ending in internal/dirac, so the hot-package gate
// is open; the same file loaded under a cold path must produce nothing.
package fixture

// deepMake allocates at every level; only the depth-2 allocation is in
// the innermost levels of the nest.
func deepMake(n int) [][]float64 {
	out := make([][]float64, 0, n*n)
	for i := 0; i < n; i++ {
		row := make([]float64, n)
		for j := 0; j < n; j++ {
			buf := make([]float64, 4) // want "make inside a depth-2 hot loop"
			buf[0] = float64(i + j)
			row[j] = buf[0]
		}
		out = append(out, row)
	}
	return out
}

func deepAppend(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			out = append(out, i*j) // want "append inside a depth-2 hot loop"
		}
	}
	return out
}

func deepLiteral(n int) int {
	t := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			pair := []int{i, j} // want "composite literal inside a depth-2 hot loop"
			t += pair[0]
		}
	}
	return t
}

// closureAlloc: function literals do not reset the depth — a closure
// running inside the nest allocates on the nest's cadence.
func closureAlloc(n int, apply func([]float64)) {
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			func() {
				scratch := make([]float64, 2) // want "make inside a depth-2 hot loop"
				scratch[0] = float64(i * j)
				apply(scratch)
			}()
		}
	}
}

// hoisted is the blessed shape: one buffer allocated outside the nest and
// reused every iteration.
func hoisted(n int) float64 {
	buf := make([]float64, 4)
	s := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			buf[0] = float64(i + j)
			s += buf[0]
		}
	}
	return s
}

// suppressedMake documents a cold path inside a hot nest.
func suppressedMake(n int) float64 {
	s := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			//femtolint:ignore hotalloc fixture: cold diagnostic path, runs at most once
			tmp := make([]float64, 1)
			tmp[0] = float64(i + j)
			s += tmp[0]
		}
	}
	return s
}
