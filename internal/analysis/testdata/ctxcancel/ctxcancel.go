// Fixture for the ctxcancel analyzer: for loops inside context-taking
// functions must consult the context.
package fixture

import "context"

// unchecked is the canonical violation: the iteration cap is the only way
// out of the loop, so cancellation cannot interrupt a running solve.
func unchecked(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ { // want "never consults its context"
		total += i
	}
	return total
}

// checked consults ctx.Err once per iteration.
func checked(ctx context.Context, n int) error {
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// selectDone consults the context through its Done channel.
func selectDone(ctx context.Context, n int) error {
	for i := 0; i < n; i++ {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
	}
	return nil
}

// delegated passes the context to a callee inside the loop, which is the
// other sanctioned way to keep an iteration interruptible.
func delegated(ctx context.Context, n int) error {
	for i := 0; i < n; i++ {
		if err := step(ctx, i); err != nil {
			return err
		}
	}
	return nil
}

func step(ctx context.Context, i int) error { return ctx.Err() }

// innerCovered: the outer loop checks the context, so the bounded inner
// loop is cancelled at outer-iteration granularity — the contract — and a
// per-inner-iteration branch would sit in the flop path.
func innerCovered(ctx context.Context, n int) error {
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		for j := 0; j < 8; j++ {
			_ = i * j
		}
	}
	return nil
}

// kernelClosure: a nested function literal without its own ctx parameter
// is a separate (kernel) function; the enclosing range loop owns the
// cancellation check.
func kernelClosure(ctx context.Context, xs []float64) float64 {
	sum := 0.0
	reduce := func(v []float64) float64 {
		s := 0.0
		for i := 0; i < len(v); i++ {
			s += v[i]
		}
		return s
	}
	for _, x := range xs {
		if ctx.Err() != nil {
			break
		}
		sum += reduce([]float64{x})
	}
	return sum
}

// A function literal that takes its own context is held to the contract.
var _ = func(ctx context.Context) {
	for { // want "for loop in function literal never consults its context"
		break
	}
}

// rangeOnly: range loops are bounded by the data they traverse and are
// never flagged.
func rangeOnly(ctx context.Context, xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// noContext takes no context, so no contract applies.
func noContext(n int) int {
	t := 0
	for i := 0; i < n; i++ {
		t += i
	}
	return t
}

// suppressedLoop documents why its loop is exempt; the directive on the
// line above silences the diagnostic.
func suppressedLoop(ctx context.Context, n int) int {
	t := 0
	//femtolint:ignore ctxcancel fixture: bounded warm-up loop, caller owns cancellation
	for i := 0; i < n; i++ {
		t += i
	}
	return t
}
