// Fixture for dettaint's journal-record-root rule, loaded as
// "fixture/internal/core": Journal methods and Record/Payload-named
// functions are roots; other functions in the package are not.
package fixture

import (
	"os"
	"time"
)

// Journal is record construction; its methods are roots.
type Journal struct{ seq int }

func (j *Journal) Append(kind string) int64 {
	j.seq++
	return time.Now().UnixNano() // want "reads wall-clock time"
}

// Root by name (mentions Payload).
func specPayload() string {
	return os.Getenv("FEMTO_SPEC") // want "reads the process environment"
}

// Root by name (mentions Record).
func buildRecord(kind string) string {
	return kind + specPayload() // want "calls specPayload, which transitively reads the process environment"
}

// Not record construction: tainted, but silent in this package.
func orchestrate() int64 {
	return time.Now().UnixNano()
}
