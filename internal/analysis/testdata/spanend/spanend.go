// Fixture for the spanend analyzer: every obs span opened with
// Scope.Begin must be ended on all paths. Loaded as "fixture/tracer" with
// the miniature fixture/internal/obs as a dependency.
package fixture

import (
	"errors"
	"os"

	"fixture/internal/obs"
)

var errFail = errors.New("fail")

func work() {}

// Discarded results can never be ended.

func discarded(sc obs.Scope) {
	sc.Begin("solve") // want "result of Begin is discarded"
	work()
}

func blanked(sc obs.Scope) {
	_ = sc.Begin("solve") // want "result of Begin is discarded"
	work()
}

// The dominant in-tree idiom: defer End (directly or in a closure).

func deferred(sc obs.Scope) {
	span := sc.Begin("solve")
	defer span.End()
	work()
}

func deferredClosure(sc obs.Scope) {
	span := sc.Begin("solve")
	defer func() { span.EndWith(nil) }()
	work()
}

// Explicit End on every path is also fine.

func allPathsEnd(sc obs.Scope, fail bool) error {
	span := sc.Begin("solve")
	if fail {
		span.End()
		return errFail
	}
	span.End()
	return nil
}

// An early return the End does not dominate loses the lane.
func missesEarlyReturn(sc obs.Scope, fail bool) error {
	span := sc.Begin("solve") // want "not ended on the path returning at line"
	if fail {
		return errFail
	}
	span.End()
	return nil
}

// Falling off the block with the span conditionally ended loses it too.
func fallsOff(sc obs.Scope, verbose bool) {
	span := sc.Begin("solve") // want "may leave its scope without End"
	if verbose {
		span.End()
	}
}

// Process terminators are not exits: the whole trace dies with the
// process, so the os.Exit path needs no End.
func exitPath(sc obs.Scope, fatal bool) {
	span := sc.Begin("solve")
	if fatal {
		os.Exit(1)
	}
	span.End()
}

// The solver's beginBlock/endBlock pair: the span lives in a captured
// outer variable whose lifetime the closures manage; skipped by design.
func capturedPair(sc obs.Scope) (begin, end func()) {
	var span obs.Span
	begin = func() { span = sc.Begin("block") }
	end = func() { span.End() }
	return begin, end
}

// A span opened and ended per loop iteration is clean.
func perIteration(sc obs.Scope, n int) {
	for i := 0; i < n; i++ {
		span := sc.Begin("iter")
		work()
		span.End()
	}
}
