// Fixture for the detrange analyzer: map iteration order must not feed
// ordered output, floating-point accumulation, or emission.
package fixture

import (
	"fmt"
	"sort"
)

// appendSink builds an ordered slice straight out of map-range order.
func appendSink(m map[int]float64) []int {
	var keys []int
	for k := range m { // want "append to a slice declared outside"
		keys = append(keys, k)
	}
	return keys
}

// sortedKeys is the blessed idiom: collect, sort, then iterate. The sort
// after the range erases the insertion order, so the append is exempt.
func sortedKeys(m map[int]float64) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// floatAccum sums floats in map order; rounding makes the result differ
// run to run in the last bits.
func floatAccum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want "floating-point accumulation"
		total += v
	}
	return total
}

// intAccum is exact in any order and therefore clean.
func intAccum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// emit prints in map order.
func emit(m map[string]int) {
	for k, v := range m { // want "output or task emission"
		fmt.Println(k, v)
	}
}

// send delivers values on a channel in map order.
func send(m map[int]int, ch chan<- int) {
	for k := range m { // want "channel send"
		ch <- k
	}
}

// blankRange binds neither key nor value, so the body cannot depend on
// which element the iteration is visiting.
func blankRange(m map[int]int, ch chan<- int) {
	for range m {
		ch <- 0
	}
}

// localAppend collects into a slice declared inside the loop body; its
// lifetime is one iteration, so order cannot leak out through it.
func localAppend(m map[int]int) int {
	n := 0
	for k, v := range m {
		pair := []int{}
		pair = append(pair, k, v)
		n += len(pair)
	}
	return n
}

// suppressedEmit documents why the emission is order-insensitive.
func suppressedEmit(m map[string]int) {
	//femtolint:ignore detrange fixture: debug dump, consumers do not parse the order
	for k := range m {
		fmt.Println(k)
	}
}
