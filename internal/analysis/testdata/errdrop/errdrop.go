// Fixture for the errdrop analyzer: no silent error discards outside
// tests.
package fixture

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"strings"
)

var errBoom = errors.New("boom")

func fail() error { return errBoom }

func failPair() (int, error) { return 0, errBoom }

func discardAssign() {
	_ = fail() // want "error discarded with _"
}

func discardPair() int {
	v, _ := failPair() // want "error discarded with _"
	return v
}

func uncheckedCall() {
	fail() // want "error that is never checked"
}

// handled is the expected shape; discarding the non-error half of a pair
// is fine.
func handled() error {
	if err := fail(); err != nil {
		return err
	}
	v, err := failPair()
	if err != nil {
		return err
	}
	_ = v
	return nil
}

// exemptSinks exercise the documented never-fails writers.
func exemptSinks(buf *bytes.Buffer, sb *strings.Builder) {
	fmt.Println("status")
	fmt.Fprintf(os.Stderr, "n=%d\n", 1)
	fmt.Fprintf(sb, "n=%d\n", 2)
	buf.WriteString("x")
	sb.WriteString("y")
}

// deferred: defer is a visible decision, not a silent drop, and is left
// alone.
func deferred(f interface{ Close() error }) {
	defer f.Close()
}

// suppressedDrain records why the discard is safe.
func suppressedDrain() {
	//femtolint:ignore errdrop fixture: best-effort cleanup, failure leaves nothing to do
	_ = fail()
}

// Recovery paths are where dropped errors hide best: the handler runs
// rarely, reviewers skim it, and a swallowed failure there silently
// converts a crash into corrupt state.

// recoverHandlerDrop: cleanup inside a recover handler still has to
// report its error.
func recoverHandlerDrop() (err error) {
	defer func() {
		if r := recover(); r != nil {
			_ = fail() // want "error discarded with _"
			err = fmt.Errorf("recovered: %v", r)
		}
	}()
	return nil
}

// recoverHandlerChecked is the expected shape: the handler's own
// failure joins the reported error.
func recoverHandlerChecked() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("recovered: %v", r)
			if cerr := fail(); cerr != nil {
				err = errors.Join(err, cerr)
			}
		}
	}()
	return nil
}

type appender interface {
	Append(cfg int) error
	Sync() error
}

// checkpointDrop: a write-ahead journal append whose error vanishes is
// a checkpoint that silently never happened - the campaign resumes from
// stale state and recomputes (or worse, loses) finished work.
func checkpointDrop(j appender) {
	j.Append(1) // want "error that is never checked"
}

// checkpointPairDrop: syncing through the blank identifier is the same
// silent loss one call later.
func checkpointPairDrop(j appender) {
	_ = j.Sync() // want "error discarded with _"
}

// checkpointChecked is the expected shape for a recovery-critical write.
func checkpointChecked(j appender) error {
	if err := j.Append(1); err != nil {
		return err
	}
	return j.Sync()
}
