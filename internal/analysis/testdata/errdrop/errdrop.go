// Fixture for the errdrop analyzer: no silent error discards outside
// tests.
package fixture

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"strings"
)

var errBoom = errors.New("boom")

func fail() error { return errBoom }

func failPair() (int, error) { return 0, errBoom }

func discardAssign() {
	_ = fail() // want "error discarded with _"
}

func discardPair() int {
	v, _ := failPair() // want "error discarded with _"
	return v
}

func uncheckedCall() {
	fail() // want "error that is never checked"
}

// handled is the expected shape; discarding the non-error half of a pair
// is fine.
func handled() error {
	if err := fail(); err != nil {
		return err
	}
	v, err := failPair()
	if err != nil {
		return err
	}
	_ = v
	return nil
}

// exemptSinks exercise the documented never-fails writers.
func exemptSinks(buf *bytes.Buffer, sb *strings.Builder) {
	fmt.Println("status")
	fmt.Fprintf(os.Stderr, "n=%d\n", 1)
	fmt.Fprintf(sb, "n=%d\n", 2)
	buf.WriteString("x")
	sb.WriteString("y")
}

// deferred: defer is a visible decision, not a silent drop, and is left
// alone.
func deferred(f interface{ Close() error }) {
	defer f.Close()
}

// suppressedDrain records why the discard is safe.
func suppressedDrain() {
	//femtolint:ignore errdrop fixture: best-effort cleanup, failure leaves nothing to do
	_ = fail()
}
