// Fixture for dettaint's cache-key-root rule, loaded under the non-root
// path "fixture/workflow": only the functions that participate in cache
// key construction are roots; everything else is tainted silently.
package fixture

import (
	"os"
	"time"

	"fixture/internal/cache"
)

// Not a root: tainted (and exported as a fact), but no diagnostic here.
func looseStamp() int64 {
	return time.Now().UnixNano()
}

// Root by body: it calls cache.NewKey and KeyBuilder methods.
func solveKey(dim int) cache.Key {
	b := cache.NewKey("solve").Int("dim", int64(dim))
	b = b.Int("at", looseStamp()) // want "calls looseStamp, which transitively reads wall-clock time"
	return b.Build()
}

// Root by signature: it takes a *cache.KeyBuilder.
func salt(b *cache.KeyBuilder) *cache.KeyBuilder {
	return b.Str("host", os.Getenv("HOSTNAME")) // want "reads the process environment"
}

// A deterministic key build stays clean.
func planKey(name string, steps int) cache.Key {
	return cache.NewKey("plan").Str("name", name).Int("steps", int64(steps)).Build()
}
