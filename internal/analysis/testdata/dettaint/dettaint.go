// Fixture for the dettaint analyzer, loaded as "fixture/internal/solver"
// so every function is a determinism-critical root. Covers direct
// nondeterministic reads, the measured-timing exemption, same-package
// transitive taint, cross-package taint imported from the fixture/clockdep
// facts, and map-iteration-order escape.
package fixture

import (
	"errors"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"fixture/clockdep"
)

// Direct sources.

func stampNanos() int64 {
	return time.Now().UnixNano() // want "reads wall-clock time"
}

func drawNoise() float64 {
	return rand.Float64() // want "reads the global math/rand source"
}

func shardByHost() string {
	return os.Getenv("FEMTO_SHARD") // want "reads the process environment"
}

func laneCount() int {
	return runtime.NumCPU() // want "reads the processor count"
}

func clockFn() func() time.Time {
	return time.Now // want "captures wall-clock time"
}

// Exempt: the measured-timing idiom keeps the wall-clock value inside
// time's own types, where it only ever measures elapsed work.

func measured(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

type iterStats struct {
	Submitted time.Time
}

func newIterStats() iterStats {
	return iterStats{Submitted: time.Now()}
}

// Same-package transitive taint: the helper is reported for its direct
// read, the caller for reaching it.

func localStamp() int64 {
	return time.Now().UnixNano() // want "reads wall-clock time"
}

func viaHelper() int64 {
	return localStamp() + 1 // want "calls localStamp, which transitively reads wall-clock time"
}

// Cross-package taint, imported as facts from fixture/clockdep.

func viaDep() int64 {
	return clockdep.Stamp() // want "calls clockdep.Stamp, which transitively reads wall-clock time"
}

func viaDepIndirect() int64 {
	return clockdep.Indirect() // want "calls clockdep.Indirect, which transitively reads wall-clock time"
}

// clockdep.Elapsed uses the measured-timing idiom, so no taint fact was
// exported for it and the call is clean.
func viaDepMeasured() time.Duration {
	return clockdep.Elapsed(func() {})
}

// Map iteration order.

func anyKey(m map[string]int) string {
	for k := range m { // want "depends on map iteration order"
		return k
	}
	return ""
}

func keyList(m map[string]int) []string {
	var keys []string
	for k := range m { // want "depends on map iteration order"
		keys = append(keys, k)
	}
	return keys
}

// Error propagation out of a range body does not leak the order.
func validate(m map[string]int) error {
	for _, v := range m {
		if v < 0 {
			return errors.New("negative weight")
		}
	}
	return nil
}

// Collect-then-sort erases the insertion order.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
