// Package obs is a miniature stand-in for femtoverse's internal/obs,
// loaded by analysistest under the import path "fixture/internal/obs" so
// the spanend analyzer — which recognizes Scope/Span by name and
// import-path suffix — treats it as the real thing.
package obs

// Span is one open trace lane.
type Span struct{ name string }

// End closes the span.
func (s Span) End() {}

// EndWith closes the span recording extra args.
func (s Span) EndWith(extra map[string]any) {}

// Scope opens spans.
type Scope struct{ cat string }

// Begin opens a span.
func (sc Scope) Begin(name string) Span { return Span{name: name} }
