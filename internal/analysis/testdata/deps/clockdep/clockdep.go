// Package clockdep is the dependency side of the cross-package dettaint
// fixture: its taint facts must flow into packages that import it.
package clockdep

import "time"

// Stamp returns an absolute wall-clock timestamp: tainted.
func Stamp() int64 { return time.Now().UnixNano() }

// Indirect is tainted only transitively, through Stamp.
func Indirect() int64 { return Stamp() + 1 }

// Elapsed measures fn with the blessed timing idiom (time.Now into a
// time.Time, time.Since for the delta): not tainted.
func Elapsed(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}
