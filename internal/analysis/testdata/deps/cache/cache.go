// Package cache is a miniature stand-in for femtoverse's internal/cache,
// loaded by analysistest under "fixture/internal/cache" so the dettaint
// KeyBuilder-root rule and the lockhold singleflight rule — both keyed on
// type names plus the internal/cache path suffix — apply to fixtures.
package cache

// Key is a content-addressed cache key.
type Key struct{ ID string }

// KeyBuilder accumulates key components.
type KeyBuilder struct{ parts []string }

// NewKey starts a builder.
func NewKey(ns string) *KeyBuilder { return &KeyBuilder{parts: []string{ns}} }

// Str adds a string component.
func (b *KeyBuilder) Str(name, v string) *KeyBuilder {
	b.parts = append(b.parts, name, v)
	return b
}

// Int adds an integer component.
func (b *KeyBuilder) Int(name string, v int64) *KeyBuilder {
	b.parts = append(b.parts, name)
	return b
}

// Build finalizes the key.
func (b *KeyBuilder) Build() Key { return Key{ID: b.parts[0]} }

// Flight is a miniature singleflight group.
type Flight struct{}

// Do runs fn once per key, parking duplicate callers.
func (f *Flight) Do(key string, fn func() (any, error)) (any, error) { return fn() }

// Cache is a miniature content-addressed cache.
type Cache struct{}

// GetOrCompute returns the cached value or computes it, parking
// duplicate computations behind one flight.
func (c *Cache) GetOrCompute(k Key, fn func() ([]byte, error)) ([]byte, error) { return fn() }
