// Fixture for the lockhold analyzer, loaded as "fixture/internal/runtime"
// — one of the packages where file I/O under a lock counts as blocking —
// with the miniature fixture/internal/cache as a dependency for the
// singleflight entry points.
package fixture

import (
	"os"
	"sync"
	"time"

	"fixture/internal/cache"
)

type pool struct {
	mu      sync.Mutex
	rw      sync.RWMutex
	cond    *sync.Cond
	work    chan int
	done    chan struct{}
	flight  cache.Flight
	store   cache.Cache
	pending int
}

func (p *pool) sendUnderLock(v int) {
	p.mu.Lock()
	p.work <- v // want "channel send while holding p.mu"
	p.mu.Unlock()
}

func (p *pool) recvUnderLock() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return <-p.work // want "channel receive while holding p.mu"
}

func (p *pool) drainUnderLock() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for range p.work { // want "range over a channel while holding p.mu"
	}
}

func (p *pool) selectUnderLock() {
	p.mu.Lock()
	defer p.mu.Unlock()
	select { // want "select with no default case while holding p.mu"
	case <-p.done:
	case v := <-p.work:
		p.pending = v
	}
}

func (p *pool) waitUnderLock(wg *sync.WaitGroup) {
	p.mu.Lock()
	wg.Wait() // want "sync.WaitGroup.Wait while holding p.mu"
	p.mu.Unlock()
}

func (p *pool) sleepUnderRLock() {
	p.rw.RLock()
	time.Sleep(time.Millisecond) // want "time.Sleep while holding p.rw"
	p.rw.RUnlock()
}

func (p *pool) readUnderLock(path string) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return os.ReadFile(path) // want "file I/O .os.ReadFile. while holding p.mu"
}

func (p *pool) flightUnderLock(key string) (any, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.flight.Do(key, func() (any, error) { return nil, nil }) // want "singleflight Flight.Do while holding p.mu"
}

func (p *pool) computeUnderLock(k cache.Key) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.store.GetOrCompute(k, func() ([]byte, error) { return nil, nil }) // want "Cache.GetOrCompute while holding p.mu"
}

// Clean: the lock is released before blocking.
func (p *pool) unlockThenRecv() int {
	p.mu.Lock()
	p.pending++
	p.mu.Unlock()
	return <-p.work
}

// Clean: sync.Cond.Wait atomically releases the mutex while parked — the
// sanctioned way to block under a lock.
func (p *pool) condWait() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.pending == 0 {
		p.cond.Wait()
	}
}

// Clean: a select with a default case cannot park.
func (p *pool) trySend(v int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	select {
	case p.work <- v:
		return true
	default:
		return false
	}
}

// Clean: the spawned goroutine does not hold the caller's lock.
func (p *pool) spawn() {
	p.mu.Lock()
	defer p.mu.Unlock()
	go func() {
		<-p.done
	}()
}

// Clean: a branch that unlocks before blocking does not leak the lock
// into its own tail, and the branch-local release does not leak out
// either.
func (p *pool) branchUnlock(fast bool) int {
	p.mu.Lock()
	if fast {
		p.mu.Unlock()
		return <-p.work
	}
	p.mu.Unlock()
	return 0
}
