// Fixture for the globalrand analyzer: no draws from the shared
// math/rand source; ensembles must come from explicit seeded generators.
package fixture

import "math/rand"

// bad draws from the process-global source, whose state is shared and
// auto-seeded — the ensemble is irreproducible.
func bad() float64 {
	return rand.Float64() // want "global math/rand source"
}

func badShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { // want "global math/rand source"
		xs[i], xs[j] = xs[j], xs[i]
	})
}

// good builds an explicit generator from a seed; constructor calls and
// methods on the resulting *rand.Rand are fine.
func good(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// suppressedDraw records why a global draw is tolerable here.
func suppressedDraw() int {
	//femtolint:ignore globalrand fixture: scheduling jitter only, never enters physics output
	return rand.Intn(10)
}
