package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockHold forbids blocking while holding a sync.Mutex or sync.RWMutex —
// the deadlock-and-convoy class PRs 5 and 6 debugged by hand in the
// runtime pool, the cache, and the autotuner. A goroutine that parks
// inside a critical section stalls every other goroutine contending for
// that lock, which at campaign scale turns one slow disk write into a
// fleet-wide utilization hole.
//
// Blocking operations: channel send/receive, range over a channel,
// select without a default case, sync.WaitGroup.Wait, time.Sleep, and
// the cache's singleflight entry points Flight.Do / Cache.GetOrCompute
// (both park the caller behind another goroutine's compute). In the
// packages whose locks were the actual trouble spots —
// internal/{runtime,cache,autotune} — file I/O (os file operations,
// *os.File methods, hio load/save) counts as blocking too. It does not
// elsewhere: core's journal serializes its file writes under a mutex on
// purpose (one writer, crash-consistent ordering), and that design is
// legitimate.
//
// sync.Cond.Wait is exempt: it atomically releases the mutex while
// parked, which is precisely the sanctioned way to block "under" a lock
// (the runtime pool's admission and drain paths rely on it).
//
// The analysis is per-function and syntactic: lock regions are tracked by
// the receiver expression text (`p.mu`, `c.flightMu`), a deferred unlock
// holds to function end, and branch bodies are analyzed with a copy of
// the held set. Function literal and go-statement bodies are skipped —
// they execute on their own goroutine or schedule.
var LockHold = &Analyzer{
	Name: "lockhold",
	Doc:  "no blocking operation (channel ops, select, singleflight, waits, file I/O in runtime/cache/autotune) while holding a sync.Mutex/RWMutex",
	Run:  runLockHold,
}

// lockIOPkgs are the import-path suffixes where file I/O under a lock is
// reported. See the package comment for why this is not universal.
var lockIOPkgs = []string{
	"internal/runtime",
	"internal/cache",
	"internal/autotune",
}

func runLockHold(pass *Pass) error {
	ioBlocks := false
	for _, s := range lockIOPkgs {
		if hasPkgSuffix(pass.Pkg.Path(), s) {
			ioBlocks = true
			break
		}
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				lh := &lockHoldChecker{pass: pass, ioBlocks: ioBlocks}
				lh.walkStmts(fd.Body.List, map[string]token.Pos{})
			}
		}
	}
	return nil
}

type lockHoldChecker struct {
	pass     *Pass
	ioBlocks bool
}

// mutexOp classifies call as a sync.Mutex/RWMutex lock or unlock and
// returns the receiver expression text as the region key.
func (lh *lockHoldChecker) mutexOp(call *ast.CallExpr) (key string, isLock, isUnlock bool) {
	fn := calleeFunc(lh.pass, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false, false
	}
	recv := sig.Recv().Type()
	if p, ok := types.Unalias(recv).(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := types.Unalias(recv).(*types.Named)
	if !ok {
		return "", false, false
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex":
	default:
		return "", false, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	key = types.ExprString(sel.X)
	switch fn.Name() {
	case "Lock", "RLock":
		return key, true, false
	case "Unlock", "RUnlock":
		return key, false, true
	}
	return "", false, false
}

// walkStmts analyzes a statement list sequentially, mutating held as
// locks are taken and released. Nested control-flow bodies get a copy,
// so a branch's unlock does not leak into the fall-through path.
func (lh *lockHoldChecker) walkStmts(stmts []ast.Stmt, held map[string]token.Pos) {
	for _, s := range stmts {
		lh.walkStmt(s, held)
	}
}

func cloneHeld(held map[string]token.Pos) map[string]token.Pos {
	c := make(map[string]token.Pos, len(held))
	for k, v := range held {
		c[k] = v
	}
	return c
}

func (lh *lockHoldChecker) walkStmt(s ast.Stmt, held map[string]token.Pos) {
	switch st := s.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok {
			if key, isLock, isUnlock := lh.mutexOp(call); isLock || isUnlock {
				if isLock {
					held[key] = call.Pos()
				} else {
					delete(held, key)
				}
				return
			}
		}
		lh.checkBlocking(st, held)
	case *ast.DeferStmt:
		// `defer mu.Unlock()` holds the lock to function end — the
		// idiomatic pattern — so the region simply stays open. A deferred
		// closure is not entered: it runs at exit.
	case *ast.GoStmt:
		// A new goroutine does not hold the caller's locks.
	case *ast.AssignStmt, *ast.IncDecStmt, *ast.ReturnStmt, *ast.SendStmt:
		lh.checkBlocking(s, held)
	case *ast.BlockStmt:
		lh.walkStmts(st.List, held)
	case *ast.IfStmt:
		if st.Init != nil {
			lh.walkStmt(st.Init, held)
		}
		lh.checkBlockingExpr(st.Cond, held, st.Cond.Pos())
		lh.walkStmts(st.Body.List, cloneHeld(held))
		if st.Else != nil {
			lh.walkStmt(st.Else, cloneHeld(held))
		}
	case *ast.ForStmt:
		if st.Init != nil {
			lh.walkStmt(st.Init, held)
		}
		if st.Cond != nil {
			lh.checkBlockingExpr(st.Cond, held, st.Cond.Pos())
		}
		lh.walkStmts(st.Body.List, cloneHeld(held))
	case *ast.RangeStmt:
		if t := lh.pass.TypesInfo.TypeOf(st.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan && len(held) > 0 {
				lh.reportBlocked(st.For, "range over a channel", held)
			}
		}
		lh.checkBlockingExpr(st.X, held, st.X.Pos())
		lh.walkStmts(st.Body.List, cloneHeld(held))
	case *ast.SwitchStmt:
		lh.walkCaseBodies(st.Body, held)
	case *ast.TypeSwitchStmt:
		lh.walkCaseBodies(st.Body, held)
	case *ast.SelectStmt:
		if len(held) > 0 && !selectHasDefault(st) {
			lh.reportBlocked(st.Select, "select with no default case", held)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				lh.walkStmts(cc.Body, cloneHeld(held))
			}
		}
	case *ast.LabeledStmt:
		lh.walkStmt(st.Stmt, held)
	}
}

func (lh *lockHoldChecker) walkCaseBodies(body *ast.BlockStmt, held map[string]token.Pos) {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			lh.walkStmts(cc.Body, cloneHeld(held))
		}
	}
}

func selectHasDefault(st *ast.SelectStmt) bool {
	for _, c := range st.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// checkBlocking scans one simple statement's expressions for blocking
// operations while held is non-empty.
func (lh *lockHoldChecker) checkBlocking(s ast.Stmt, held map[string]token.Pos) {
	if len(held) == 0 {
		return
	}
	if send, ok := s.(*ast.SendStmt); ok {
		lh.reportBlocked(send.Pos(), "channel send", held)
		return
	}
	ast.Inspect(s, func(n ast.Node) bool {
		switch nd := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if nd.Op == token.ARROW {
				lh.reportBlocked(nd.Pos(), "channel receive", held)
			}
		case *ast.CallExpr:
			if what := lh.blockingCall(nd); what != "" {
				lh.reportBlocked(nd.Pos(), what, held)
			}
		}
		return true
	})
}

func (lh *lockHoldChecker) checkBlockingExpr(e ast.Expr, held map[string]token.Pos, _ token.Pos) {
	if len(held) == 0 || e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch nd := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if nd.Op == token.ARROW {
				lh.reportBlocked(nd.Pos(), "channel receive", held)
			}
		case *ast.CallExpr:
			if what := lh.blockingCall(nd); what != "" {
				lh.reportBlocked(nd.Pos(), what, held)
			}
		}
		return true
	})
}

// blockingCall names the blocking operation call performs, or "".
func (lh *lockHoldChecker) blockingCall(call *ast.CallExpr) string {
	fn := calleeFunc(lh.pass, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	pkgPath := fn.Pkg().Path()
	name := fn.Name()
	sig, _ := fn.Type().(*types.Signature)

	recvNamed := func() *types.Named {
		if sig == nil || sig.Recv() == nil {
			return nil
		}
		t := sig.Recv().Type()
		if p, ok := types.Unalias(t).(*types.Pointer); ok {
			t = p.Elem()
		}
		named, _ := types.Unalias(t).(*types.Named)
		return named
	}

	switch pkgPath {
	case "sync":
		// WaitGroup.Wait parks; Cond.Wait releases the mutex while
		// parked and is the sanctioned blocking-under-lock primitive.
		if named := recvNamed(); named != nil && named.Obj().Name() == "WaitGroup" && name == "Wait" {
			return "sync.WaitGroup.Wait"
		}
		return ""
	case "time":
		if name == "Sleep" {
			return "time.Sleep"
		}
		return ""
	case "os":
		if !lh.ioBlocks {
			return ""
		}
		if named := recvNamed(); named != nil && named.Obj().Name() == "File" {
			return "file I/O (os.File." + name + ")"
		}
		switch name {
		case "Open", "OpenFile", "Create", "CreateTemp", "ReadFile", "WriteFile",
			"Remove", "RemoveAll", "Rename", "Mkdir", "MkdirAll", "ReadDir", "Stat", "Truncate":
			return "file I/O (os." + name + ")"
		}
		return ""
	}
	if hasPkgSuffix(pkgPath, "internal/cache") {
		if named := recvNamed(); named != nil {
			switch {
			case named.Obj().Name() == "Flight" && name == "Do":
				return "singleflight Flight.Do"
			case named.Obj().Name() == "Cache" && name == "GetOrCompute":
				return "Cache.GetOrCompute"
			}
		}
	}
	if lh.ioBlocks && hasPkgSuffix(pkgPath, "internal/hio") {
		switch name {
		case "Load", "Save", "Open", "Create":
			return "file I/O (hio." + name + ")"
		}
	}
	return ""
}

func (lh *lockHoldChecker) reportBlocked(pos token.Pos, what string, held map[string]token.Pos) {
	// Report against the lock taken first (deterministically: smallest
	// position), which is the outermost region.
	var bestKey string
	var bestPos token.Pos
	for k, p := range held {
		if bestKey == "" || p < bestPos {
			bestKey, bestPos = k, p
		}
	}
	lh.pass.Reportf(pos, "%s while holding %s (locked at line %d); release the lock before blocking",
		what, bestKey, lh.pass.Fset.Position(bestPos).Line)
}
