// Package analysis implements femtolint, the project's static-analysis
// suite. It is a deliberately small, dependency-free re-implementation of
// the golang.org/x/tools/go/analysis model (Analyzer / Pass / Diagnostic)
// built on the standard library's go/ast and go/types, because this tree
// must build offline with the Go toolchain alone.
//
// The analyzers machine-check the contracts that PR 1 made
// load-bearing and that the paper's campaign engineering depends on:
//
//   - ctxcancel:   every for loop in a context-taking function must consult
//     the context, so solves and drivers stay interruptible
//     mid-iteration (the mpi_jm backfilling story needs jobs
//     that yield promptly when preempted).
//   - detrange:    map iteration order must never leak into ordered output,
//     float accumulation, or task emission — bit-for-bit
//     reproducibility across worker counts is a tier-1 test.
//   - globalrand:  all randomness flows from an explicitly seeded
//     *rand.Rand; the global math/rand source would break
//     statistically exact re-analysis of an ensemble.
//   - hotalloc:    no make/append/map allocation inside nested loops of the
//     hot packages (dirac, solver, linalg, contract).
//   - errdrop:     no silently discarded errors outside tests.
//   - dettaint:    interprocedural determinism taint — every function that
//     transitively reads wall-clock time, global rand, map
//     iteration order, GOMAXPROCS/NumCPU, or the environment
//     is recorded in a package fact, and any such call
//     reachable from a determinism-critical root (cache keys
//     and codecs, hio encoders, solver/linalg/dirac kernels,
//     journal records) is a diagnostic.
//   - spanend:     every obs span opened must be ended on all paths
//     (defer or all-returns), so traces cannot silently lose
//     lanes.
//   - lockhold:    no blocking operation (channel ops, select without
//     default, singleflight, waits — and, in the runtime/
//     cache/autotune packages, file I/O) while holding a
//     sync.Mutex/RWMutex.
//
// Diagnostics can be suppressed, narrowly, with a justified comment on the
// flagged line or the line above:
//
//	//femtolint:ignore <analyzer> <reason>
//
// The driver rejects directives that are malformed, name an unknown
// analyzer, or omit the reason.
package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer is one femtolint pass. Each pass sees one fully
// type-checked package and reports diagnostics; a pass with HasFacts set
// additionally exports a package-level fact (a JSON-serializable summary
// of the package, see facts.go) and may import the facts of the
// package's dependencies — the mechanism that makes dettaint
// interprocedural. There are still no analyzer-to-analyzer dependencies:
// facts flow between packages within one analyzer, never between
// analyzers.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
	// HasFacts marks the analyzer as exporting package facts. The
	// unitchecker runs fact-bearing analyzers on dependency-only
	// (VetxOnly) units too — suppressing their diagnostics — so facts
	// exist for every package the listed ones import.
	HasFacts bool
}

// A Pass is the unit of work handed to one Analyzer.Run: a single
// type-checked package, plus the facts its dependencies exported for
// this analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	imports    Facts
	exportFact func(json.RawMessage)
	report     func(Diagnostic)
}

// ImportPackageFact decodes into dst the fact this analyzer exported for
// the package with the given import path, reporting whether one exists.
// Facts arrive via the vetx files of direct imports under `go vet`
// (which re-export their own imports' facts, making the flow transitive)
// or via Target.Imports in tests.
func (p *Pass) ImportPackageFact(path string, dst any) bool {
	raw, ok := p.imports[path][p.Analyzer.Name]
	if !ok {
		return false
	}
	return json.Unmarshal(raw, dst) == nil
}

// ExportPackageFact records src as this analyzer's fact for the package
// under analysis. The last export wins; analyzers conventionally export
// exactly once, at the end of Run.
func (p *Pass) ExportPackageFact(src any) error {
	raw, err := json.Marshal(src)
	if err != nil {
		return fmt.Errorf("%s: marshal fact: %w", p.Analyzer.Name, err)
	}
	if p.exportFact != nil {
		p.exportFact(raw)
	}
	return nil
}

// A Diagnostic is one finding, attributed to the analyzer that produced it.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos falls in a _test.go file. All five
// analyzers police production code only: tests intentionally discard
// errors, range maps for coverage, and allocate in benchmark loops.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// All returns the full femtolint suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{CtxCancel, DetRange, DetTaint, GlobalRand, HotAlloc, ErrDrop, SpanEnd, LockHold}
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

var errorInterface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorType reports whether t implements the error interface (and so a
// value of it carries failure information that must not be dropped).
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := t.(*types.Basic); ok {
		// Unnamed basic types (int, float64, untyped constants, ...)
		// cannot carry methods, so they never implement error; skipping
		// them avoids a types.Implements call on almost every operand.
		return false
	}
	return types.Implements(t, errorInterface) || types.Identical(t, errorInterface)
}

// declaredOutside reports whether the object bound to expr (when expr is a
// plain identifier) was declared outside the [lo, hi] source range. A
// non-identifier expression (selector, index, dereference) always refers to
// storage that outlives the range, so it reports true. Blank identifiers
// report false: assigning to _ stores nothing.
func declaredOutside(info *types.Info, expr ast.Expr, lo, hi token.Pos) bool {
	switch e := expr.(type) {
	case *ast.Ident:
		if e.Name == "_" {
			return false
		}
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if obj == nil {
			return false
		}
		return obj.Pos() < lo || obj.Pos() > hi
	case *ast.ParenExpr:
		return declaredOutside(info, e.X, lo, hi)
	default:
		return true
	}
}
