package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ErrDrop flags silently discarded errors in non-test code: assignments of
// an error-typed value to the blank identifier, and expression-statement
// calls whose results (which include an error) are never bound at all. A
// campaign that shrugs off an I/O or solve error produces a silently
// truncated ensemble, which is worse than a crash — the statistics look
// fine and are wrong.
//
// A small set of can't-realistically-fail sinks is exempt: fmt printing to
// stdout/stderr, and the Write/WriteString/... methods of bytes.Buffer and
// strings.Builder (documented to always return a nil error).
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "errors must be handled: no `_ =` error discards or unchecked error-returning calls outside tests",
	Run:  runErrDrop,
}

func runErrDrop(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				errDropCheckAssign(pass, s)
			case *ast.ExprStmt:
				errDropCheckExprStmt(pass, s)
			}
			return true
		})
	}
	return nil
}

func errDropCheckAssign(pass *Pass, s *ast.AssignStmt) {
	if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
		return
	}
	for i, lhs := range s.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		t := blankOperandType(pass, s, i)
		if !isErrorType(t) {
			continue
		}
		rhs := s.Rhs[0]
		if len(s.Rhs) > 1 && i < len(s.Rhs) {
			rhs = s.Rhs[i]
		}
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && exemptCall(pass, call) {
			continue
		}
		pass.Reportf(id.Pos(), "error discarded with _; handle it, propagate it, or suppress with a justified //femtolint:ignore")
	}
}

// blankOperandType resolves the type flowing into s.Lhs[i], handling both
// the one-call-many-results form and the pairwise form.
func blankOperandType(pass *Pass, s *ast.AssignStmt, i int) types.Type {
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		tuple, ok := pass.TypesInfo.TypeOf(s.Rhs[0]).(*types.Tuple)
		if !ok || i >= tuple.Len() {
			return nil
		}
		return tuple.At(i).Type()
	}
	if i < len(s.Rhs) {
		return pass.TypesInfo.TypeOf(s.Rhs[i])
	}
	return nil
}

func errDropCheckExprStmt(pass *Pass, s *ast.ExprStmt) {
	call, ok := ast.Unparen(s.X).(*ast.CallExpr)
	if !ok {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsValue() {
		return // conversion or builtin, not a call that can fail
	}
	if !resultsIncludeError(pass.TypesInfo.TypeOf(call)) {
		return
	}
	if exemptCall(pass, call) {
		return
	}
	pass.Reportf(call.Pos(), "call returns an error that is never checked; assign and handle it (or suppress with a justified //femtolint:ignore)")
}

func resultsIncludeError(t types.Type) bool {
	switch rt := t.(type) {
	case *types.Tuple:
		for i := 0; i < rt.Len(); i++ {
			if isErrorType(rt.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

// exemptCall whitelists conventional never-fails sinks.
func exemptCall(pass *Pass, call *ast.CallExpr) bool {
	callee := calleeFunc(pass, call)
	if callee == nil {
		return false
	}
	if recv := callee.Type().(*types.Signature).Recv(); recv != nil {
		// bytes.Buffer and strings.Builder document a guaranteed nil
		// error from their Write*/ReadFrom-style methods.
		rt := recv.Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		if named, ok := types.Unalias(rt).(*types.Named); ok && named.Obj().Pkg() != nil {
			full := named.Obj().Pkg().Path() + "." + named.Obj().Name()
			if full == "bytes.Buffer" || full == "strings.Builder" {
				return true
			}
		}
		return false
	}
	if pkg := callee.Pkg(); pkg != nil && pkg.Path() == "fmt" {
		name := callee.Name()
		if strings.HasPrefix(name, "Print") {
			return true // stdout: diagnostics-only, failure unactionable
		}
		if strings.HasPrefix(name, "Fprint") && len(call.Args) > 0 {
			// Fprint's error is the writer's; stderr/stdout and the
			// in-memory builders cannot meaningfully fail.
			return isStdStream(pass, call.Args[0]) ||
				isInfallibleWriter(pass.TypesInfo.TypeOf(call.Args[0]))
		}
	}
	return false
}

// isInfallibleWriter reports whether t is *bytes.Buffer or
// *strings.Builder, whose Write methods are documented to return nil
// errors always.
func isInfallibleWriter(t types.Type) bool {
	p, ok := types.Unalias(t).(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := types.Unalias(p.Elem()).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	full := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	return full == "bytes.Buffer" || full == "strings.Builder"
}

func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isStdStream reports whether e is os.Stdout or os.Stderr.
func isStdStream(pass *Pass, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	v, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if !ok || v.Pkg() == nil || v.Pkg().Path() != "os" {
		return false
	}
	return v.Name() == "Stdout" || v.Name() == "Stderr"
}
