package analysis

import (
	"encoding/json"
	"fmt"
	"sort"
)

// This file is femtolint's fact mechanism: the piece that turns the suite
// from five intraprocedural passes into an interprocedural analysis. A
// fact is a JSON-serializable summary an analyzer exports about the
// package it just analyzed (for dettaint: which functions transitively
// read nondeterministic inputs). Facts ride the `go vet` vetx protocol:
// cmd/go hands every compilation unit the vetx file of each direct
// import (vetConfig.PackageVetx) and collects the unit's own vetx output,
// so facts flow through the build graph in dependency order with cmd/go
// doing all the scheduling and caching. Because each unit re-exports the
// facts it imported alongside its own (see MergeFacts), direct-import
// visibility is enough to make the flow transitive.
//
// The in-process analysistest harness threads the same Facts values
// through Target.Imports directly, so fixtures exercise the identical
// code path minus the serialization.

// PackageFacts maps analyzer name -> that analyzer's serialized fact for
// one package. Analyzers that export nothing simply have no entry.
type PackageFacts map[string]json.RawMessage

// Facts maps package import path -> the facts exported for it. A nil
// Facts behaves as empty everywhere.
type Facts map[string]PackageFacts

// vetxSchema versions the fact file format. A reader that sees a
// different schema treats the file as empty rather than erroring: the
// -V=full buildID handshake already guarantees cmd/go never feeds one
// femtolint build the vetx files of another, so a mismatch can only come
// from hand-built test configs.
const vetxSchema = "femtolint-facts/v1"

// vetxFile is the on-disk shape of a vetx fact file.
type vetxFile struct {
	Schema string `json:"schema"`
	Facts  Facts  `json:"facts"`
}

// EncodeFacts renders facts as a deterministic vetx fact file.
// encoding/json sorts map keys, so byte-identical facts yield
// byte-identical files regardless of construction order — which keeps
// cmd/go's content-addressed action cache stable.
func EncodeFacts(f Facts) ([]byte, error) {
	if f == nil {
		f = Facts{}
	}
	data, err := json.Marshal(vetxFile{Schema: vetxSchema, Facts: f})
	if err != nil {
		return nil, fmt.Errorf("femtolint: encode facts: %w", err)
	}
	return append(data, '\n'), nil
}

// DecodeFacts parses a vetx fact file. Unknown schemas decode as empty
// facts (see vetxSchema); malformed JSON is an error.
func DecodeFacts(data []byte) (Facts, error) {
	var vf vetxFile
	if err := json.Unmarshal(data, &vf); err != nil {
		return nil, fmt.Errorf("femtolint: decode facts: %w", err)
	}
	if vf.Schema != vetxSchema || vf.Facts == nil {
		return Facts{}, nil
	}
	return vf.Facts, nil
}

// MergeFacts folds src into dst (creating dst if nil) and returns dst.
// Existing entries win: a package's facts are computed exactly once per
// build, so any duplicate arriving via a second import path is identical
// by construction.
func MergeFacts(dst, src Facts) Facts {
	if dst == nil {
		dst = Facts{}
	}
	for path, pf := range src {
		if _, ok := dst[path]; ok {
			continue
		}
		dst[path] = pf
	}
	return dst
}

// FactPackages returns the package paths carrying facts, sorted, for
// deterministic iteration in tests and reports.
func FactPackages(f Facts) []string {
	paths := make([]string, 0, len(f))
	for p := range f {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}
