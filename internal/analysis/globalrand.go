package analysis

import (
	"go/ast"
	"go/types"
)

// GlobalRand forbids the process-global math/rand source in non-test code.
// The paper's analysis (and this tree's tier-1 reproducibility tests)
// depend on every stochastic ingredient — gauge updates, HMC momenta,
// stochastic sources, failure injection — being replayable from an
// explicit seed. Package-level rand.Float64/rand.Intn/... draw from a
// shared, possibly re-seeded source, so two runs with the same nominal
// seeds interleave differently the moment goroutine scheduling changes.
// Randomness must flow from a seeded *rand.Rand threaded through the call
// graph, as internal/gauge and internal/runtime do. Constructors that
// build such generators (rand.New, rand.NewSource, rand.NewZipf) stay
// legal.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc:  "package-level math/rand functions break seeded determinism; thread an explicit *rand.Rand",
	Run:  runGlobalRand,
}

// globalRandAllowed are math/rand package-level functions that construct
// explicit generators rather than drawing from the global source.
var globalRandAllowed = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 constructors, should the tree ever migrate.
	"NewPCG": true, "NewChaCha8": true,
}

func runGlobalRand(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			pkg := fn.Pkg()
			if pkg == nil {
				return true
			}
			if p := pkg.Path(); p != "math/rand" && p != "math/rand/v2" {
				return true
			}
			if globalRandAllowed[fn.Name()] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"use of global math/rand source (rand.%s) breaks seeded determinism; draw from an explicit *rand.Rand (rand.New(rand.NewSource(seed)))", fn.Name())
			return true
		})
	}
	return nil
}
