package analysis

import (
	"go/ast"
)

// CtxCancel enforces the PR 1 solver contract, generalized: any function
// that accepts a context.Context and contains a for loop must consult the
// context inside that loop — by calling ctx.Err(), selecting on
// ctx.Done(), or passing the context into a callee that does. A solve that
// cannot be aborted mid-iteration holds its node hostage for the full
// 25k-iteration cap, which is exactly the behaviour mpi_jm-style
// backfilling cannot tolerate.
//
// Range loops are exempt: they are bounded by the data they traverse.
// A for loop whose body lexically references any value of type
// context.Context (the parameter itself, or a derived context) counts as
// consulting it.
var CtxCancel = &Analyzer{
	Name: "ctxcancel",
	Doc:  "for loops in context-taking functions must consult the context so cancellation can interrupt them",
	Run:  runCtxCancel,
}

func runCtxCancel(pass *Pass) error {
	flagged := make(map[ast.Node]bool)
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					ctxCheckFunc(pass, fn.Type, fn.Body, fn.Name.Name, flagged)
				}
			case *ast.FuncLit:
				ctxCheckFunc(pass, fn.Type, fn.Body, "function literal", flagged)
			}
			return true
		})
	}
	return nil
}

// ctxCheckFunc flags for loops in body that never consult a context,
// provided ftype declares a context.Context parameter. Two structural
// exemptions keep the contract at the right granularity:
//
//   - nested function literals that do not themselves take a context are
//     separate functions (usually hot kernels invoked by a caller that
//     owns the cancellation check) and are skipped here; they are checked
//     on their own if they declare a ctx parameter;
//   - a loop nested inside a loop that already consults the context is
//     exempt: cancelling at the granularity of one outer iteration is the
//     contract, and per-inner-iteration checks would put branches in the
//     flop path.
//
// The flagged set dedupes loops seen through both an enclosing FuncDecl
// and a nested FuncLit that each take a context.
func ctxCheckFunc(pass *Pass, ftype *ast.FuncType, body *ast.BlockStmt, name string, flagged map[ast.Node]bool) {
	if !takesContext(pass, ftype) {
		return
	}
	var visit func(n ast.Node, covered bool)
	visit = func(n ast.Node, covered bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			if m == nil || m == n {
				return true
			}
			switch inner := m.(type) {
			case *ast.FuncLit:
				return false // analyzed separately iff it takes a ctx
			case *ast.ForStmt:
				ok := referencesContext(pass, inner)
				if !ok && !covered && !flagged[inner] {
					flagged[inner] = true
					pass.Reportf(inner.For,
						"for loop in %s never consults its context; check ctx.Err()/ctx.Done() (or pass ctx to the loop body) so cancellation can interrupt the iteration", name)
				}
				visit(inner, covered || ok)
				return false
			case *ast.RangeStmt:
				// Range loops are bounded and never flagged, but an
				// inner for loop under a ctx-consulting range is covered.
				visit(inner, covered || referencesContext(pass, inner))
				return false
			}
			return true
		})
	}
	visit(body, false)
}

func takesContext(pass *Pass, ftype *ast.FuncType) bool {
	if ftype.Params == nil {
		return false
	}
	for _, field := range ftype.Params.List {
		if t := pass.TypesInfo.TypeOf(field.Type); t != nil && isContextType(t) {
			return true
		}
	}
	return false
}

// referencesContext reports whether any identifier inside the loop
// (including its condition and post statement) denotes a value of type
// context.Context.
func referencesContext(pass *Pass, loop ast.Node) bool {
	found := false
	ast.Inspect(loop, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			obj = pass.TypesInfo.Defs[id]
		}
		if obj != nil && isContextType(obj.Type()) {
			found = true
		}
		return true
	})
	return found
}
