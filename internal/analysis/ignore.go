package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignoreMarker introduces a suppression directive. The full form is
//
//	//femtolint:ignore <analyzer> <reason>
//
// and it silences diagnostics from exactly that analyzer on the directive's
// own line and on the line immediately below it (so the directive can sit
// either at the end of the flagged line or on its own line above).
const ignoreMarker = "femtolint:ignore"

// driverName attributes diagnostics produced by the driver itself
// (malformed suppression directives) rather than by one of the passes.
const driverName = "femtolint"

type ignoreDirective struct {
	pos      token.Pos
	line     int
	file     string
	analyzer string
	used     int
}

// directivePos returns the position of the femtolint:ignore marker itself
// within comment c, not the comment's start: a trailing directive on a
// long line must anchor editors to the directive, and a malformed one
// must point at exactly what is malformed.
func directivePos(c *ast.Comment, text string) token.Pos {
	if i := strings.Index(c.Text, text); i >= 0 {
		return c.Pos() + token.Pos(i)
	}
	return c.Pos()
}

// collectIgnores scans all comments for femtolint:ignore directives.
// Malformed directives — a missing analyzer name, an unknown analyzer, or
// no reason — are themselves reported as diagnostics: a suppression without
// a recorded justification is exactly the silent contract erosion femtolint
// exists to prevent.
func collectIgnores(fset *token.FileSet, files []*ast.File, known map[string]bool) ([]*ignoreDirective, []Diagnostic) {
	var directives []*ignoreDirective
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(text, "/*")
				text = strings.TrimSpace(strings.TrimSuffix(text, "*/"))
				if !strings.HasPrefix(text, ignoreMarker) {
					continue
				}
				pos := directivePos(c, ignoreMarker)
				fields := strings.Fields(strings.TrimPrefix(text, ignoreMarker))
				switch {
				case len(fields) == 0:
					bad = append(bad, Diagnostic{Pos: pos, Analyzer: driverName,
						Message: "malformed femtolint:ignore: want \"//femtolint:ignore <analyzer> <reason>\""})
				case !known[fields[0]]:
					bad = append(bad, Diagnostic{Pos: pos, Analyzer: driverName,
						Message: "femtolint:ignore names unknown analyzer " + quote(fields[0])})
				case len(fields) < 2:
					bad = append(bad, Diagnostic{Pos: pos, Analyzer: driverName,
						Message: "femtolint:ignore " + fields[0] + " needs a reason"})
				default:
					posn := fset.Position(pos)
					directives = append(directives, &ignoreDirective{
						pos:      pos,
						line:     posn.Line,
						file:     posn.Filename,
						analyzer: fields[0],
					})
				}
			}
		}
	}
	return directives, bad
}

// suppressedBy returns the directive silencing d, or nil. The caller
// increments the winner's usage count, which is what lets -audit flag
// stale directives whose diagnostic no longer fires.
func suppressedBy(fset *token.FileSet, d Diagnostic, directives []*ignoreDirective) *ignoreDirective {
	posn := fset.Position(d.Pos)
	for _, dir := range directives {
		if dir.analyzer != d.Analyzer || dir.file != posn.Filename {
			continue
		}
		if dir.line == posn.Line || dir.line == posn.Line-1 {
			return dir
		}
	}
	return nil
}

func quote(s string) string { return "\"" + s + "\"" }
