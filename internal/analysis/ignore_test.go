package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// typesConfigForTest typechecks against the compiler's export data,
// which is all the in-package driver tests need.
func typesConfigForTest() *types.Config {
	return &types.Config{Importer: importer.Default()}
}

// ignoreSrc carries one well-formed directive (line 12) and three
// malformed ones: no fields, an unknown analyzer, and a missing reason.
const ignoreSrc = `package p

//femtolint:ignore
func a() {}

//femtolint:ignore nosuchpass reason here
func b() {}

//femtolint:ignore ctxcancel
func c() {}

//femtolint:ignore ctxcancel the loop is bounded by construction
func d() {}

func e() {}
`

func parseIgnoreSrc(t *testing.T) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "ignore_fixture.go", ignoreSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

func TestCollectIgnores(t *testing.T) {
	fset, f := parseIgnoreSrc(t)
	known := map[string]bool{"ctxcancel": true}
	directives, bad := collectIgnores(fset, []*ast.File{f}, known)

	if len(directives) != 1 {
		t.Fatalf("got %d directives, want 1: %+v", len(directives), directives)
	}
	if d := directives[0]; d.analyzer != "ctxcancel" || d.line != 12 || d.file != "ignore_fixture.go" {
		t.Errorf("directive = %+v, want ctxcancel at ignore_fixture.go:12", d)
	}

	if len(bad) != 3 {
		t.Fatalf("got %d bad-directive diagnostics, want 3: %+v", len(bad), bad)
	}
	for _, d := range bad {
		if d.Analyzer != "femtolint" {
			t.Errorf("bad directive attributed to %q, want driver name \"femtolint\"", d.Analyzer)
		}
	}
	for i, frag := range []string{"malformed", "unknown analyzer", "needs a reason"} {
		if !strings.Contains(bad[i].Message, frag) {
			t.Errorf("bad[%d] = %q, want it to mention %q", i, bad[i].Message, frag)
		}
	}
}

func TestSuppressed(t *testing.T) {
	fset, f := parseIgnoreSrc(t)
	directives, _ := collectIgnores(fset, []*ast.File{f}, map[string]bool{"ctxcancel": true})
	tf := fset.File(f.Pos())

	at := func(line int) token.Pos { return tf.LineStart(line) }
	cases := []struct {
		name     string
		analyzer string
		line     int
		want     bool
	}{
		{"same line", "ctxcancel", 12, true},
		{"line below", "ctxcancel", 13, true},
		{"two lines below", "ctxcancel", 14, false},
		{"line above directive", "ctxcancel", 11, false},
		{"other analyzer", "errdrop", 13, false},
	}
	for _, c := range cases {
		d := Diagnostic{Pos: at(c.line), Analyzer: c.analyzer}
		if got := suppressedBy(fset, d, directives) != nil; got != c.want {
			t.Errorf("%s: suppressedBy = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestSuppressedOtherFile(t *testing.T) {
	fset, f := parseIgnoreSrc(t)
	directives, _ := collectIgnores(fset, []*ast.File{f}, map[string]bool{"ctxcancel": true})

	other := fset.AddFile("elsewhere.go", -1, 100)
	other.SetLinesForContent([]byte(strings.Repeat("x\n", 50)))
	d := Diagnostic{Pos: other.LineStart(12), Analyzer: "ctxcancel"}
	if suppressedBy(fset, d, directives) != nil {
		t.Error("directive suppressed a diagnostic in a different file")
	}
}

// TestMalformedDirectivePosition is the regression test for the position
// fix: malformed-directive diagnostics (and directive records) must
// anchor at the femtolint:ignore marker itself — the exact line AND
// column — not at the start of the enclosing comment or comment group,
// so editors jump to the directive.
func TestMalformedDirectivePosition(t *testing.T) {
	src := `package p

// A leading documentation comment in the same comment group, so a
// group-anchored diagnostic would point at the wrong line.
//femtolint:ignore
func a() {}

func b() { _ = 1 } //femtolint:ignore nosuchpass trailing directive
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "pos_fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	_, bad := collectIgnores(fset, []*ast.File{f}, map[string]bool{"ctxcancel": true})
	if len(bad) != 2 {
		t.Fatalf("got %d bad-directive diagnostics, want 2: %+v", len(bad), bad)
	}

	posn := fset.Position(bad[0].Pos)
	if posn.Line != 5 {
		t.Errorf("malformed directive reported at line %d, want 5 (the directive's own line)", posn.Line)
	}
	// "//femtolint:ignore": the marker starts right after the two
	// slashes, column 3.
	if posn.Column != 3 {
		t.Errorf("malformed directive reported at column %d, want 3 (the femtolint:ignore marker)", posn.Column)
	}

	posn = fset.Position(bad[1].Pos)
	if posn.Line != 8 {
		t.Errorf("trailing malformed directive reported at line %d, want 8", posn.Line)
	}
	if wantCol := strings.Index("func b() { _ = 1 } //femtolint:ignore", "femtolint:ignore") + 1; posn.Column != wantCol {
		t.Errorf("trailing malformed directive reported at column %d, want %d", posn.Column, wantCol)
	}
}

// TestDirectiveUsageCounts verifies the used counter that -audit relies
// on: a directive that actually suppresses a diagnostic reports Used > 0
// through the driver, an idle one reports Used == 0.
func TestDirectiveUsageCounts(t *testing.T) {
	src := `package p

import "math/rand"

//femtolint:ignore globalrand seeded elsewhere, fixture
func a() float64 { return rand.Float64() }

//femtolint:ignore globalrand stale: nothing below fires
func b() int { return 1 }
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "used_fixture.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := NewInfo()
	// Typecheck with a stub importer: globalrand only needs package
	// paths, which go/types records even for incomplete imports.
	conf := typesConfigForTest()
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	res, err := Run(&Target{Fset: fset, Files: []*ast.File{f}, Pkg: pkg, Info: info}, []*Analyzer{GlobalRand}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Diags) != 0 {
		t.Fatalf("unexpected diagnostics: %+v", res.Diags)
	}
	if len(res.Directives) != 2 {
		t.Fatalf("got %d directives, want 2: %+v", len(res.Directives), res.Directives)
	}
	if res.Directives[0].Used != 1 {
		t.Errorf("suppressing directive Used = %d, want 1", res.Directives[0].Used)
	}
	if res.Directives[1].Used != 0 {
		t.Errorf("stale directive Used = %d, want 0", res.Directives[1].Used)
	}
	if res.Directives[0].Col == 0 || res.Directives[0].Line != 5 {
		t.Errorf("directive position = %d:%d, want line 5 with a real column", res.Directives[0].Line, res.Directives[0].Col)
	}
}
