package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// ignoreSrc carries one well-formed directive (line 12) and three
// malformed ones: no fields, an unknown analyzer, and a missing reason.
const ignoreSrc = `package p

//femtolint:ignore
func a() {}

//femtolint:ignore nosuchpass reason here
func b() {}

//femtolint:ignore ctxcancel
func c() {}

//femtolint:ignore ctxcancel the loop is bounded by construction
func d() {}

func e() {}
`

func parseIgnoreSrc(t *testing.T) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "ignore_fixture.go", ignoreSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

func TestCollectIgnores(t *testing.T) {
	fset, f := parseIgnoreSrc(t)
	known := map[string]bool{"ctxcancel": true}
	directives, bad := collectIgnores(fset, []*ast.File{f}, known)

	if len(directives) != 1 {
		t.Fatalf("got %d directives, want 1: %+v", len(directives), directives)
	}
	if d := directives[0]; d.analyzer != "ctxcancel" || d.line != 12 || d.file != "ignore_fixture.go" {
		t.Errorf("directive = %+v, want ctxcancel at ignore_fixture.go:12", d)
	}

	if len(bad) != 3 {
		t.Fatalf("got %d bad-directive diagnostics, want 3: %+v", len(bad), bad)
	}
	for _, d := range bad {
		if d.Analyzer != "femtolint" {
			t.Errorf("bad directive attributed to %q, want driver name \"femtolint\"", d.Analyzer)
		}
	}
	for i, frag := range []string{"malformed", "unknown analyzer", "needs a reason"} {
		if !strings.Contains(bad[i].Message, frag) {
			t.Errorf("bad[%d] = %q, want it to mention %q", i, bad[i].Message, frag)
		}
	}
}

func TestSuppressed(t *testing.T) {
	fset, f := parseIgnoreSrc(t)
	directives, _ := collectIgnores(fset, []*ast.File{f}, map[string]bool{"ctxcancel": true})
	tf := fset.File(f.Pos())

	at := func(line int) token.Pos { return tf.LineStart(line) }
	cases := []struct {
		name     string
		analyzer string
		line     int
		want     bool
	}{
		{"same line", "ctxcancel", 12, true},
		{"line below", "ctxcancel", 13, true},
		{"two lines below", "ctxcancel", 14, false},
		{"line above directive", "ctxcancel", 11, false},
		{"other analyzer", "errdrop", 13, false},
	}
	for _, c := range cases {
		d := Diagnostic{Pos: at(c.line), Analyzer: c.analyzer}
		if got := suppressed(fset, d, directives); got != c.want {
			t.Errorf("%s: suppressed = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestSuppressedOtherFile(t *testing.T) {
	fset, f := parseIgnoreSrc(t)
	directives, _ := collectIgnores(fset, []*ast.File{f}, map[string]bool{"ctxcancel": true})

	other := fset.AddFile("elsewhere.go", -1, 100)
	other.SetLinesForContent([]byte(strings.Repeat("x\n", 50)))
	d := Diagnostic{Pos: other.LineStart(12), Analyzer: "ctxcancel"}
	if suppressed(fset, d, directives) {
		t.Error("directive suppressed a diagnostic in a different file")
	}
}
