package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DetRange guards bit-for-bit reproducibility: ranging over a map visits
// keys in a randomized order, so a map-range body that appends to an outer
// slice, accumulates floating-point (or complex) values, sends on a
// channel, or emits output/tasks produces run-to-run-different results.
// The blessed pattern is the hio.sortedKeys idiom — collect the keys,
// sort, then iterate the sorted slice — which the analyzer recognizes and
// exempts: a map-range whose only effect is appending keys/values into a
// slice that the same function subsequently passes to sort.* or slices.*.
var DetRange = &Analyzer{
	Name: "detrange",
	Doc:  "map iteration order must not feed ordered output, float accumulation, or task emission; sort the keys first",
	Run:  runDetRange,
}

// emissionMethods are method/function names whose call inside a map-range
// body emits something externally visible in iteration order.
var emissionMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Submit": true, "Enqueue": true,
}

func runDetRange(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				detRangeCheckFunc(pass, body)
			}
			return true
		})
	}
	return nil
}

func detRangeCheckFunc(pass *Pass, funcBody *ast.BlockStmt) {
	ast.Inspect(funcBody, func(n ast.Node) bool {
		// Nested function literals are visited on their own by
		// runDetRange, with their own body as the idiom-search scope.
		if fl, ok := n.(*ast.FuncLit); ok && fl.Body != funcBody {
			return false
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if rangeVarsBlank(rs) {
			// Neither key nor value is bound, so the body cannot depend
			// on which element the iteration is visiting.
			return true
		}
		if sink := orderSensitiveSink(pass, rs, funcBody); sink != "" {
			pass.Reportf(rs.For,
				"map iteration order feeds %s, which makes the result depend on Go's randomized map order; collect and sort the keys first (hio.sortedKeys idiom)", sink)
		}
		return true
	})
}

func rangeVarsBlank(rs *ast.RangeStmt) bool {
	bound := func(e ast.Expr) bool {
		if e == nil {
			return false
		}
		id, ok := e.(*ast.Ident)
		return !ok || id.Name != "_"
	}
	return !bound(rs.Key) && !bound(rs.Value)
}

// orderSensitiveSink scans the range body for an effect whose outcome
// depends on iteration order and names the first one found. An append
// into an outer slice is exempt when the same function later passes that
// slice to sort.* or slices.* — the hio.sortedKeys idiom, generalized to
// any collect-then-sort pattern — because sorting erases the insertion
// order.
func orderSensitiveSink(pass *Pass, rs *ast.RangeStmt, funcBody *ast.BlockStmt) string {
	sink := ""
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch s := n.(type) {
		case *ast.AssignStmt:
			switch s.Tok {
			case token.ASSIGN, token.DEFINE:
				for i, rhs := range s.Rhs {
					if i < len(s.Lhs) && isAppendCall(pass, rhs) &&
						declaredOutside(pass.TypesInfo, s.Lhs[i], rs.Pos(), rs.End()) &&
						!collectedForSorting(pass, s.Lhs[i], rs, funcBody) {
						sink = "an append to a slice declared outside the loop"
					}
				}
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				if len(s.Lhs) == 1 && isInexactNumeric(pass.TypesInfo.TypeOf(s.Lhs[0])) &&
					declaredOutside(pass.TypesInfo, s.Lhs[0], rs.Pos(), rs.End()) {
					sink = "a floating-point accumulation (rounding differs per order)"
				}
			}
		case *ast.SendStmt:
			sink = "a channel send"
		case *ast.CallExpr:
			if sel, ok := s.Fun.(*ast.SelectorExpr); ok && emissionMethods[sel.Sel.Name] {
				sink = "output or task emission (" + sel.Sel.Name + ")"
			}
		}
		return true
	})
	return sink
}

func isAppendCall(pass *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

func isInexactNumeric(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&(types.IsFloat|types.IsComplex) != 0
}

// collectedForSorting reports whether the append destination lhs is a
// plain variable that the enclosing function subsequently sorts.
func collectedForSorting(pass *Pass, lhs ast.Expr, rs *ast.RangeStmt, funcBody *ast.BlockStmt) bool {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	return obj != nil && sortedAfter(pass, obj, rs, funcBody)
}

// sortedAfter reports whether obj is passed to a sort/slices call after the
// range statement within the same function body.
func sortedAfter(pass *Pass, obj types.Object, rs *ast.RangeStmt, funcBody *ast.BlockStmt) bool {
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
		if !ok {
			return true
		}
		if p := pkgName.Imported().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}
