package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// HotAlloc polices the hot kernels. The dirac/solver/linalg/contract
// packages carry essentially all of the flop budget (the paper's workload
// is >95% solver time), and an allocation inside a nested loop there turns
// into garbage pressure proportional to lattice volume × iterations.
// The pass flags make(...), append(...), and slice/map composite literals
// that sit under two or more enclosing loops in those packages — i.e. in
// the innermost levels of a loop nest — where buffers must be hoisted and
// reused.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "no make/append/map allocation in the innermost loops of the hot packages (dirac, solver, linalg, contract)",
	Run:  runHotAlloc,
}

// hotPkgs are the import-path suffixes of the flop-dominated packages.
var hotPkgs = []string{
	"internal/dirac",
	"internal/solver",
	"internal/linalg",
	"internal/contract",
}

func isHotPackage(path string) bool {
	for _, s := range hotPkgs {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

func runHotAlloc(pass *Pass) error {
	if !isHotPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				hotWalk(pass, fd.Body, 0)
			}
		}
	}
	return nil
}

// hotWalk recurses through n counting enclosing loops; allocations at loop
// depth >= 2 are in the innermost levels of a nest and get flagged.
// Function literals do not reset the depth: a closure created or invoked
// inside a hot loop allocates on that loop's cadence.
func hotWalk(pass *Pass, n ast.Node, depth int) {
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil || m == n {
			return true
		}
		switch stmt := m.(type) {
		case *ast.ForStmt:
			hotWalk(pass, stmt, depth+1)
			return false
		case *ast.RangeStmt:
			hotWalk(pass, stmt, depth+1)
			return false
		}
		if depth < 2 {
			return true
		}
		switch e := m.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "make":
						pass.Reportf(e.Pos(), "make inside a depth-%d hot loop; hoist the buffer out of the iteration path and reuse it", depth)
					case "append":
						pass.Reportf(e.Pos(), "append inside a depth-%d hot loop; preallocate the slice outside the loop nest", depth)
					}
				}
			}
		case *ast.CompositeLit:
			if t := pass.TypesInfo.TypeOf(e); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					pass.Reportf(e.Pos(), "slice/map composite literal inside a depth-%d hot loop; hoist the allocation out of the iteration path", depth)
				}
			}
		}
		return true
	})
}
