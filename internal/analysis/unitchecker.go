package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	goruntime "runtime"
	"sort"
	"strings"
)

// This file implements the `go vet -vettool` driver protocol (the role
// x/tools calls a "unitchecker") on the standard library alone:
//
//  1. cmd/go probes `femtolint -V=full` once to obtain a build ID for its
//     action cache; the reply must be `<name> version devel ...
//     buildID=<hex>` (see cmd/go/internal/work/buildid.go, toolID).
//  2. For every package in the build graph cmd/go then invokes
//     `femtolint <objdir>/vet.cfg`, where vet.cfg is a JSON vetConfig
//     describing one compilation unit: its Go files, the export-data file
//     of every dependency, the vetx fact file of every direct import
//     (PackageVetx), and an output path for this unit's own facts
//     (VetxOutput).
//  3. The tool type-checks the unit against the dependencies' export data,
//     runs its analyzers with the imported facts in scope, prints
//     diagnostics to stderr as `file:line:col: message`, writes its fact
//     file, and exits 2 when it found anything, 0 otherwise.
//
// Dependency-only units arrive with VetxOnly set: cmd/go wants their facts
// (so the listed packages can import them) but not their diagnostics. For
// those, femtolint runs only the fact-bearing analyzers and discards
// reports. Standard-library units are not analyzed at all — dettaint
// models the stdlib's nondeterminism intrinsically (time.Now, math/rand,
// os.Getenv, ...) rather than by scanning its source — so they just
// re-export whatever facts they imported (always empty today).

// vetConfig mirrors cmd/go/internal/work.vetConfig.
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string
	GoVersion     string

	SucceedOnTypecheckFailure bool
}

// AuditEnv, when set in the environment, points at a directory into which
// every non-VetxOnly unit writes one AuditRecord (as JSON). The -audit
// mode of cmd/femtolint sets it, re-runs `go vet -vettool=<self>`, and
// aggregates the records into a suppression-budget report.
const AuditEnv = "FEMTOLINT_AUDIT_DIR"

// An AuditRecord is what one analyzed compilation unit contributes to a
// femtolint -audit run: its suppression directives with usage counts, plus
// how many malformed directives it carries.
type AuditRecord struct {
	ImportPath string
	Directives []Directive
	Malformed  int
}

// PrintVersion implements the -V=full handshake. The buildID must change
// whenever the binary does, or cmd/go's action cache would keep serving
// vet results from an older femtolint; hashing the executable gives that.
// When an audit is in flight the ID is additionally salted with the
// (per-run, unique) audit directory: audit needs every unit to actually
// execute and write its record, so cached vet results must all miss.
func PrintVersion(w io.Writer) error {
	name := "femtolint"
	hash := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			if dir := os.Getenv(AuditEnv); dir != "" {
				sum = sha256.Sum256(append(sum[:], "audit:"+dir...))
			}
			hash = fmt.Sprintf("%x", sum[:12])
			name = filepath.Base(exe)
		}
	}
	_, err := fmt.Fprintf(w, "%s version devel femtolint buildID=%s\n", name, hash)
	return err
}

// RunVetCfg processes one vet.cfg compilation unit, reporting diagnostics
// to stderr. It returns the process exit code: 0 clean, 1 operational
// failure, 2 diagnostics found.
func RunVetCfg(cfgPath string, analyzers []*Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "femtolint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "femtolint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// Gather the facts of every direct import. Each import's vetx already
	// re-exports its own imports' facts, so this merge sees the full
	// transitive closure.
	imports := Facts{}
	vetxPaths := make([]string, 0, len(cfg.PackageVetx))
	for path := range cfg.PackageVetx {
		vetxPaths = append(vetxPaths, path)
	}
	sort.Strings(vetxPaths)
	for _, path := range vetxPaths {
		data, err := os.ReadFile(cfg.PackageVetx[path])
		if err != nil {
			// A missing dependency vetx is not fatal: analysis degrades to
			// intraprocedural for calls into that package.
			continue
		}
		facts, err := DecodeFacts(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "femtolint: vetx for %s: %v\n", path, err)
			return 1
		}
		imports = MergeFacts(imports, facts)
	}

	writeVetx := func(exported PackageFacts) bool {
		if cfg.VetxOutput == "" {
			return true
		}
		out := imports
		if len(exported) > 0 {
			out = MergeFacts(Facts{cfg.ImportPath: exported}, imports)
		}
		data, err := EncodeFacts(out)
		if err == nil {
			err = os.WriteFile(cfg.VetxOutput, data, 0o666)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "femtolint: %v\n", err)
			return false
		}
		return true
	}

	// Standard-library units: re-export imported facts, nothing else.
	// dettaint models stdlib nondeterminism intrinsically (time.Now,
	// math/rand, os.Getenv, GOMAXPROCS, ...); actually scanning stdlib
	// bodies would manufacture useless taint like fmt.Errorf →
	// sync.Pool.Get → runtime.GOMAXPROCS, where the nondeterminism never
	// reaches the returned value. Note vetConfig.Standard only describes
	// the unit's imports, never the unit itself, so stdlib-ness is
	// detected by module: GOROOT packages arrive with no ModulePath.
	if cfg.VetxOnly && isStdlibUnit(&cfg) {
		if !writeVetx(nil) {
			return 1
		}
		return 0
	}

	// For dependency-only units, only fact-bearing analyzers matter.
	if cfg.VetxOnly {
		factful := analyzers[:0:0]
		for _, a := range analyzers {
			if a.HasFacts {
				factful = append(factful, a)
			}
		}
		if len(factful) == 0 {
			if !writeVetx(nil) {
				return 1
			}
			return 0
		}
		analyzers = factful
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx(nil)
				return 0
			}
			fmt.Fprintf(os.Stderr, "femtolint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	tcfg := types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
		Error:     func(error) {}, // collect all; first error returned by Check
	}
	info := NewInfo()
	pkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx(nil)
			return 0
		}
		fmt.Fprintf(os.Stderr, "femtolint: typechecking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	res, err := Run(&Target{Fset: fset, Files: files, Pkg: pkg, Info: info, Imports: imports}, analyzers, !cfg.VetxOnly)
	if err != nil {
		fmt.Fprintf(os.Stderr, "femtolint: %v\n", err)
		return 1
	}
	if !writeVetx(res.Exported) {
		return 1
	}
	if !cfg.VetxOnly {
		if err := writeAuditRecord(&cfg, res); err != nil {
			fmt.Fprintf(os.Stderr, "femtolint: %v\n", err)
			return 1
		}
		for _, d := range res.Diags {
			fmt.Fprintf(os.Stderr, "%s: %s (femtolint/%s)\n", fset.Position(d.Pos), d.Message, d.Analyzer)
		}
		if len(res.Diags) > 0 {
			return 2
		}
	}
	return 0
}

// isStdlibUnit reports whether the unit is a standard-library package:
// no module path (GOROOT packages are moduleless from the vetted
// module's perspective), or sources living under the running toolchain's
// GOROOT.
func isStdlibUnit(cfg *vetConfig) bool {
	if cfg.ModulePath == "" {
		return true
	}
	if len(cfg.GoFiles) > 0 {
		if root := goruntime.GOROOT(); root != "" {
			if rel, err := filepath.Rel(filepath.Join(root, "src"), cfg.GoFiles[0]); err == nil && !strings.HasPrefix(rel, "..") {
				return true
			}
		}
	}
	return false
}

// writeAuditRecord drops this unit's directive inventory into the audit
// directory, if an audit is in flight. Records are keyed by a hash of the
// unit ID because one import path can yield several units (the package
// and its test variants).
func writeAuditRecord(cfg *vetConfig, res *Result) error {
	dir := os.Getenv(AuditEnv)
	if dir == "" {
		return nil
	}
	malformed := 0
	for _, d := range res.Diags {
		if d.Analyzer == driverName {
			malformed++
		}
	}
	rec := AuditRecord{ImportPath: cfg.ImportPath, Directives: res.Directives, Malformed: malformed}
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("audit record for %s: %w", cfg.ImportPath, err)
	}
	sum := sha256.Sum256([]byte(cfg.ID))
	name := filepath.Join(dir, fmt.Sprintf("%x.json", sum[:16]))
	if err := os.WriteFile(name, data, 0o666); err != nil {
		return fmt.Errorf("audit record for %s: %w", cfg.ImportPath, err)
	}
	return nil
}
