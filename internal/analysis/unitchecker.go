package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
)

// This file implements the `go vet -vettool` driver protocol (the role
// x/tools calls a "unitchecker") on the standard library alone:
//
//  1. cmd/go probes `femtolint -V=full` once to obtain a build ID for its
//     action cache; the reply must be `<name> version devel ...
//     buildID=<hex>` (see cmd/go/internal/work/buildid.go, toolID).
//  2. For every package in the build graph cmd/go then invokes
//     `femtolint <objdir>/vet.cfg`, where vet.cfg is a JSON vetConfig
//     describing one compilation unit: its Go files, the export-data file
//     of every dependency, and an output path for "vetx" facts.
//  3. The tool type-checks the unit against the dependencies' export data,
//     runs its analyzers, prints diagnostics to stderr as
//     `file:line:col: message`, writes the (for femtolint: empty) facts
//     file, and exits 2 when it found anything, 0 otherwise.

// vetConfig mirrors cmd/go/internal/work.vetConfig.
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string
	GoVersion     string

	SucceedOnTypecheckFailure bool
}

// PrintVersion implements the -V=full handshake. The buildID must change
// whenever the binary does, or cmd/go's action cache would keep serving
// vet results from an older femtolint; hashing the executable gives that.
func PrintVersion(w io.Writer) error {
	name := "femtolint"
	hash := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			hash = fmt.Sprintf("%x", sum[:12])
			name = filepath.Base(exe)
		}
	}
	_, err := fmt.Fprintf(w, "%s version devel femtolint buildID=%s\n", name, hash)
	return err
}

// RunVetCfg processes one vet.cfg compilation unit, reporting diagnostics
// to stderr. It returns the process exit code: 0 clean, 1 operational
// failure, 2 diagnostics found.
func RunVetCfg(cfgPath string, analyzers []*Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "femtolint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "femtolint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// femtolint keeps no cross-package facts, so the vetx output exists
	// only to satisfy the protocol; cmd/go caches and threads it through
	// PackageVetx, which we never read. Dependency-only units (VetxOnly)
	// therefore need no analysis at all.
	writeVetx := func() bool {
		if cfg.VetxOutput == "" {
			return true
		}
		if err := os.WriteFile(cfg.VetxOutput, []byte("femtolint-no-facts\n"), 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "femtolint: %v\n", err)
			return false
		}
		return true
	}
	if cfg.VetxOnly {
		if !writeVetx() {
			return 1
		}
		return 0
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx()
				return 0
			}
			fmt.Fprintf(os.Stderr, "femtolint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	tcfg := types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
		Error:     func(error) {}, // collect all; first error returned by Check
	}
	info := NewInfo()
	pkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		fmt.Fprintf(os.Stderr, "femtolint: typechecking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	diags, err := Run(&Target{Fset: fset, Files: files, Pkg: pkg, Info: info}, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "femtolint: %v\n", err)
		return 1
	}
	if !writeVetx() {
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s (femtolint/%s)\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
