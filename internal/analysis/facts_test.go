package analysis

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

func sampleFacts() Facts {
	return Facts{
		"femtoverse/internal/core": {
			"dettaint": json.RawMessage(`{"Stamp":{"source":"wall-clock time (time.Now)","path":"time.Now"}}`),
		},
		"femtoverse/internal/hio": {
			"dettaint": json.RawMessage(`{"Save":{"source":"the process environment (os.Getenv)","path":"os.CreateTemp → os.Getenv"}}`),
		},
	}
}

func TestFactsRoundTrip(t *testing.T) {
	in := sampleFacts()
	data, err := EncodeFacts(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeFacts(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip changed facts:\nin:  %v\nout: %v", in, out)
	}
}

// TestEncodeFactsDeterministic matters for cmd/go's content-addressed
// action cache: the same facts must serialize to the same bytes no
// matter what order the maps were built in.
func TestEncodeFactsDeterministic(t *testing.T) {
	a, err := EncodeFacts(sampleFacts())
	if err != nil {
		t.Fatal(err)
	}
	reversed := Facts{}
	for _, p := range []string{"femtoverse/internal/hio", "femtoverse/internal/core"} {
		reversed[p] = sampleFacts()[p]
	}
	b, err := EncodeFacts(reversed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("encoding depends on construction order:\n%s\n%s", a, b)
	}
}

func TestDecodeFactsUnknownSchema(t *testing.T) {
	out, err := DecodeFacts([]byte(`{"schema":"femtolint-facts/v999","facts":{"p":{"x":{}}}}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("unknown schema decoded as %v, want empty facts", out)
	}
	if _, err := DecodeFacts([]byte("not json")); err == nil {
		t.Error("malformed vetx decoded without error")
	}
}

func TestMergeFactsFirstWins(t *testing.T) {
	dst := Facts{"p": {"dettaint": json.RawMessage(`{"A":{}}`)}}
	src := Facts{
		"p": {"dettaint": json.RawMessage(`{"B":{}}`)},
		"q": {"dettaint": json.RawMessage(`{"C":{}}`)},
	}
	got := MergeFacts(dst, src)
	if string(got["p"]["dettaint"]) != `{"A":{}}` {
		t.Errorf("existing entry overwritten: %s", got["p"]["dettaint"])
	}
	if string(got["q"]["dettaint"]) != `{"C":{}}` {
		t.Errorf("new entry not merged: %v", got["q"])
	}
	if paths := FactPackages(got); !reflect.DeepEqual(paths, []string{"p", "q"}) {
		t.Errorf("FactPackages = %v, want [p q]", paths)
	}
}
