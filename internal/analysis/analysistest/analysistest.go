// Package analysistest runs femtolint analyzers over fixture packages and
// checks their diagnostics against expectations embedded in the fixtures,
// mirroring golang.org/x/tools/go/analysis/analysistest on the standard
// library alone.
//
// A fixture directory holds one package's worth of .go files. Expected
// diagnostics are declared with trailing comments:
//
//	rand.Float64() // want "global math/rand"
//
// Each `want "re"` is a regular expression that must match the message of
// exactly one diagnostic reported on that line; diagnostics with no
// matching want, and wants with no matching diagnostic, fail the test.
// Because the driver applies //femtolint:ignore suppression before
// diagnostics reach the harness, fixtures also express "this line is
// suppressed" simply by carrying a directive and no want.
//
// RunWithDeps additionally loads fixture dependency packages first, runs
// the analyzers over them with diagnostics suppressed, and threads the
// facts they export into the target package — the in-process equivalent
// of the vetx flow under `go vet`, used to test interprocedural analyzers
// like dettaint across package boundaries.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"femtoverse/internal/analysis"
)

// sharedFset and sharedImporter are reused across Run calls: the source
// importer re-typechecks imported standard-library packages from GOROOT
// source, which is far too slow to repeat per fixture.
var (
	loadMu         sync.Mutex
	sharedFset     = token.NewFileSet()
	sharedImporter = importer.ForCompiler(sharedFset, "source", nil)
)

// A Dep names one fixture dependency package: the directory holding its
// sources and the import path to load it under. Later deps (and the
// target package) may import earlier ones by that path.
type Dep struct {
	Dir     string
	PkgPath string
}

// fixtureImporter resolves fixture packages loaded earlier in the same
// run and falls back to the source importer for everything else (the
// standard library). This is what lets fixtures import synthetic
// "fixture/internal/..." packages that exist only under testdata.
type fixtureImporter struct {
	pkgs map[string]*types.Package
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if p, ok := fi.pkgs[path]; ok {
		return p, nil
	}
	return sharedImporter.Import(path)
}

// Run loads the fixture package in dir under the package path pkgPath,
// executes the analyzers through the femtolint driver (suppression
// included), and enforces the // want expectations.
//
// pkgPath matters: analyzers such as hotalloc restrict themselves to
// particular import-path suffixes, so a hotalloc fixture should be loaded
// as e.g. "fixture/internal/dirac".
func Run(t *testing.T, dir, pkgPath string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	RunWithDeps(t, dir, pkgPath, nil, analyzers...)
}

// RunWithDeps is Run with fixture dependencies: each dep is loaded and
// analyzed first (its diagnostics discarded, matching VetxOnly units
// under `go vet`), its exported facts are collected, and the target
// package then runs with those facts importable — so a // want in the
// target can assert on taint that originates two fixture packages away.
func RunWithDeps(t *testing.T, dir, pkgPath string, deps []Dep, analyzers ...*analysis.Analyzer) {
	t.Helper()
	loadMu.Lock()
	defer loadMu.Unlock()

	files, res := loadAll(t, dir, pkgPath, deps, analyzers)
	wants := collectWants(t, sharedFset, files)
	for _, d := range res.Diags {
		posn := sharedFset.Position(d.Pos)
		if !consumeWant(wants, posn, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s (%s)", posn, d.Message, d.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re.String())
		}
	}
}

// RunExpectNone loads the fixture like Run but requires the analyzers to
// stay silent, disregarding any // want comments. It exists for fixtures
// that are deliberately re-loaded under a context where an analyzer must
// not fire at all — e.g. the hotalloc fixture under a cold import path.
func RunExpectNone(t *testing.T, dir, pkgPath string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	loadMu.Lock()
	defer loadMu.Unlock()

	_, res := loadAll(t, dir, pkgPath, nil, analyzers)
	for _, d := range res.Diags {
		t.Errorf("%s: unexpected diagnostic: %s (%s)", sharedFset.Position(d.Pos), d.Message, d.Analyzer)
	}
}

// Facts loads the fixture package (and deps) and returns the facts the
// analyzers exported for it, for tests that assert on fact content rather
// than diagnostics.
func Facts(t *testing.T, dir, pkgPath string, deps []Dep, analyzers ...*analysis.Analyzer) analysis.PackageFacts {
	t.Helper()
	loadMu.Lock()
	defer loadMu.Unlock()

	_, res := loadAll(t, dir, pkgPath, deps, analyzers)
	return res.Exported
}

// loadAll loads the dependency chain and then the target package.
// Callers must hold loadMu.
func loadAll(t *testing.T, dir, pkgPath string, deps []Dep, analyzers []*analysis.Analyzer) ([]*ast.File, *analysis.Result) {
	t.Helper()
	fi := &fixtureImporter{pkgs: make(map[string]*types.Package)}
	facts := analysis.Facts{}
	for _, dep := range deps {
		pkg, _, res := load(t, dep.Dir, dep.PkgPath, fi, facts, analyzers, false)
		fi.pkgs[dep.PkgPath] = pkg
		if len(res.Exported) > 0 {
			facts[dep.PkgPath] = res.Exported
		}
	}
	_, files, res := load(t, dir, pkgPath, fi, facts, analyzers, true)
	return files, res
}

// load parses and typechecks one fixture package and runs the analyzers
// through the driver. Callers must hold loadMu.
func load(t *testing.T, dir, pkgPath string, imp types.Importer, facts analysis.Facts, analyzers []*analysis.Analyzer, reportDiags bool) (*types.Package, []*ast.File, *analysis.Result) {
	t.Helper()
	names, err := fixtureFiles(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(sharedFset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		files = append(files, f)
	}

	info := analysis.NewInfo()
	cfg := types.Config{Importer: imp}
	pkg, err := cfg.Check(pkgPath, sharedFset, files, info)
	if err != nil {
		t.Fatalf("analysistest: typechecking %s: %v", dir, err)
	}

	res, err := analysis.Run(&analysis.Target{Fset: sharedFset, Files: files, Pkg: pkg, Info: info, Imports: facts}, analyzers, reportDiags)
	if err != nil {
		t.Fatalf("analysistest: running analyzers on %s: %v", dir, err)
	}
	return pkg, files, res
}

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile(`want\s+(.*)$`)
var quotedRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// collectWants parses `// want "re" ["re" ...]` comments.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want") {
					continue
				}
				m := wantRE.FindStringSubmatch(text)
				if m == nil {
					continue
				}
				posn := fset.Position(c.Pos())
				for _, q := range quotedRE.FindAllStringSubmatch(m[1], -1) {
					re, err := regexp.Compile(q[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", posn, q[1], err)
					}
					wants = append(wants, &want{file: posn.Filename, line: posn.Line, re: re})
				}
			}
		}
	}
	return wants
}

func consumeWant(wants []*want, posn token.Position, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == posn.Filename && w.line == posn.Line && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

func fixtureFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, filepath.Join(dir, e.Name()))
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no fixture .go files in %s", dir)
	}
	sort.Strings(names)
	return names, nil
}
