// Package analysistest runs femtolint analyzers over fixture packages and
// checks their diagnostics against expectations embedded in the fixtures,
// mirroring golang.org/x/tools/go/analysis/analysistest on the standard
// library alone.
//
// A fixture directory holds one package's worth of .go files. Expected
// diagnostics are declared with trailing comments:
//
//	rand.Float64() // want "global math/rand"
//
// Each `want "re"` is a regular expression that must match the message of
// exactly one diagnostic reported on that line; diagnostics with no
// matching want, and wants with no matching diagnostic, fail the test.
// Because the driver applies //femtolint:ignore suppression before
// diagnostics reach the harness, fixtures also express "this line is
// suppressed" simply by carrying a directive and no want.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"femtoverse/internal/analysis"
)

// sharedFset and sharedImporter are reused across Run calls: the source
// importer re-typechecks imported standard-library packages from GOROOT
// source, which is far too slow to repeat per fixture.
var (
	loadMu         sync.Mutex
	sharedFset     = token.NewFileSet()
	sharedImporter = importer.ForCompiler(sharedFset, "source", nil)
)

// Run loads the fixture package in dir under the package path pkgPath,
// executes the analyzers through the femtolint driver (suppression
// included), and enforces the // want expectations.
//
// pkgPath matters: analyzers such as hotalloc restrict themselves to
// particular import-path suffixes, so a hotalloc fixture should be loaded
// as e.g. "fixture/internal/dirac".
func Run(t *testing.T, dir, pkgPath string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	loadMu.Lock()
	defer loadMu.Unlock()

	files, diags := load(t, dir, pkgPath, analyzers)
	wants := collectWants(t, sharedFset, files)
	for _, d := range diags {
		posn := sharedFset.Position(d.Pos)
		if !consumeWant(wants, posn, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s (%s)", posn, d.Message, d.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re.String())
		}
	}
}

// RunExpectNone loads the fixture like Run but requires the analyzers to
// stay silent, disregarding any // want comments. It exists for fixtures
// that are deliberately re-loaded under a context where an analyzer must
// not fire at all — e.g. the hotalloc fixture under a cold import path.
func RunExpectNone(t *testing.T, dir, pkgPath string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	loadMu.Lock()
	defer loadMu.Unlock()

	_, diags := load(t, dir, pkgPath, analyzers)
	for _, d := range diags {
		t.Errorf("%s: unexpected diagnostic: %s (%s)", sharedFset.Position(d.Pos), d.Message, d.Analyzer)
	}
}

// load parses and typechecks the fixture package and runs the analyzers
// through the driver. Callers must hold loadMu.
func load(t *testing.T, dir, pkgPath string, analyzers []*analysis.Analyzer) ([]*ast.File, []analysis.Diagnostic) {
	t.Helper()
	names, err := fixtureFiles(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(sharedFset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		files = append(files, f)
	}

	info := analysis.NewInfo()
	cfg := types.Config{Importer: sharedImporter}
	pkg, err := cfg.Check(pkgPath, sharedFset, files, info)
	if err != nil {
		t.Fatalf("analysistest: typechecking %s: %v", dir, err)
	}

	diags, err := analysis.Run(&analysis.Target{Fset: sharedFset, Files: files, Pkg: pkg, Info: info}, analyzers)
	if err != nil {
		t.Fatalf("analysistest: running analyzers on %s: %v", dir, err)
	}
	return files, diags
}

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile(`want\s+(.*)$`)
var quotedRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// collectWants parses `// want "re" ["re" ...]` comments.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want") {
					continue
				}
				m := wantRE.FindStringSubmatch(text)
				if m == nil {
					continue
				}
				posn := fset.Position(c.Pos())
				for _, q := range quotedRE.FindAllStringSubmatch(m[1], -1) {
					re, err := regexp.Compile(q[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", posn, q[1], err)
					}
					wants = append(wants, &want{file: posn.Filename, line: posn.Line, re: re})
				}
			}
		}
	}
	return wants
}

func consumeWant(wants []*want, posn token.Position, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == posn.Filename && w.line == posn.Line && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

func fixtureFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, filepath.Join(dir, e.Name()))
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no fixture .go files in %s", dir)
	}
	sort.Strings(names)
	return names, nil
}
