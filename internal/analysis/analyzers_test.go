package analysis_test

import (
	"testing"

	"femtoverse/internal/analysis"
	"femtoverse/internal/analysis/analysistest"
)

// Each fixture package holds positive hits (// want lines), clean idioms
// the analyzer must exempt, and a //femtolint:ignore suppression whose
// line carries no want — so a suppression failure shows up as an
// unexpected diagnostic.

func TestCtxCancel(t *testing.T) {
	analysistest.Run(t, "testdata/ctxcancel", "fixture/ctxcancel", analysis.CtxCancel)
}

func TestDetRange(t *testing.T) {
	analysistest.Run(t, "testdata/detrange", "fixture/detrange", analysis.DetRange)
}

func TestGlobalRand(t *testing.T) {
	analysistest.Run(t, "testdata/globalrand", "fixture/globalrand", analysis.GlobalRand)
}

func TestErrDrop(t *testing.T) {
	analysistest.Run(t, "testdata/errdrop", "fixture/errdrop", analysis.ErrDrop)
}

// TestHotAlloc loads the fixture under an import path with a hot suffix;
// TestHotAllocColdPackage re-loads the identical file under a cold path,
// where the analyzer must not fire at all.

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, "testdata/hotalloc", "fixture/internal/dirac", analysis.HotAlloc)
}

func TestHotAllocColdPackage(t *testing.T) {
	analysistest.RunExpectNone(t, "testdata/hotalloc", "fixture/coldpath", analysis.HotAlloc)
}

// TestAllOnCleanFixtures cross-checks that no analyzer fires on another
// analyzer's clean cases beyond what its own want lines declare — i.e.
// the full battery agrees with the per-analyzer expectations on the
// globalrand fixture, whose wants all belong to globalrand.
func TestAllOnGlobalRandFixture(t *testing.T) {
	analysistest.Run(t, "testdata/globalrand", "fixture/globalrand", analysis.All()...)
}
