package analysis_test

import (
	"encoding/json"
	"strings"
	"testing"

	"femtoverse/internal/analysis"
	"femtoverse/internal/analysis/analysistest"
)

// Each fixture package holds positive hits (// want lines), clean idioms
// the analyzer must exempt, and a //femtolint:ignore suppression whose
// line carries no want — so a suppression failure shows up as an
// unexpected diagnostic.

func TestCtxCancel(t *testing.T) {
	analysistest.Run(t, "testdata/ctxcancel", "fixture/ctxcancel", analysis.CtxCancel)
}

func TestDetRange(t *testing.T) {
	analysistest.Run(t, "testdata/detrange", "fixture/detrange", analysis.DetRange)
}

func TestGlobalRand(t *testing.T) {
	analysistest.Run(t, "testdata/globalrand", "fixture/globalrand", analysis.GlobalRand)
}

func TestErrDrop(t *testing.T) {
	analysistest.Run(t, "testdata/errdrop", "fixture/errdrop", analysis.ErrDrop)
}

// TestHotAlloc loads the fixture under an import path with a hot suffix;
// TestHotAllocColdPackage re-loads the identical file under a cold path,
// where the analyzer must not fire at all.

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, "testdata/hotalloc", "fixture/internal/dirac", analysis.HotAlloc)
}

func TestHotAllocColdPackage(t *testing.T) {
	analysistest.RunExpectNone(t, "testdata/hotalloc", "fixture/coldpath", analysis.HotAlloc)
}

// TestAllOnCleanFixtures cross-checks that no analyzer fires on another
// analyzer's clean cases beyond what its own want lines declare — i.e.
// the full battery agrees with the per-analyzer expectations on the
// globalrand fixture, whose wants all belong to globalrand.
func TestAllOnGlobalRandFixture(t *testing.T) {
	analysistest.Run(t, "testdata/globalrand", "fixture/globalrand", analysis.All()...)
}

// TestDetTaint is the cross-package fact-propagation fixture: the
// fixture/clockdep dependency is analyzed first, its taint facts flow
// into the target package (loaded under a root path), and wants in the
// target assert on diagnostics that originate one and two calls away in
// the dependency.
func TestDetTaint(t *testing.T) {
	deps := []analysistest.Dep{{Dir: "testdata/deps/clockdep", PkgPath: "fixture/clockdep"}}
	analysistest.RunWithDeps(t, "testdata/dettaint", "fixture/internal/solver", deps, analysis.DetTaint)
}

// TestDetTaintKeyBuilderRoots exercises the root rule that follows cache
// key construction into any package: only KeyBuilder users are reported,
// the rest of the (non-root) package stays silent even when tainted.
func TestDetTaintKeyBuilderRoots(t *testing.T) {
	deps := []analysistest.Dep{{Dir: "testdata/deps/cache", PkgPath: "fixture/internal/cache"}}
	analysistest.RunWithDeps(t, "testdata/dettaintkeys", "fixture/workflow", deps, analysis.DetTaint)
}

// TestDetTaintJournalRoots exercises the internal/core root rule: Journal
// methods and Record/Payload-named functions only.
func TestDetTaintJournalRoots(t *testing.T) {
	analysistest.Run(t, "testdata/dettaintcore", "fixture/internal/core", analysis.DetTaint)
}

// TestDetTaintFactContent asserts on the exported fact itself — the data
// that crosses package boundaries through vetx files — rather than on
// diagnostics: tainted functions carry their source and call path,
// exempt ones are absent.
func TestDetTaintFactContent(t *testing.T) {
	facts := analysistest.Facts(t, "testdata/deps/clockdep", "fixture/clockdep", nil, analysis.DetTaint)
	raw, ok := facts["dettaint"]
	if !ok {
		t.Fatalf("no dettaint fact exported; got %v", facts)
	}
	var fact map[string]struct {
		Source string `json:"source"`
		Path   string `json:"path"`
	}
	if err := json.Unmarshal(raw, &fact); err != nil {
		t.Fatalf("decoding dettaint fact: %v", err)
	}
	if ti := fact["Stamp"]; ti.Path != "time.Now" || !strings.Contains(ti.Source, "wall-clock") {
		t.Errorf("Stamp fact = %+v, want a wall-clock source with path time.Now", ti)
	}
	if ti := fact["Indirect"]; ti.Path != "Stamp → time.Now" {
		t.Errorf("Indirect fact path = %q, want the transitive chain through Stamp", ti.Path)
	}
	if _, tainted := fact["Elapsed"]; tainted {
		t.Error("Elapsed is the measured-timing idiom and must not be tainted")
	}
}

func TestSpanEnd(t *testing.T) {
	deps := []analysistest.Dep{{Dir: "testdata/deps/obs", PkgPath: "fixture/internal/obs"}}
	analysistest.RunWithDeps(t, "testdata/spanend", "fixture/tracer", deps, analysis.SpanEnd)
}

func TestLockHold(t *testing.T) {
	deps := []analysistest.Dep{{Dir: "testdata/deps/cache", PkgPath: "fixture/internal/cache"}}
	analysistest.RunWithDeps(t, "testdata/lockhold", "fixture/internal/runtime", deps, analysis.LockHold)
}

// TestLockHoldFileIOScope loads the same file-write-under-mutex fixture
// under an autotune path (where it is the convoy bug) and a neutral path
// (where core-journal-style serialized writes are the intended design).
func TestLockHoldFileIOScope(t *testing.T) {
	analysistest.Run(t, "testdata/lockholdio", "fixture/internal/autotune", analysis.LockHold)
	analysistest.RunExpectNone(t, "testdata/lockholdio", "fixture/journalish", analysis.LockHold)
}
