package analysis_test

import (
	"encoding/json"
	"testing"

	"femtoverse/internal/analysis"
	"femtoverse/internal/analysis/analysistest"
)

func TestDetTaintAnyFieldTmp(t *testing.T) {
	facts := analysistest.Facts(t, "testdata/tmpspan", "fixture/tmpspan", nil, analysis.DetTaint)
	raw := facts["fixture/tmpspan"][analysis.DetTaint.Name]
	var fact map[string]any
	_ = json.Unmarshal(raw, &fact)
	if _, ok := fact["Payload"]; !ok {
		t.Errorf("Payload not tainted; fact = %s", raw)
	}
}
