package analysis_test

import (
	"encoding/json"
	"testing"

	"femtoverse/internal/analysis"
	"femtoverse/internal/analysis/analysistest"
)

func TestDetTaintAnyFieldTmp(t *testing.T) {
	deps := []analysistest.Dep{{Dir: "testdata/deps/obs", PkgPath: "fixture/internal/obs"}}
	facts := analysistest.Facts(t, "testdata/tmpspan", "fixture/tmpspan", deps, analysis.DetTaint)
	raw, ok := facts[analysis.DetTaint.Name]
	if !ok {
		t.Fatalf("no %s fact exported; got %v", analysis.DetTaint.Name, facts)
	}
	var fact map[string]any
	if err := json.Unmarshal(raw, &fact); err != nil {
		t.Fatalf("decoding %s fact: %v", analysis.DetTaint.Name, err)
	}
	if _, ok := fact["Payload"]; !ok {
		t.Errorf("Payload not tainted; fact = %s", raw)
	}
}
