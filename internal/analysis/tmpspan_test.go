package analysis_test

import (
	"testing"

	"femtoverse/internal/analysis"
	"femtoverse/internal/analysis/analysistest"
)

func TestSpanEndSwitchTmp(t *testing.T) {
	deps := []analysistest.Dep{{Dir: "testdata/deps/obs", PkgPath: "fixture/internal/obs"}}
	analysistest.RunWithDeps(t, "testdata/tmpspan", "fixture/tmpspan", deps, analysis.SpanEnd)
}
