package analysis_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"femtoverse/internal/analysis"
)

// This file exercises the real `go vet -vettool` handshake end to end:
// femtolint is built as a binary, pointed at a throwaway module that
// exists only inside t.TempDir(), and must produce the cross-package
// dettaint diagnostic through cmd/go's actual vet.cfg/vetx plumbing —
// the handshake (-V=full), unit scheduling, fact files, exit codes and
// all. A second test drives the binary against hand-built vet.cfg files
// to pin down the fact round trip itself, and a third covers -audit.

// buildFemtolint compiles cmd/femtolint into dir and returns the binary
// path. Module root is two levels up from this package.
func buildFemtolint(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "femtolint.bin")
	cmd := exec.Command("go", "build", "-o", bin, "femtoverse/cmd/femtolint")
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building femtolint: %v\n%s", err, out)
	}
	return bin
}

// writeThrowawayModule lays out a module with a nondeterministic leaf
// package, a determinism-critical root (by the internal/linalg path
// rule) that reaches it only across the package boundary, and a package
// carrying one used and one stale suppression directive for the audit
// test.
func writeThrowawayModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module throwaway\n\ngo 1.22\n",
		"internal/clockdep/clockdep.go": `package clockdep

import "time"

// Stamp is tainted: an absolute wall-clock read.
func Stamp() int64 { return time.Now().UnixNano() }
`,
		"internal/linalg/kernel.go": `package linalg

import "throwaway/internal/clockdep"

// Seed reaches the wall clock only through the imported package, so the
// diagnostic requires clockdep's facts to arrive via its vetx file.
func Seed() int64 { return clockdep.Stamp() }
`,
		"internal/misc/misc.go": `package misc

import "math/rand"

//femtolint:ignore globalrand e2e fixture: draw is statistical only
func Draw() float64 { return rand.Float64() }

//femtolint:ignore errdrop left behind after a refactor (stale on purpose)
func Clean() int { return 1 }
`,
	}
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// run executes bin with args in dir, returning exit code and combined
// output. GOWORK is forced off so an ambient workspace cannot absorb the
// throwaway module.
func runTool(t *testing.T, dir, bin string, args ...string) (int, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOWORK=off")
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("running %s: %v\n%s", bin, err, buf.String())
		}
		code = ee.ExitCode()
	}
	return code, buf.String()
}

func TestVettoolHandshakeE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and runs go vet")
	}
	scratch := t.TempDir()
	bin := buildFemtolint(t, scratch)
	mod := writeThrowawayModule(t)

	// The -V=full handshake must advertise a build ID.
	code, out := runTool(t, mod, bin, "-V=full")
	if code != 0 || !strings.Contains(out, "buildID=") {
		t.Fatalf("-V=full handshake: exit %d, output %q", code, out)
	}

	// femtolint itself exits 2 on diagnostics (asserted directly in
	// TestVetCfgFactRoundTrip); cmd/go folds any failing vet unit into its
	// own exit 1.
	code, out = runTool(t, mod, "go", "vet", "-vettool="+bin, "./...")
	if code == 0 {
		t.Fatalf("go vet exit = 0, want failure (diagnostics found)\n%s", out)
	}
	if !strings.Contains(out, "calls clockdep.Stamp, which transitively reads wall-clock time") {
		t.Errorf("missing cross-package dettaint diagnostic in:\n%s", out)
	}
	if !strings.Contains(out, "(femtolint/dettaint)") {
		t.Errorf("diagnostic not attributed to dettaint in:\n%s", out)
	}
	if strings.Contains(out, "Draw") || strings.Contains(out, "globalrand") {
		t.Errorf("suppressed globalrand diagnostic leaked through:\n%s", out)
	}
}

func TestVettoolAuditE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and runs go vet")
	}
	scratch := t.TempDir()
	bin := buildFemtolint(t, scratch)
	mod := writeThrowawayModule(t)

	// vet itself exits 2 here (the dettaint finding), so assert on the
	// audit report and the overall failure, not a specific code.
	code, out := runTool(t, mod, bin, "-audit", "-budget=2", "./...")
	if code == 0 {
		t.Fatalf("audit exit = 0, want failure\n%s", out)
	}
	if !strings.Contains(out, "2 suppression directive(s) in non-test files (budget 2)") {
		t.Errorf("missing budget summary in:\n%s", out)
	}
	if !strings.Contains(out, "globalrand (used 1×)") {
		t.Errorf("used directive not counted as used in:\n%s", out)
	}
	if !strings.Contains(out, "errdrop (STALE)") || !strings.Contains(out, "stale directive") {
		t.Errorf("stale directive not flagged in:\n%s", out)
	}
	if !strings.Contains(out, "misc.go:5") || !strings.Contains(out, "misc.go:8") {
		t.Errorf("directive positions missing from report:\n%s", out)
	}

	// Budget accounting: with the budget below the directive count the
	// report must carry the exceeded line too.
	_, out = runTool(t, mod, bin, "-audit", "-budget=1", "./...")
	if !strings.Contains(out, "suppression budget exceeded: 2 > 1") {
		t.Errorf("missing budget-exceeded failure in:\n%s", out)
	}
}

// TestVetCfgFactRoundTrip drives femtolint against hand-built vet.cfg
// units — the exact JSON cmd/go feeds the tool — to pin the fact round
// trip: the dependency unit runs VetxOnly and writes a vetx file whose
// decoded facts carry the taint, and the root unit imports that file and
// turns it into a diagnostic.
func TestVetCfgFactRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and compiles export data")
	}
	scratch := t.TempDir()
	bin := buildFemtolint(t, scratch)
	mod := writeThrowawayModule(t)

	// Export data for every package in the build graph, via go list.
	exports := map[string]string{}
	cmd := exec.Command("go", "list", "-export", "-deps", "-f", "{{.ImportPath}}\x01{{.Export}}", "./...")
	cmd.Dir = mod
	cmd.Env = append(os.Environ(), "GOWORK=off")
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("go list -export: %v", err)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		path, export, ok := strings.Cut(line, "\x01")
		if ok && export != "" {
			exports[path] = export
		}
	}
	for _, need := range []string{"time", "throwaway/internal/clockdep"} {
		if exports[need] == "" {
			t.Fatalf("no export data for %s in %v", need, exports)
		}
	}
	importMap := map[string]string{}
	for path := range exports {
		importMap[path] = path
	}

	runCfg := func(name string, cfg map[string]any) (int, string) {
		data, err := json.Marshal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(scratch, name+".cfg")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return runTool(t, mod, bin, path)
	}

	// Unit 1: the dependency, facts only.
	depVetx := filepath.Join(scratch, "clockdep.vetx")
	code, cfgOut := runCfg("clockdep", map[string]any{
		"ID":          "throwaway/internal/clockdep",
		"Compiler":    "gc",
		"Dir":         mod,
		"ImportPath":  "throwaway/internal/clockdep",
		"GoFiles":     []string{filepath.Join(mod, "internal/clockdep/clockdep.go")},
		"ModulePath":  "throwaway",
		"ImportMap":   importMap,
		"PackageFile": exports,
		"VetxOnly":    true,
		"VetxOutput":  depVetx,
	})
	if code != 0 {
		t.Fatalf("dependency unit exit = %d\n%s", code, cfgOut)
	}
	raw, err := os.ReadFile(depVetx)
	if err != nil {
		t.Fatalf("dependency unit wrote no vetx file: %v", err)
	}
	facts, err := analysis.DecodeFacts(raw)
	if err != nil {
		t.Fatal(err)
	}
	pf, ok := facts["throwaway/internal/clockdep"]
	if !ok {
		t.Fatalf("vetx carries no facts for clockdep: %s", raw)
	}
	if !strings.Contains(string(pf["dettaint"]), "Stamp") {
		t.Errorf("dettaint fact missing Stamp: %s", pf["dettaint"])
	}

	// Unit 2: the root, importing the dependency's facts.
	code, cfgOut = runCfg("linalg", map[string]any{
		"ID":          "throwaway/internal/linalg",
		"Compiler":    "gc",
		"Dir":         mod,
		"ImportPath":  "throwaway/internal/linalg",
		"GoFiles":     []string{filepath.Join(mod, "internal/linalg/kernel.go")},
		"ModulePath":  "throwaway",
		"ImportMap":   importMap,
		"PackageFile": exports,
		"PackageVetx": map[string]string{"throwaway/internal/clockdep": depVetx},
		"VetxOutput":  filepath.Join(scratch, "linalg.vetx"),
	})
	if code != 2 {
		t.Fatalf("root unit exit = %d, want 2\n%s", code, cfgOut)
	}
	want := fmt.Sprintf("determinism-critical function %s calls clockdep.Stamp, which transitively reads wall-clock time", "Seed")
	if !strings.Contains(cfgOut, want) {
		t.Errorf("root unit output missing %q:\n%s", want, cfgOut)
	}
	if !strings.Contains(cfgOut, "path: clockdep.Stamp → time.Now") {
		t.Errorf("diagnostic does not carry the cross-package call path:\n%s", cfgOut)
	}
}
