package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SpanEnd enforces the obs tracing contract: every span opened with
// Scope.Begin must be ended on all paths, or the trace silently loses the
// lane and utilization timelines under-report the very phases being
// debugged. The analysis mirrors the shape of x/tools' lostcancel:
//
//   - a Begin whose result is discarded (expression statement or `_ =`)
//     can never be ended and is always reported;
//   - a Begin assigned to a local variable is satisfied by a
//     `defer span.End()` / `defer span.EndWith(...)` (directly or inside
//     a deferred closure), the dominant in-tree idiom;
//   - otherwise every return reachable while the span is live, and the
//     fall-off of the span's declaration block, must be preceded by an
//     End/EndWith that structurally dominates it (same statement list,
//     earlier index, possibly at an outer nesting level);
//   - panics, os.Exit and log.Fatal* terminate the process — the trace is
//     lost wholesale anyway — so paths into them are not exits;
//   - a Begin assigned through anything but a local variable (an outer
//     captured variable, a struct field) is skipped: the span's lifetime
//     intentionally outlives the function, as in the solver's
//     beginBlock/endBlock closure pair.
var SpanEnd = &Analyzer{
	Name: "spanend",
	Doc:  "every obs span opened with Scope.Begin must be ended on all paths (defer End, or End before every return)",
	Run:  runSpanEnd,
}

func runSpanEnd(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				spanEndCheckFunc(pass, body)
			}
			return true
		})
	}
	return nil
}

// isScopeBeginCall reports whether call is obs Scope.Begin (receiver is a
// named type Scope, possibly behind a pointer, declared in a package with
// import-path suffix internal/obs).
func isScopeBeginCall(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Name() != "Begin" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Scope" && obj.Pkg() != nil && hasPkgSuffix(obj.Pkg().Path(), "internal/obs")
}

// spanEndCheckFunc finds Begin calls whose span is opened in this
// function body (nested function literals are checked on their own).
func spanEndCheckFunc(pass *Pass, funcBody *ast.BlockStmt) {
	var walkStmts func(stmts []ast.Stmt)
	var walkStmt func(s ast.Stmt)
	walkStmt = func(s ast.Stmt) {
		switch st := s.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok && isScopeBeginCall(pass, call) {
				pass.Reportf(call.Pos(), "result of Begin is discarded: the span can never be ended and its trace lane is lost")
			}
		case *ast.AssignStmt:
			spanEndCheckAssign(pass, st, funcBody)
		case *ast.BlockStmt:
			walkStmts(st.List)
		case *ast.IfStmt:
			if st.Init != nil {
				walkStmt(st.Init)
			}
			walkStmts(st.Body.List)
			if st.Else != nil {
				walkStmt(st.Else)
			}
		case *ast.ForStmt:
			if st.Init != nil {
				walkStmt(st.Init)
			}
			walkStmts(st.Body.List)
		case *ast.RangeStmt:
			walkStmts(st.Body.List)
		case *ast.SwitchStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkStmts(cc.Body)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkStmts(cc.Body)
				}
			}
		case *ast.SelectStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					walkStmts(cc.Body)
				}
			}
		case *ast.LabeledStmt:
			walkStmt(st.Stmt)
		}
	}
	walkStmts = func(stmts []ast.Stmt) {
		for _, s := range stmts {
			walkStmt(s)
		}
	}
	walkStmts(funcBody.List)
}

// spanEndCheckAssign handles `v := sc.Begin(...)` / `v = sc.Begin(...)`.
func spanEndCheckAssign(pass *Pass, st *ast.AssignStmt, funcBody *ast.BlockStmt) {
	for i, rhs := range st.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !isScopeBeginCall(pass, call) || i >= len(st.Lhs) {
			continue
		}
		lhs := ast.Unparen(st.Lhs[i])
		id, ok := lhs.(*ast.Ident)
		if !ok {
			// Field or index target: the span outlives the statement in
			// ways this analysis cannot follow; skip.
			continue
		}
		if id.Name == "_" {
			pass.Reportf(call.Pos(), "result of Begin is discarded: the span can never be ended and its trace lane is lost")
			continue
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj == nil {
			continue
		}
		if obj.Pos() < funcBody.Pos() || obj.Pos() > funcBody.End() {
			// Captured outer variable (the beginBlock/endBlock closure
			// idiom): lifetime managed outside this function.
			continue
		}
		if spanDeferEnds(pass, obj, st.Pos(), funcBody) {
			continue
		}
		spanEndCheckPaths(pass, call, obj, st, funcBody)
	}
}

// spanDeferEnds reports whether a defer after the span's creation ends it:
// `defer v.End()`, `defer v.EndWith(...)`, or a deferred closure whose
// body calls either.
func spanDeferEnds(pass *Pass, obj types.Object, after token.Pos, funcBody *ast.BlockStmt) bool {
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		d, ok := n.(*ast.DeferStmt)
		if !ok || d.Pos() < after {
			return true
		}
		if isSpanEndCallOn(pass, d.Call, obj) {
			found = true
			return false
		}
		if fl, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(fl.Body, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok && isSpanEndCallOn(pass, call, obj) {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// isSpanEndCallOn reports whether call is v.End(...) or v.EndWith(...)
// for the span variable obj.
func isSpanEndCallOn(pass *Pass, call *ast.CallExpr, obj types.Object) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "End" && sel.Sel.Name != "EndWith") {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && pass.TypesInfo.Uses[id] == obj
}

// stmtChain is the path from the function body down to a node: the blocks
// entered and the statement index taken within each.
type stmtChain []struct {
	list []ast.Stmt
	idx  int
}

// chainTo computes the stmtChain from funcBody to target (a node whose
// Pos/End bracket it), or nil if target is not found outside nested
// function literals.
func chainTo(funcBody *ast.BlockStmt, target ast.Node) stmtChain {
	var chain stmtChain
	var search func(list []ast.Stmt) bool
	search = func(list []ast.Stmt) bool {
		for i, s := range list {
			if target.Pos() < s.Pos() || target.End() > s.End() {
				continue
			}
			chain = append(chain, struct {
				list []ast.Stmt
				idx  int
			}{list, i})
			// Descend into the statement's nested statement lists.
			found := s == target || (s.Pos() == target.Pos() && s.End() == target.End())
			if found {
				return true
			}
			descended := false
			ast.Inspect(s, func(n ast.Node) bool {
				if descended || n == nil {
					return false
				}
				// Case and comm clause bodies are bare statement lists, not
				// BlockStmts; descend into them too or an End inside a
				// switch case could never dominate the return after it.
				var nested []ast.Stmt
				switch nn := n.(type) {
				case *ast.FuncLit:
					return false
				case *ast.BlockStmt:
					if nn == s {
						return true
					}
					nested = nn.List
				case *ast.CaseClause:
					nested = nn.Body
				case *ast.CommClause:
					nested = nn.Body
				default:
					return true
				}
				if n.Pos() <= target.Pos() && target.End() <= n.End() {
					if search(nested) {
						descended = true
					}
					return false
				}
				return true
			})
			return true
		}
		return false
	}
	search(funcBody.List)
	return chain
}

// dominates reports whether the statement at endChain structurally
// precedes the one at exitChain: endChain's innermost statement list is a
// prefix level of exitChain's path, with a smaller index at that level.
// Executing down to the exit then necessarily passed the end statement.
func dominates(endChain, exitChain stmtChain) bool {
	if len(endChain) == 0 || len(exitChain) == 0 {
		return false
	}
	last := len(endChain) - 1
	for level := 0; level < len(exitChain); level++ {
		if level > last {
			return false
		}
		sameList := sameStmtList(endChain[level].list, exitChain[level].list)
		if !sameList {
			return false
		}
		if level == last {
			return endChain[level].idx < exitChain[level].idx
		}
		if endChain[level].idx != exitChain[level].idx {
			return false
		}
	}
	return false
}

func sameStmtList(a, b []ast.Stmt) bool {
	if len(a) != len(b) {
		return false
	}
	return len(a) == 0 || a[0] == b[0]
}

// spanEndCheckPaths performs the structural all-paths check for a span
// with no covering defer.
func spanEndCheckPaths(pass *Pass, begin *ast.CallExpr, obj types.Object, assign *ast.AssignStmt, funcBody *ast.BlockStmt) {
	assignChain := chainTo(funcBody, assign)
	if len(assignChain) == 0 {
		return
	}
	declLevel := len(assignChain) - 1
	declList := assignChain[declLevel].list
	declIdx := assignChain[declLevel].idx

	// Collect non-deferred End/EndWith statements after the assignment.
	var endChains []stmtChain
	endsAtDeclLevel := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if _, ok := n.(*ast.DeferStmt); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < assign.End() || !isSpanEndCallOn(pass, call, obj) {
			return true
		}
		ch := chainTo(funcBody, call)
		if len(ch) == 0 {
			return true
		}
		endChains = append(endChains, ch)
		// An End whose own statement sits directly in the declaration
		// list covers the fall-off of that list.
		if len(ch) == declLevel+1 && sameStmtList(ch[declLevel].list, declList) && ch[declLevel].idx > declIdx {
			endsAtDeclLevel = true
		}
		return true
	})

	// Exits: every return inside the declaration list's subtree after the
	// assignment.
	covered := func(exit ast.Node) bool {
		exitChain := chainTo(funcBody, exit)
		for _, ec := range endChains {
			if dominates(ec, exitChain) {
				return true
			}
		}
		return false
	}
	for i := declIdx + 1; i < len(declList); i++ {
		ast.Inspect(declList[i], func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return true
			}
			if !covered(ret) {
				pass.Reportf(begin.Pos(),
					"span %s is not ended on the path returning at line %d; defer %s.End() or end it before every return",
					obj.Name(), pass.Fset.Position(ret.Pos()).Line, obj.Name())
			}
			return true
		})
	}

	// Fall-off: reaching the end of the declaration list with the span
	// still open. Suppressed when an End sits directly in that list after
	// the assignment, or when the list cannot complete normally.
	if !endsAtDeclLevel && !stmtListTerminates(declList[declIdx+1:]) {
		pass.Reportf(begin.Pos(),
			"span %s may leave its scope without End; defer %s.End() or end it at the end of the block",
			obj.Name(), obj.Name())
	}
}

// stmtListTerminates reports whether executing stmts cannot complete
// normally: the list ends in a return, a process terminator (panic,
// os.Exit, log.Fatal*, runtime.Goexit), an infinite for, or an
// if/else or switch all of whose branches terminate. This is a pared-down
// version of go/types' "terminating statement" (spec §Terminating
// statements), enough for the shapes the tree uses.
func stmtListTerminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	return stmtTerminates(stmts[len(stmts)-1])
}

func stmtTerminates(s ast.Stmt) bool {
	switch st := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return st.Tok == token.GOTO
	case *ast.ExprStmt:
		call, ok := ast.Unparen(st.X).(*ast.CallExpr)
		return ok && isTerminatorCall(call)
	case *ast.BlockStmt:
		return stmtListTerminates(st.List)
	case *ast.IfStmt:
		if st.Else == nil {
			return false
		}
		return stmtListTerminates(st.Body.List) && stmtTerminates(st.Else)
	case *ast.ForStmt:
		return st.Cond == nil
	case *ast.LabeledStmt:
		return stmtTerminates(st.Stmt)
	case *ast.SwitchStmt:
		return switchTerminates(st.Body)
	case *ast.TypeSwitchStmt:
		return switchTerminates(st.Body)
	}
	return false
}

func switchTerminates(body *ast.BlockStmt) bool {
	hasDefault := false
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			return false
		}
		if cc.List == nil {
			hasDefault = true
		}
		if !stmtListTerminates(cc.Body) {
			return false
		}
	}
	return hasDefault
}

// isTerminatorCall reports whether call never returns: panic, os.Exit,
// runtime.Goexit, log.Fatal / log.Fatalf / log.Fatalln, or the testing
// Fatal family.
func isTerminatorCall(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		if pkg, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			switch {
			case pkg.Name == "os" && name == "Exit":
				return true
			case pkg.Name == "runtime" && name == "Goexit":
				return true
			case pkg.Name == "log" && (name == "Fatal" || name == "Fatalf" || name == "Fatalln"):
				return true
			}
		}
		return name == "Fatal" || name == "Fatalf" || name == "FailNow"
	}
	return false
}
