package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// A Target is one fully type-checked package, however it was loaded (from
// export data under `go vet -vettool`, or from source in tests).
type Target struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// NewInfo returns a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Run executes the analyzers over the target, applies femtolint:ignore
// suppressions, and returns the surviving diagnostics in file/line order.
func Run(t *Target, analyzers []*Analyzer) ([]Diagnostic, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	directives, diags := collectIgnores(t.Fset, t.Files, known)

	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      t.Fset,
			Files:     t.Files,
			Pkg:       t.Pkg,
			TypesInfo: t.Info,
		}
		pass.report = func(d Diagnostic) {
			if !suppressed(t.Fset, d, directives) {
				diags = append(diags, d)
			}
		}
		if err := a.Run(pass); err != nil {
			return nil, err
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		pi, pj := t.Fset.Position(diags[i].Pos), t.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}
