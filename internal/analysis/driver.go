package analysis

import (
	"encoding/json"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// A Target is one fully type-checked package, however it was loaded (from
// export data under `go vet -vettool`, or from source in tests).
type Target struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	// Imports carries the facts exported for this package's dependencies
	// (and, transitively, theirs — see MergeFacts). Nil is fine for
	// fact-free runs.
	Imports Facts
}

// NewInfo returns a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// A Directive is one well-formed //femtolint:ignore suppression, exposed
// so the -audit mode can enforce the budget and detect stale entries.
type Directive struct {
	File     string
	Line     int
	Col      int
	Analyzer string
	// Used counts the diagnostics this directive suppressed in the run
	// that produced it; a used count of zero in a full run means the
	// directive is stale — the diagnostic it once silenced no longer
	// fires.
	Used int
}

// A Result bundles everything one driver run produces.
type Result struct {
	// Diags are the surviving diagnostics in file/line order.
	Diags []Diagnostic
	// Exported maps analyzer name -> the fact it exported for this
	// package, ready for the vetx file.
	Exported PackageFacts
	// Directives are the package's well-formed suppression directives
	// with their usage counts.
	Directives []Directive
}

// Run executes the analyzers over the target, applies femtolint:ignore
// suppressions, and returns the surviving diagnostics in file/line order
// along with exported facts and directive usage.
//
// reportDiags controls whether analyzer diagnostics are collected at all:
// dependency-only (VetxOnly) units run fact-bearing analyzers purely for
// their exports, and their diagnostics — which the listed packages' own
// units will re-derive — are discarded. Malformed-directive diagnostics
// are always collected: a broken suppression must surface somewhere.
func Run(t *Target, analyzers []*Analyzer, reportDiags bool) (*Result, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	directives, diags := collectIgnores(t.Fset, t.Files, known)

	res := &Result{Exported: PackageFacts{}}
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      t.Fset,
			Files:     t.Files,
			Pkg:       t.Pkg,
			TypesInfo: t.Info,
			imports:   t.Imports,
		}
		name := a.Name
		pass.exportFact = func(raw json.RawMessage) { res.Exported[name] = raw }
		pass.report = func(d Diagnostic) {
			if dir := suppressedBy(t.Fset, d, directives); dir != nil {
				dir.used++
				return
			}
			if reportDiags {
				diags = append(diags, d)
			}
		}
		if err := a.Run(pass); err != nil {
			return nil, err
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		pi, pj := t.Fset.Position(diags[i].Pos), t.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	res.Diags = diags

	for _, dir := range directives {
		posn := t.Fset.Position(dir.pos)
		res.Directives = append(res.Directives, Directive{
			File: dir.file, Line: dir.line, Col: posn.Column,
			Analyzer: dir.analyzer, Used: dir.used,
		})
	}
	sort.Slice(res.Directives, func(i, j int) bool {
		di, dj := res.Directives[i], res.Directives[j]
		if di.File != dj.File {
			return di.File < dj.File
		}
		return di.Line < dj.Line
	})
	return res, nil
}
