package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// DetTaint is the interprocedural determinism-taint analysis. It computes,
// for every function in the package, whether the function transitively
// reads a nondeterministic input:
//
//   - wall-clock time (time.Now called, or time.Now used as a value),
//     except in the measured-timing idiom — see detTaintExemptCalls;
//   - the global math/rand source (the seeded-*rand.Rand discipline is
//     globalrand's job; dettaint only cares that global draws taint
//     callers);
//   - map iteration order that escapes the loop (an order-sensitive sink,
//     or a return from inside a map range);
//   - runtime.GOMAXPROCS / runtime.NumCPU;
//   - the process environment (os.Getenv and friends).
//
// The per-function taint is exported as a package fact, so the analysis
// crosses package boundaries: a unit importing a tainted package learns
// which of its functions are tainted and why (the call path back to the
// source). Diagnostics fire only inside determinism-critical roots — the
// functions whose output the repo promises is bit-for-bit reproducible:
//
//   - every function in internal/{linalg,dirac,solver,hio,cache}
//     (kernels, encoders, content-addressed keys and codecs);
//   - in internal/core, journal record construction: methods on Journal
//     and functions whose name mentions Record or Payload;
//   - in any package, functions that build cache keys (use a
//     cache.KeyBuilder in their signature or call cache.NewKey /
//     KeyBuilder methods).
//
// Known limitation: calls through function values and interfaces are not
// tracked (no call-graph construction for indirect calls). That is
// deliberate — the obs tracer injects its clock as a func value precisely
// so trace timestamps stay out of the deterministic dataflow.
var DetTaint = &Analyzer{
	Name:     "dettaint",
	Doc:      "no transitive wall-clock/rand/map-order/env reads reachable from determinism-critical roots (cache keys, codecs, kernels, journal records)",
	Run:      runDetTaint,
	HasFacts: true,
}

// taintInfo records why one function is tainted: the nondeterministic
// input it (transitively) reads, and the call path from the function to
// the read. This is the fact value, keyed by funcKey.
type taintInfo struct {
	// Source is the human-readable input description, e.g.
	// "wall-clock time (time.Now)".
	Source string `json:"source"`
	// Path is the call chain, innermost last, e.g. "Stamp → time.Now".
	Path string `json:"path"`
}

// detTaintFact is the dettaint package fact: tainted funcKey -> why.
type detTaintFact map[string]taintInfo

// rootPkgs are the import-path suffixes whose every non-test function is
// a determinism-critical root.
var rootPkgs = []string{
	"internal/linalg",
	"internal/dirac",
	"internal/solver",
	"internal/hio",
	"internal/cache",
}

func hasPkgSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

func isRootPackage(path string) bool {
	for _, s := range rootPkgs {
		if hasPkgSuffix(path, s) {
			return true
		}
	}
	return false
}

// funcKey names a function within its package's fact: "F" for a free
// function, "T.M" for a method on T or *T.
func funcKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	t := sig.Recv().Type()
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := types.Unalias(t).(*types.Named); ok {
		return named.Obj().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// detFunc is the per-function analysis state.
type detFunc struct {
	key  string
	decl *ast.FuncDecl
	// taint is set once the function is known tainted; first cause wins.
	taint *taintInfo
	// callees are same-package callees by funcKey (for the fixpoint).
	callees []string
	// isRoot marks the function determinism-critical.
	isRoot bool
}

func runDetTaint(pass *Pass) error {
	pkgPath := pass.Pkg.Path()
	allRoot := isRootPackage(pkgPath)
	corePkg := hasPkgSuffix(pkgPath, "internal/core")

	funcs := map[string]*detFunc{}
	var order []string
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			key := funcKey(fn)
			df := &detFunc{key: key, decl: fd}
			df.isRoot = allRoot ||
				(corePkg && isJournalRecordFunc(pass, fd)) ||
				usesKeyBuilder(pass, fd)
			funcs[key] = df
			order = append(order, key)
		}
	}
	sort.Strings(order)

	// Pass 1: direct sources and same-package call edges.
	for _, key := range order {
		scanFuncTaint(pass, funcs[key], funcs)
	}

	// Pass 2: fixpoint over same-package call edges. First cause wins, and
	// the sorted sweep order makes the winner deterministic.
	for changed := true; changed; {
		changed = false
		for _, key := range order {
			df := funcs[key]
			if df.taint != nil {
				continue
			}
			for _, callee := range df.callees {
				cf := funcs[callee]
				if cf == nil || cf.taint == nil {
					continue
				}
				df.taint = &taintInfo{
					Source: cf.taint.Source,
					Path:   callee + " → " + cf.taint.Path,
				}
				changed = true
				break
			}
		}
	}

	// Pass 3: diagnostics inside roots, at the offending call sites.
	for _, key := range order {
		df := funcs[key]
		if df.isRoot {
			reportRootTaint(pass, df, funcs)
		}
	}

	// Export the fact (only when non-empty, to keep vetx files lean).
	fact := detTaintFact{}
	for _, key := range order {
		if df := funcs[key]; df.taint != nil {
			fact[key] = *df.taint
		}
	}
	if len(fact) > 0 {
		return pass.ExportPackageFact(fact)
	}
	return nil
}

// isJournalRecordFunc reports whether fd is journal record construction:
// a method on Journal/*Journal, or a function whose name mentions Record
// or Payload.
func isJournalRecordFunc(pass *Pass, fd *ast.FuncDecl) bool {
	name := fd.Name.Name
	if strings.Contains(name, "Record") || strings.Contains(name, "Payload") {
		return true
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	t := pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)
	if t == nil {
		return false
	}
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	return ok && named.Obj().Name() == "Journal"
}

// isKeyBuilderType reports whether t is cache.KeyBuilder (by name and
// import-path suffix, so fixture packages qualify too), possibly behind a
// pointer.
func isKeyBuilderType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "KeyBuilder" && obj.Pkg() != nil && hasPkgSuffix(obj.Pkg().Path(), "internal/cache")
}

// usesKeyBuilder reports whether fd participates in cache-key
// construction: a cache.KeyBuilder anywhere in its signature, or a call
// to cache.NewKey or a KeyBuilder method in its body.
func usesKeyBuilder(pass *Pass, fd *ast.FuncDecl) bool {
	if tt := pass.TypesInfo.TypeOf(fd.Name); tt != nil {
		if sig, ok := tt.(*types.Signature); ok {
			for i := 0; i < sig.Params().Len(); i++ {
				if isKeyBuilderType(sig.Params().At(i).Type()) {
					return true
				}
			}
			for i := 0; i < sig.Results().Len(); i++ {
				if isKeyBuilderType(sig.Results().At(i).Type()) {
					return true
				}
			}
		}
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil || !hasPkgSuffix(fn.Pkg().Path(), "internal/cache") {
			return true
		}
		sig, _ := fn.Type().(*types.Signature)
		if fn.Name() == "NewKey" || (sig != nil && sig.Recv() != nil && isKeyBuilderType(sig.Recv().Type())) {
			found = true
		}
		return !found
	})
	return found
}

// detTaintExemptCalls returns the set of time.Now call nodes excused as
// the measured-timing idiom: a wall-clock read whose value stays inside
// time's own types never feeds deterministic output, it only measures
// elapsed work. Exempt forms:
//
//	start := time.Now()              // define/assign into time.Time/Duration
//	st.T0 = time.Now()
//	&job{submitted: time.Now()}      // composite-literal field of those types
//	p.remaining(time.Now())          // argument to a time.Time parameter
//
// time.Since/time.Until are not sources at all (see directSource): they
// yield relative durations, and it is absolute timestamps that leak into
// keys, records, and encoded output.
func detTaintExemptCalls(pass *Pass, body *ast.BlockStmt) map[*ast.CallExpr]bool {
	exempt := map[*ast.CallExpr]bool{}
	isTimeType := func(t types.Type) bool {
		named, ok := types.Unalias(t).(*types.Named)
		if !ok {
			return false
		}
		obj := named.Obj()
		if obj.Pkg() == nil || obj.Pkg().Path() != "time" {
			return false
		}
		return obj.Name() == "Time" || obj.Name() == "Duration"
	}
	mark := func(e ast.Expr, lhsType types.Type) {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok || !isTimeNowCall(pass, call) {
			return
		}
		if isTimeType(lhsType) {
			exempt[call] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				if i < len(s.Lhs) {
					mark(rhs, pass.TypesInfo.TypeOf(s.Lhs[i]))
				}
			}
		case *ast.ValueSpec:
			for _, v := range s.Values {
				mark(v, pass.TypesInfo.TypeOf(s.Names[0]))
			}
		case *ast.CompositeLit:
			// The exemption rides on the destination type, not the value's
			// own (time.Now() always has type time.Time): a timestamp is
			// excused only when the field or element it initializes keeps
			// it inside time's types. `any`, string, etc. leak it.
			lt := pass.TypesInfo.TypeOf(s)
			if lt == nil {
				return true
			}
			switch ut := lt.Underlying().(type) {
			case *types.Struct:
				for i, elt := range s.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						if id, ok := kv.Key.(*ast.Ident); ok {
							for f := 0; f < ut.NumFields(); f++ {
								if ut.Field(f).Name() == id.Name {
									mark(kv.Value, ut.Field(f).Type())
									break
								}
							}
						}
					} else if i < ut.NumFields() {
						mark(elt, ut.Field(i).Type())
					}
				}
			case *types.Map:
				for _, elt := range s.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						mark(kv.Value, ut.Elem())
					}
				}
			case *types.Slice:
				for _, elt := range s.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						mark(kv.Value, ut.Elem())
					} else {
						mark(elt, ut.Elem())
					}
				}
			case *types.Array:
				for _, elt := range s.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						mark(kv.Value, ut.Elem())
					} else {
						mark(elt, ut.Elem())
					}
				}
			}
		case *ast.CallExpr:
			if fn := calleeFunc(pass, s); fn != nil {
				if sig, ok := fn.Type().(*types.Signature); ok {
					for i, arg := range s.Args {
						if i < sig.Params().Len() {
							mark(arg, sig.Params().At(i).Type())
						}
					}
				}
			}
		}
		return true
	})
	return exempt
}

// isTimeNowCall reports whether call is time.Now(...).
func isTimeNowCall(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Now"
}

// directSource classifies fn as a nondeterministic input, returning the
// source description and the short name for the path, or "".
func directSource(fn *types.Func) (source, short string) {
	pkg := fn.Pkg()
	if pkg == nil {
		return "", ""
	}
	sig, _ := fn.Type().(*types.Signature)
	hasRecv := sig != nil && sig.Recv() != nil
	name := fn.Name()
	switch pkg.Path() {
	case "time":
		// Only the absolute clock; Since/Until yield relative durations.
		if !hasRecv && name == "Now" {
			return "wall-clock time (time.Now)", "time.Now"
		}
	case "math/rand", "math/rand/v2":
		if !hasRecv && !globalRandAllowed[name] {
			return "the global math/rand source (rand." + name + ")", "rand." + name
		}
	case "runtime":
		if !hasRecv && (name == "GOMAXPROCS" || name == "NumCPU") {
			return "the processor count (runtime." + name + ")", "runtime." + name
		}
	case "os":
		switch name {
		case "Getenv", "LookupEnv", "Environ", "ExpandEnv", "Hostname":
			return "the process environment (os." + name + ")", "os." + name
		}
	}
	return "", ""
}

// scanFuncTaint walks one function body recording direct sources, imported
// taint, and same-package call edges. Function literals are treated as
// part of the enclosing function (a closure's nondeterminism is charged
// to whoever declared it).
func scanFuncTaint(pass *Pass, df *detFunc, funcs map[string]*detFunc) {
	exempt := detTaintExemptCalls(pass, df.decl.Body)
	setTaint := func(ti taintInfo) {
		if df.taint == nil {
			df.taint = &ti
		}
	}
	// callFuns collects the Fun expression of every call, so the
	// value-reference check below can tell `x := time.Now` apart from
	// `time.Now()` (ast.Inspect is pre-order: the CallExpr is always
	// visited before its Fun selector).
	callFuns := map[ast.Expr]bool{}
	ast.Inspect(df.decl.Body, func(n ast.Node) bool {
		switch nd := n.(type) {
		case *ast.CallExpr:
			callFuns[ast.Unparen(nd.Fun)] = true
			fn := calleeFunc(pass, nd)
			if fn == nil {
				return true
			}
			if src, short := directSource(fn); src != "" {
				if !exempt[nd] {
					setTaint(taintInfo{Source: src, Path: short})
				}
				return true
			}
			if fn.Pkg() == nil {
				return true
			}
			if fn.Pkg() == pass.Pkg {
				key := funcKey(fn)
				if _, ok := funcs[key]; ok && key != df.key {
					df.callees = append(df.callees, key)
				}
				return true
			}
			var fact detTaintFact
			if pass.ImportPackageFact(fn.Pkg().Path(), &fact) {
				key := funcKey(fn)
				if ti, ok := fact[key]; ok {
					setTaint(taintInfo{Source: ti.Source, Path: fn.Pkg().Name() + "." + key + " → " + ti.Path})
				}
			}
		case *ast.SelectorExpr:
			if callFuns[nd] {
				return true
			}
			if fn, ok := pass.TypesInfo.Uses[nd.Sel].(*types.Func); ok {
				if fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Now" {
					setTaint(taintInfo{Source: "wall-clock time (time.Now as a value)", Path: "time.Now"})
				}
			}
		case *ast.RangeStmt:
			if src := mapOrderEscapes(pass, nd, df.decl.Body); src != "" {
				setTaint(taintInfo{Source: src, Path: "map range"})
			}
		}
		return true
	})
}

// mapOrderEscapes reports a map-iteration-order source: a bound-variable
// map range whose order reaches an order-sensitive sink (detrange's
// definition) or escapes via return from inside the loop.
func mapOrderEscapes(pass *Pass, rs *ast.RangeStmt, funcBody *ast.BlockStmt) string {
	t := pass.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return ""
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return ""
	}
	if rangeVarsBlank(rs) {
		return ""
	}
	if sink := orderSensitiveSink(pass, rs, funcBody); sink != "" {
		return "map iteration order (feeds " + sink + ")"
	}
	// A return inside the range that mentions a range variable selects
	// "whichever key happened to come first" — first-match nondeterminism.
	// Returns that merely propagate an error (`return err`) are fine.
	rangeVars := map[types.Object]bool{}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				rangeVars[obj] = true
			} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
				rangeVars[obj] = true
			}
		}
	}
	returns := false
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch nd := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			for _, res := range nd.Results {
				ast.Inspect(res, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok && rangeVars[pass.TypesInfo.Uses[id]] {
						returns = true
					}
					return !returns
				})
			}
		}
		return !returns
	})
	if returns {
		return "map iteration order (a return of a range variable makes the result depend on which key is visited first)"
	}
	return ""
}

// reportRootTaint re-walks a root function's body and reports every
// tainted call site: direct nondeterministic reads and calls into tainted
// functions (same-package or imported).
func reportRootTaint(pass *Pass, df *detFunc, funcs map[string]*detFunc) {
	exempt := detTaintExemptCalls(pass, df.decl.Body)
	report := func(pos token.Pos, what, source, path string) {
		pass.Reportf(pos, "determinism-critical function %s %s %s (path: %s)", df.key, what, source, path)
	}
	callFuns := map[ast.Expr]bool{}
	ast.Inspect(df.decl.Body, func(n ast.Node) bool {
		switch nd := n.(type) {
		case *ast.CallExpr:
			callFuns[ast.Unparen(nd.Fun)] = true
			fn := calleeFunc(pass, nd)
			if fn == nil {
				return true
			}
			if src, short := directSource(fn); src != "" {
				if !exempt[nd] {
					report(nd.Pos(), "reads", src, short)
				}
				return true
			}
			if fn.Pkg() == nil {
				return true
			}
			if fn.Pkg() == pass.Pkg {
				key := funcKey(fn)
				if cf := funcs[key]; cf != nil && cf.taint != nil && key != df.key {
					report(nd.Pos(), "calls "+key+", which transitively reads", cf.taint.Source, key+" → "+cf.taint.Path)
				}
				return true
			}
			var fact detTaintFact
			if pass.ImportPackageFact(fn.Pkg().Path(), &fact) {
				key := funcKey(fn)
				if ti, ok := fact[key]; ok {
					disp := fn.Pkg().Name() + "." + key
					report(nd.Pos(), "calls "+disp+", which transitively reads", ti.Source, disp+" → "+ti.Path)
				}
			}
		case *ast.SelectorExpr:
			if callFuns[nd] {
				return true
			}
			if fn, ok := pass.TypesInfo.Uses[nd.Sel].(*types.Func); ok {
				if fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Now" {
					report(nd.Pos(), "captures", "wall-clock time (time.Now as a value)", "time.Now")
				}
			}
		case *ast.RangeStmt:
			if src := mapOrderEscapes(pass, nd, df.decl.Body); src != "" {
				report(nd.For, "depends on", src, "map range")
			}
		}
		return true
	})
}
