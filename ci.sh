#!/bin/sh
# CI gate: vet (stock passes plus the femtolint contract passes), build,
# and the full test suite under the race detector. The job runtime
# (internal/runtime) and every concurrent driver must be data-race-free;
# -race is the contract, not an option. femtolint enforces the repo's
# determinism, cancellation, and hot-path contracts (see DESIGN.md
# "Static analysis"); a violation anywhere in the tree fails CI.
set -eux
go vet ./...
go build -o "$PWD/femtolint.bin" ./cmd/femtolint
trap 'rm -f "$PWD/femtolint.bin" "$PWD/garank.bin" "$PWD/gastress.bin"' EXIT
go vet -vettool="$PWD/femtolint.bin" ./...
go build ./...
# internal/core's race suite runs close to the default 10m per-package
# timeout on a loaded machine; give the full sweep headroom.
go test -race -timeout 20m ./...
# Chaos gate: the fault-tolerance suites run again under the race
# detector with -count=2, so the chaos engine's determinism claim
# (same seed and plan -> same fault sequence and report at any worker
# count) is exercised twice against fresh goroutine interleavings, and
# the recovery paths (panic isolation, watchdog kills, quarantine,
# journal replay) hold under concurrent load.
go test -race -count=2 ./internal/fault/ ./internal/runtime/ ./internal/cluster/
# Drain gate: the allocation-budget paths - drain/resume determinism,
# admission control, Preempt-fault preemption, and the atomic container
# save a drain relies on - re-run under the race detector, so an
# allocation can end (wall clock, SIGTERM, injected preemption) at any
# instant without losing journaled work or corrupting a checkpoint.
go test -race -count=2 -run 'Drain|Preempt|Budget|Admission|Atomic|Save' ./internal/core/ ./internal/hio/
# Observability gate: the metrics registry and span tracer must be
# race-free under concurrent instrumentation, the autotuner must perform
# exactly one search per cold key under concurrent Execute (the
# singleflight contract), and the fixed-chunk reductions must make
# solves bitwise identical at every worker count. The suites run under
# -race with -count=2 against fresh interleavings.
go test -race -count=2 ./internal/obs/
go test -race -count=2 -run 'Singleflight|SearchModelled|RepsEnabled|Observer' ./internal/autotune/
go test -race -count=2 -run 'Bitwise|ReduceChunk|Deterministic' ./internal/linalg/ ./internal/solver/
go test -race -run 'Obs|Timeline|Trace' ./internal/runtime/ ./internal/core/ ./internal/cluster/
# Cache gate: the content-addressed result cache must be race-free and
# deterministic - the LRU eviction order, the byte budget, the disk
# tier's corruption-is-a-miss contract and the per-key singleflight all
# re-run under -race against fresh interleavings (-count=2). The driver
# suites then prove the product contract: a warm campaign is bit-for-bit
# the cold one with zero solver iterations, concurrent campaigns on one
# store solve each configuration exactly once, and an FH campaign reuses
# cached base propagators across insertions.
go test -race -count=2 ./internal/cache/
go test -race -run 'WarmCache|ShareSolves|SequentialWarm|CacheBitForBit' ./internal/core/
go test -race -run 'FH' ./internal/workflow/
# Analysis gate: the analyzer suite itself (driver, fact plumbing,
# fixtures, the vettool handshake e2e) re-runs under the race detector
# against fresh interleavings - the unitchecker is invoked concurrently
# by cmd/go, so its own code must hold to the standard it enforces.
go test -race -count=2 ./internal/analysis/...
# Distributed gate: the wire protocol suite - framing fuzz, bitwise
# apply/solve parity, kill-at-every-iteration recovery, chaos solves,
# partition and hang detection - re-runs under the race detector against
# fresh interleavings (-count=2, -short trims the kill sweep's stride).
# Then the real thing: multi-process garank smoke runs over localhost
# TCP with pinned seeds - a clean 4-rank solve, a rank killed mid-solve
# and recovered from checkpoint, a frame-chaos run, and a partition run
# (chaos seed 2 at rate 0.3 severs a link and forces a recovery) - every
# one required to match the single-process correlator bit for bit.
go test -race -count=2 -short ./internal/wire/
go build -o "$PWD/garank.bin" ./cmd/garank
./garank.bin -ranks 4
./garank.bin -ranks 4 -kill-rank 1 -kill-xid 3
./garank.bin -ranks 4 -drop 0.01 -corrupt 0.01 -delay 0.002 -chaos-seed 7 -max-inject 200
./garank.bin -ranks 2 -partition 0.3 -chaos-seed 2 -max-inject 4
rm -f "$PWD/garank.bin"
# Scenario gate: the seeded chaos-soak sweep. The scenario package's own
# suite (generator determinism, coverage, the full six-scenario soak and
# the replay-identity contract) re-runs under the race detector against
# fresh interleavings. Then gastress sweeps the pinned seed twice: eight
# scenarios spanning all five mix families plus preemption, budget
# expiry, and network chaos, each run live (runtime pool + real physics
# episode) and simulated (cluster twin), held to the full invariant set,
# with the two sweeps required to produce byte-identical canonical
# reports. A single-index replay then proves one scenario reproduces in
# isolation, outside sweep order.
go test -race -count=2 ./internal/scenario/
go build -o "$PWD/gastress.bin" ./cmd/gastress
./gastress.bin -seed 1 -count 8 -repeat 2
./gastress.bin -seed 1 -index 3
rm -f "$PWD/gastress.bin"
# Service gate: the multi-tenant campaign server. The serve suite
# re-runs under the race detector against fresh interleavings
# (-count=2): stride fair-share order pinned exactly, quota admission
# refusals, cross-tenant warm duplicates with zero solver iterations,
# concurrent-duplicate coalescing through the cache singleflight,
# drain + restart resuming a journaled campaign bit for bit, and a
# byte-identical /metrics rendering for a fixed workload. The shared
# flag validator runs with it, then the gaserve e2e drives the real
# binary over real HTTP: three tenants, a duplicate served warm from
# the shared cache, a validation 400 and a quota 429, SIGTERM
# mid-campaign, and a second server generation resuming the journal to
# the uninterrupted run's fingerprint.
go test -race -count=2 ./internal/serve/ ./internal/validate/
go test -race -run 'EndToEnd|FlagValidation' ./cmd/gaserve/ ./cmd/gasolve/ ./cmd/garank/ ./cmd/gastress/
# The femtolint suppression budget: the tree carries 8 reviewed
# //femtolint:ignore directives (the runtime's deliberate post-drain
# Wait, the journal's best-effort Close-after-error cleanups). New code
# must satisfy the passes, not suppress them. Audit mode replaces the old
# grep: it counts real, well-formed directives in non-test files through
# the analysis itself, and additionally fails on malformed directives and
# on stale ones that no longer suppress anything.
"$PWD/femtolint.bin" -audit -budget=8 ./...
