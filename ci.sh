#!/bin/sh
# CI gate: vet (stock passes plus the femtolint contract passes), build,
# and the full test suite under the race detector. The job runtime
# (internal/runtime) and every concurrent driver must be data-race-free;
# -race is the contract, not an option. femtolint enforces the repo's
# determinism, cancellation, and hot-path contracts (see DESIGN.md
# "Static analysis"); a violation anywhere in the tree fails CI.
set -eux
go vet ./...
go build -o "$PWD/femtolint.bin" ./cmd/femtolint
trap 'rm -f "$PWD/femtolint.bin"' EXIT
go vet -vettool="$PWD/femtolint.bin" ./...
go build ./...
go test -race ./...
