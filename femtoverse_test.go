package femtoverse

import (
	"bytes"
	"math"
	"testing"
)

// TestFacadeQuickstart exercises the public API exactly the way the
// quickstart example does: build a lattice, solve the Dirac equation,
// contract a pion.
func TestFacadeQuickstart(t *testing.T) {
	g, err := NewLattice(2, 2, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	u := UnitGauge(g)
	u.FlipTimeBoundary()
	m, err := NewMobius(u, MobiusParams{Ls: 4, M5: 1.4, B5: 1.25, C5: 0.25, M: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	eo, err := NewMobiusEO(m)
	if err != nil {
		t.Fatal(err)
	}
	qs := NewQuarkSolver(eo, SolverParams{Tol: 1e-8, Precision: Single})
	p, err := qs.ComputePoint([4]int{0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	c := Pion2pt(p, 0)
	if len(c) != 4 {
		t.Fatalf("correlator length %d", len(c))
	}
	for tt, v := range c {
		if v <= 0 {
			t.Fatalf("C(%d) = %v", tt, v)
		}
	}
	eff := EffectiveMass(c)
	if len(eff) != 3 {
		t.Fatal("effective mass length")
	}
}

func TestFacadeDirectSolve(t *testing.T) {
	g, err := NewLattice(2, 2, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	u := QuenchedEnsemble(g, 1, 5.8, 1, 3, 1)[0]
	m, err := NewMobius(u, MobiusParams{Ls: 4, M5: 1.4, B5: 1.25, C5: 0.25, M: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	eo, err := NewMobiusEO(m)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]complex128, eo.Size())
	b[0] = 1
	x, st, err := Solve(eo, b, SolverParams{Tol: 1e-8, Precision: Half})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged || st.Precision != Half {
		t.Fatalf("stats %+v", st)
	}
	if len(x) != eo.Size() {
		t.Fatal("solution size")
	}
}

func TestFacadePhysics(t *testing.T) {
	tau, terr := NeutronLifetime(1.2755, 0.012)
	if math.Abs(tau-879.5) > 1.5 || terr <= 0 {
		t.Fatalf("tau = %v +- %v", tau, terr)
	}
	p := A09M310(100, 3)
	if p.GA != 1.271 {
		t.Fatal("calibration constants")
	}
}

func TestFacadeMachinesAndModel(t *testing.T) {
	if Sierra().Name != "Sierra" || Titan().GPUsPerNode != 1 {
		t.Fatal("machines")
	}
	pm := NewPerfModel(Sierra())
	pt, err := pm.Solve(Problem{Global: [4]int{48, 48, 48, 64}, Ls: 20}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if pt.PctPeak < 19 || pt.PctPeak > 22 {
		t.Fatalf("pct %v", pt.PctPeak)
	}
	if NewTuner().Len() != 0 {
		t.Fatal("fresh tuner not empty")
	}
}

func TestFacadeClusterAndExperiments(t *testing.T) {
	rep, err := SimulateCluster(
		ClusterConfig{Nodes: 8, GPUsPerNode: 4, CPUSlotsPerNode: 40, Seed: 1},
		[]ClusterTask{{ID: 0, Kind: GPUTask, GPUs: 16, Seconds: 100}},
		NewMpiJM(MpiJMParams{LumpNodes: 8, BlockNodes: 4}),
	)
	if err != nil || rep.TasksDone != 1 {
		t.Fatalf("cluster sim: %v %+v", err, rep)
	}
	if len(Experiments()) < 14 {
		t.Fatalf("experiments: %v", Experiments())
	}
	res, err := Experiment("table1", true)
	if err != nil || res.Render() == "" {
		t.Fatalf("experiment: %v", err)
	}
}

func TestFacadeWorkflowAndIO(t *testing.T) {
	mr, err := ModelWorkflow()
	if err != nil {
		t.Fatal(err)
	}
	p, c, io := mr.Budget.Fractions()
	if p < 90 || c <= 0 || io <= 0 {
		t.Fatalf("budget %v %v %v", p, c, io)
	}
	f := NewHFile()
	if err := f.Root().WriteFloat64("x", []int{1}, []float64{42}); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeExtendedSurface(t *testing.T) {
	// Gamma helpers.
	g5 := GammaMatrix(4)
	if g5[0][0] != 1 || g5[2][2] != -1 {
		t.Fatal("gamma_5")
	}
	if AxialCurrentGamma() == (SpinMatrix{}) || TensorCurrentGamma() == (SpinMatrix{}) {
		t.Fatal("current gammas empty")
	}

	// HMC ensemble through the facade.
	g, err := NewLattice(2, 2, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	ens, h, err := HMCEnsemble(g, HMCParams{Beta: 5.7, Steps: 6, StepSize: 0.1, Seed: 3}, 2, 3, 1)
	if err != nil || len(ens) != 2 {
		t.Fatalf("HMC ensemble: %v", err)
	}
	if h.Trajectories == 0 {
		t.Fatal("no trajectories recorded")
	}

	// Smearing + NERSC round trip.
	sm, err := ens[0].StoutSmear(0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteNERSC(sm, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadNERSC(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(back.Plaquette()-sm.Plaquette()) > 1e-14 {
		t.Fatal("NERSC round trip changed plaquette")
	}

	// Deflated solve path.
	m, err := NewMobius(ens[0], MobiusParams{Ls: 4, M5: 1.4, B5: 1.25, C5: 0.25, M: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	eo, err := NewMobiusEO(m)
	if err != nil {
		t.Fatal(err)
	}
	modes, _, err := LowModes(eo, 4, 20, 16, 1.0, 1, SolverParams{})
	if err != nil || len(modes) != 4 {
		t.Fatalf("LowModes: %v", err)
	}
	b := make([]complex128, eo.Size())
	b[3] = 1
	x, st, err := SolveDeflated(eo, b, modes, SolverParams{Tol: 1e-8})
	if err != nil || !st.Converged || len(x) != eo.Size() {
		t.Fatalf("deflated solve: %v %+v", err, st)
	}

	// Extrapolation through the facade.
	pts := []EnsemblePoint{
		{EpsPi2: 0.07, A2: 0.2, GA: 1.22, Err: 0.01},
		{EpsPi2: 0.03, A2: 0.2, GA: 1.25, Err: 0.01},
		{EpsPi2: 0.07, A2: 0.06, GA: 1.24, Err: 0.01},
		{EpsPi2: 0.03, A2: 0.06, GA: 1.27, Err: 0.01},
		{EpsPi2: 0.013, A2: 0.12, GA: 1.27, Err: 0.015},
	}
	res, err := ExtrapolateGA(pts, 0.0145)
	if err != nil || res.Err <= 0 {
		t.Fatalf("extrapolation: %v", err)
	}
}

func TestFacadeDistributedOperator(t *testing.T) {
	g, err := NewLattice(4, 2, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	u := UnitGauge(g)
	d, err := NewDistributedWilson(u, [4]int{2, 1, 1, 2}, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Ranks() != 4 {
		t.Fatalf("ranks %d", d.Ranks())
	}
	src := make([]complex128, d.Size())
	src[0] = 1
	dst := make([]complex128, d.Size())
	d.Apply(dst, src)
	if dst[0] == 0 {
		t.Fatal("distributed apply produced nothing")
	}
}
